"""Batched telemetry synthesis vs the per-stream reference.

Isolates the fleet's metric-synthesis layer: the struct-of-arrays
kernel in ``FleetTelemetryStream`` (one ``(rows x 1040)`` pass per
tick, host drivers computed once per ``(namespace, node)`` group and
broadcast to member rows) against the historical per-container
``InstanceTelemetryStream`` loop it replaced, and records the contract
to ``BENCH_telemetry.json`` at the repository root:

- **correctness** (always asserted): every batched row of every tick
  is *bitwise identical* to the corresponding reference stream's
  ``emit()`` -- same driver arithmetic, same per-stream Gaussian draw
  order, same counter->rate recurrences;
- **throughput** (enforced only on >= 4-core hosts, the
  ``BENCH_parallel``/``BENCH_fleet`` gating convention): the batched
  kernel synthesizes rows >= 3x faster than the per-stream loop.

Both sides are timed end to end including stream registration, so the
comparison covers what the fleet loop actually pays: the reference
opens one stream object per container; the batched path seeds one RNG
per stream but shares all driver math per group.

Environment knobs:

- ``MONITORLESS_BENCH_TELEMETRY_CELLS``  cells (7 containers each;
  default 60 -> 420 containers)
- ``MONITORLESS_BENCH_TELEMETRY_TICKS``  synthesized ticks (default 8)
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.fleet.orchestrator import (
    build_cell,
    default_fleet_workloads,
    make_fleet_specs,
)
from repro.fleet.telemetry import FleetTelemetryStream
from repro.parallel.jobs import available_cores

from conftest import SEED

N_CELLS = int(os.environ.get("MONITORLESS_BENCH_TELEMETRY_CELLS", "60"))
TICKS = int(os.environ.get("MONITORLESS_BENCH_TELEMETRY_TICKS", "8"))
MIN_SPEEDUP = 3.0
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_telemetry.json"


def _build_registry():
    """Cells with ``TICKS`` of recorded simulation history, flattened
    to one ``(namespace, agent, container, nodes)`` entry per row."""
    specs = make_fleet_specs(N_CELLS, base_seed=SEED)
    workloads = default_fleet_workloads(N_CELLS, TICKS, seed=SEED)
    registry = []
    for row, spec in enumerate(specs):
        cell = build_cell(spec)
        for t in range(TICKS):
            cell.simulation.step({cell.application: float(workloads[row, t])})
        deployment = cell.simulation.deployments[cell.application]
        for replicas in deployment.instances.values():
            for instance in replicas:
                registry.append((
                    spec.namespace,
                    cell.agent,
                    instance.container,
                    cell.simulation.nodes,
                ))
    return registry


def _run_batched(registry):
    catalog = registry[0][1].catalog
    n_rows = len(registry)
    fleet = FleetTelemetryStream(catalog, capacity=n_rows)
    for row, (namespace, agent, container, nodes) in enumerate(registry):
        fleet.add_row(row, namespace, agent, container, nodes)
    out = np.empty((TICKS, n_rows, catalog.n_metrics))
    for t in range(TICKS):
        fleet.begin_tick()
        emitted = fleet.advance_round()  # one recorded tick per round
        assert emitted.size == n_rows
        out[t] = fleet.raw[:n_rows]
    return out


def _run_reference(registry):
    catalog = registry[0][1].catalog
    n_rows = len(registry)
    streams = [
        agent.open_stream(container, nodes)
        for (_namespace, agent, container, nodes) in registry
    ]
    out = np.empty((TICKS, n_rows, catalog.n_metrics))
    for t in range(TICKS):
        for row, stream in enumerate(streams):
            out[t, row] = stream.emit()
    return out


def test_telemetry_synthesis(table_printer):
    cores = available_cores()
    enforce = cores >= 4
    registry = _build_registry()
    n_rows = len(registry)
    total_rows = n_rows * TICKS

    # Warm-up (first-touch caches, spec-array construction), then one
    # timed pass each; the parity assert runs on the timed outputs.
    _run_batched(registry)
    started = time.perf_counter()
    batched = _run_batched(registry)
    batched_s = time.perf_counter() - started

    _run_reference(registry)
    started = time.perf_counter()
    reference = _run_reference(registry)
    reference_s = time.perf_counter() - started

    assert np.array_equal(batched, reference), (
        "batched synthesis diverged from the per-stream reference"
    )

    batched_rows_per_s = total_rows / batched_s
    reference_rows_per_s = total_rows / reference_s
    speedup = reference_s / batched_s

    rows = [
        {"quantity": "containers", "value": n_rows},
        {"quantity": "ticks", "value": TICKS},
        {"quantity": "metric_rows", "value": total_rows},
        {"quantity": "batched_s", "value": round(batched_s, 3)},
        {"quantity": "reference_s", "value": round(reference_s, 3)},
        {"quantity": "batched_rows_per_s", "value": round(batched_rows_per_s)},
        {
            "quantity": "reference_rows_per_s",
            "value": round(reference_rows_per_s),
        },
        {"quantity": "speedup", "value": round(speedup, 2)},
    ]
    table_printer(
        f"Telemetry synthesis ({cores} usable cores)", rows
    )

    record = {
        "cpu_count": cores,
        "seed": SEED,
        "containers": n_rows,
        "cells": N_CELLS,
        "ticks": TICKS,
        "metric_rows": total_rows,
        "metrics_per_row": registry[0][1].catalog.n_metrics,
        "batched_seconds": round(batched_s, 4),
        "reference_seconds": round(reference_s, 4),
        "batched_rows_per_second": round(batched_rows_per_s, 1),
        "reference_rows_per_second": round(reference_rows_per_s, 1),
        "speedup": round(speedup, 3),
        "bitwise_equal": True,
        "floor_speedup": MIN_SPEEDUP,
        "thresholds_enforced": enforce,
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if enforce:
        assert speedup >= MIN_SPEEDUP, (
            f"batched synthesis is only {speedup:.2f}x the per-stream "
            f"reference; the floor is {MIN_SPEEDUP}x"
        )
