"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's
evaluation.  The expensive artifacts -- the Table-1 training corpus,
the engineered feature matrix, the trained monitorless model, and the
evaluation scenarios -- are built once per session here.

Scale: the paper's corpus is 63 086 samples (25 runs, full-length
traces) and its TeaStore trace is ~7 000 s.  To keep the whole harness
in the tens of minutes on one host we default to 300-second training
runs, a 2 100-second evaluation trace and 60 trees instead of 250
(the reference host has a single CPU core).
``EXPERIMENTS.md`` records the reductions; set the environment
variables below to run paper-scale.

- ``MONITORLESS_BENCH_DURATION``    training-run seconds   (default 300)
- ``MONITORLESS_BENCH_EVAL``        evaluation-trace secs  (default 2100)
- ``MONITORLESS_BENCH_TREES``       forest size            (default 60)
"""

from __future__ import annotations

import os

import pytest

from repro.core.features.pipeline import MonitorlessPipeline, PipelineConfig
from repro.core.model import MonitorlessModel
from repro.datasets.experiments import elgg_scenario, multitenant_scenario
from repro.datasets.generate import build_training_corpus

DURATION = int(os.environ.get("MONITORLESS_BENCH_DURATION", "300"))
EVAL_DURATION = int(os.environ.get("MONITORLESS_BENCH_EVAL", "2100"))
N_TREES = int(os.environ.get("MONITORLESS_BENCH_TREES", "60"))
SEED = 0


@pytest.fixture(scope="session")
def corpus():
    """The full Table-1 training corpus."""
    return build_training_corpus(
        duration=DURATION, calibration_duration=300, seed=SEED
    )


@pytest.fixture(scope="session")
def engineered(corpus):
    """Engineered features (the paper's section-3.3 pipeline output)."""
    pipeline = MonitorlessPipeline(PipelineConfig(), random_state=SEED)
    X, meta = pipeline.fit_transform(
        corpus.X, corpus.meta, corpus.y, corpus.groups
    )
    return pipeline, X, meta


@pytest.fixture(scope="session")
def model(corpus):
    """The monitorless model (random forest, paper hyper-parameters)."""
    trained = MonitorlessModel(
        classifier_params={"n_estimators": N_TREES},
        random_state=SEED,
    )
    trained.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    return trained


@pytest.fixture(scope="session")
def elgg(corpus):
    """The Table-5 scenario (paper sample count: 2456)."""
    return elgg_scenario(duration=2450, seed=SEED)


@pytest.fixture(scope="session")
def multitenant():
    """The Tables-6/7/8 + Figure-3 scenario pair."""
    return multitenant_scenario(duration=EVAL_DURATION, seed=SEED)


def print_table(title: str, rows: list[dict]) -> None:
    """Render a list of dicts as an aligned text table."""
    if not rows:
        print(f"\n== {title} ==\n(empty)")
        return
    keys = list(rows[0].keys())
    widths = {
        key: max(len(str(key)), *(len(str(row.get(key, ""))) for row in rows))
        for key in keys
    }
    header = "  ".join(str(key).ljust(widths[key]) for key in keys)
    print(f"\n== {title} ==")
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(key, "")).ljust(widths[key]) for key in keys))


@pytest.fixture(scope="session")
def table_printer():
    return print_table
