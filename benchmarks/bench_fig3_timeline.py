"""Figure 3: per-service prediction timeline over the TeaStore trace.

The paper's figure plots, over time: the injected workload, the
measured response time, and per-service markers for TP_2 (green),
FP_2 (yellow) and FN_2 (red) predictions.  This bench emits the same
series: per-service event counts and a coarse timeline, asserting the
paper's qualitative finding that Auth, WebUI and Recommender produce
most of the true positives.
"""

import numpy as np

from repro.core.aggregation import aggregate_or
from repro.core.evaluation import lagged_confusion


def _classify_events(y_true, y_pred, k=2):
    """Per-tick TP/FP/FN classification with the lag-tolerant rules."""
    n = len(y_true)
    truth = np.asarray(y_true).astype(bool)
    predicted = np.asarray(y_pred).astype(bool)
    saturation_ahead = np.zeros(n, dtype=bool)
    prediction_behind = np.zeros(n, dtype=bool)
    for offset in range(1, k + 1):
        saturation_ahead[:-offset] |= truth[offset:]
        prediction_behind[offset:] |= predicted[:-offset]
    tp = truth & predicted
    tp |= truth & ~predicted & prediction_behind
    fp = ~truth & predicted & ~saturation_ahead
    fn = truth & ~predicted & ~prediction_behind
    return tp, fp, fn


def test_fig3_per_service_timeline(benchmark, model, multitenant, table_printer):
    teastore, _ = multitenant

    per_instance = benchmark.pedantic(
        lambda: teastore.instance_predictions(model), rounds=1, iterations=1
    )

    # Group instance predictions by service.
    by_service: dict[str, list[np.ndarray]] = {}
    for container in teastore.containers():
        by_service.setdefault(container.service, []).append(
            per_instance[container.name]
        )

    rows = []
    tp_by_service = {}
    for service, series in sorted(by_service.items()):
        service_prediction = aggregate_or(series)
        tp, fp, fn = _classify_events(teastore.y_true, service_prediction, k=2)
        tp_by_service[service] = int(tp.sum())
        rows.append(
            {
                "service": service,
                "TP_2": int(tp.sum()),
                "FP_2": int(fp.sum()),
                "FN_2": int(fn.sum()),
                "first_event_t": int(np.argmax(tp | fp)) if (tp | fp).any() else -1,
            }
        )
    table_printer("Figure 3: per-service prediction events", rows)

    # Coarse timeline of the three curves in the figure.
    workload = teastore.workload
    response_time = teastore.result.kpi("teastore", "response_time")
    app_prediction = aggregate_or(list(per_instance.values()))
    step = max(1, len(workload) // 14)
    timeline = [
        {
            "t": t,
            "workload_req_s": round(float(workload[t]), 1),
            "response_time_s": round(float(response_time[t]), 3),
            "predicted": int(app_prediction[t]),
            "ground_truth": int(teastore.y_true[t]),
        }
        for t in range(0, len(workload), step)
    ]
    table_printer("Figure 3: timeline (coarse)", timeline)

    confusion = lagged_confusion(teastore.y_true, app_prediction, k=2)
    print(f"application-level F1_2 = {confusion.f1:.3f}")

    # Shape: the hot services (Auth / WebUI / Recommender) account for
    # the bulk of true positives (paper section 4.2.2).
    hot = sum(tp_by_service.get(s, 0) for s in ("auth", "webui", "recommender"))
    total = sum(tp_by_service.values())
    assert total > 0
    assert hot / total > 0.5
