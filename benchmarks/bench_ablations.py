"""Ablations of the design choices DESIGN.md calls out.

Not a paper table; quantifies the contribution of the pieces the
paper argues for:

1. interaction features on/off (Table 4 suggests they are crucial);
2. temporal AVG/LAG features on/off;
3. first-stage reduction: RF filter vs PCA;
4. prediction threshold 0.4 vs 0.5 (the FN-averse operating point);
5. OR vs majority aggregation over instances (section 4.2.3);
6. lag tolerance k in the evaluation metric.
"""

import numpy as np

from repro.core.aggregation import aggregate_majority, aggregate_or
from repro.core.evaluation import lagged_confusion
from repro.core.features.pipeline import PipelineConfig
from repro.core.model import MonitorlessModel

from conftest import N_TREES, SEED


def _train(corpus, config, threshold=0.4):
    model = MonitorlessModel(
        pipeline_config=config,
        prediction_threshold=threshold,
        classifier_params={"n_estimators": max(20, N_TREES // 2)},
        random_state=SEED,
    )
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    return model


def _score_on_elgg(model, elgg, k=2):
    predictions = aggregate_or(elgg.instance_predictions(model))
    return lagged_confusion(elgg.y_true, predictions, k=k)


ABLATION_CONFIGS = [
    ("paper (filter/time+mult/filter)", PipelineConfig()),
    ("no interactions", PipelineConfig(interactions=False)),
    ("no temporal", PipelineConfig(temporal=False)),
    (
        "no interactions, no temporal",
        PipelineConfig(interactions=False, temporal=False, reduction2=None),
    ),
    (
        "PCA first stage",
        PipelineConfig(reduction1="pca", interactions=False),
    ),
]


def test_ablation_pipeline_stages(benchmark, corpus, elgg, table_printer):
    rows = []
    scores = {}
    for name, config in ABLATION_CONFIGS:
        model = _train(corpus, config)
        confusion = _score_on_elgg(model, elgg)
        scores[name] = confusion.f1
        rows.append(
            {
                "pipeline": name,
                "features": model.n_engineered_features_,
                "F1_2": round(confusion.f1, 3),
                "Acc_2": round(confusion.accuracy, 3),
                "FN_2": confusion.fn,
            }
        )
    table_printer("Ablation: feature-pipeline stages", rows)

    # The full pipeline must be competitive with every ablation.
    best = max(scores.values())
    assert scores["paper (filter/time+mult/filter)"] > best - 0.1

    benchmark.pedantic(
        lambda: _train(corpus, PipelineConfig(temporal=False, interactions=False,
                                              reduction2=None)),
        rounds=1,
        iterations=1,
    )


def test_ablation_prediction_threshold(benchmark, corpus, model, elgg, table_printer):
    """Threshold 0.4 (paper) vs neutral 0.5 vs conservative 0.6."""
    rows = []
    fn_by_threshold = {}
    base_proba = {
        name: series
        for name, series in _instance_probabilities(model, elgg).items()
    }
    for threshold in (0.3, 0.4, 0.5, 0.6):
        per_instance = [
            (proba >= threshold).astype(np.int64) for proba in base_proba.values()
        ]
        confusion = lagged_confusion(
            elgg.y_true, aggregate_or(per_instance), k=2
        )
        fn_by_threshold[threshold] = confusion.fn
        rows.append(
            {
                "threshold": threshold,
                "F1_2": round(confusion.f1, 3),
                "FP_2": confusion.fp,
                "FN_2": confusion.fn,
            }
        )
    table_printer("Ablation: prediction threshold", rows)
    # Lower thresholds can only reduce (or keep) false negatives.
    assert fn_by_threshold[0.3] <= fn_by_threshold[0.6]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _instance_probabilities(model, scenario):
    meta = scenario.agent.catalog.feature_meta()
    return {
        container.name: model.predict_proba(
            scenario.agent.instance_matrix(container, scenario.result.nodes), meta
        )
        for container in scenario.containers()
    }


def test_ablation_aggregation_rule(benchmark, model, multitenant, table_printer):
    """OR vs majority aggregation on the 14-service Sockshop
    (section 4.2.3: OR inflates FPs as services multiply)."""
    from repro.datasets.experiments import sockshop_windows

    _, sockshop = multitenant
    windows = sockshop_windows(len(sockshop.workload))
    per_instance = list(sockshop.instance_predictions(model).values())
    y_true = sockshop.y_true[windows]

    rows = []
    confusions = {}
    for name, aggregator in (("OR", aggregate_or), ("majority", aggregate_majority)):
        prediction = aggregator(per_instance)[windows]
        confusion = lagged_confusion(y_true, prediction, k=2)
        confusions[name] = confusion
        rows.append(
            {
                "aggregation": name,
                "F1_2": round(confusion.f1, 3),
                "FP_2": confusion.fp,
                "FN_2": confusion.fn,
            }
        )
    table_printer("Ablation: instance aggregation (Sockshop)", rows)
    # OR catches at least as many saturation events as majority.
    assert confusions["OR"].fn <= confusions["majority"].fn
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_lag_tolerance(benchmark, model, elgg, table_printer):
    """F1_k as a function of the metric's lag tolerance k."""
    prediction = aggregate_or(elgg.instance_predictions(model))
    rows = []
    f1_values = []
    for k in (0, 1, 2, 3):
        confusion = lagged_confusion(elgg.y_true, prediction, k=k)
        f1_values.append(confusion.f1)
        rows.append({"k": k, "F1_k": round(confusion.f1, 3),
                     "Acc_k": round(confusion.accuracy, 3)})
    table_printer("Ablation: lag tolerance k", rows)
    assert all(b >= a - 1e-12 for a, b in zip(f1_values, f1_values[1:]))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
