"""Table 5: the three-tier Elgg web application.

Expected shape (paper): everything scores high because the front-end
is plainly CPU-bound -- CPU best (F1_2 0.999), monitorless essentially
tied (0.997) with zero FN_2, MEM noticeably worse (0.976).
"""

from repro.datasets.experiments import evaluate_detectors


def test_table5_elgg(benchmark, model, elgg, table_printer):
    comparison = benchmark.pedantic(
        lambda: evaluate_detectors(elgg, model, k=2), rounds=1, iterations=1
    )

    table_printer("Table 5: Elgg three-tier web application", comparison.table())
    print(f"saturated fraction: {elgg.y_true.mean():.2f} (paper: ~0.75)")

    rows = comparison.rows
    # Shape assertions.
    assert rows["cpu"].f1 > 0.93
    assert rows["monitorless"].f1 > rows["cpu"].f1 - 0.05
    assert rows["monitorless"].fn <= 5
    assert rows["mem"].f1 <= rows["cpu"].f1
