"""Disabled-mode observability overhead on the streaming closed loop.

Every hot path in the runtime -- ``Orchestrator.tick``, the per-tick
pipeline push, telemetry emission, the forest, the pool -- now carries
``repro.obs`` hooks.  The contract is that the **disabled** default
costs near nothing: each hook is one attribute check (plus, for
``trace``, handing back a shared no-op context manager).

Directly A/B-timing "loop with hooks" vs "loop without hooks" is not
possible (the hooks are compiled in) and a wall-clock diff of two runs
of the same loop is noise-dominated anyway, so this benchmark bounds
the overhead from first principles:

1. time the streaming TeaStore closed loop with observability off
   (the production configuration) -> seconds per tick;
2. count how often each hook fires per tick by temporarily wrapping
   the ``repro.obs`` entry points with counting shims during a short
   disabled-mode run;
3. microbenchmark the disabled cost of each hook over ~10^5 calls;
4. bound: ``sum(calls_per_tick * cost) / seconds_per_tick``.

The bound must stay under ``MAX_DISABLED_OVERHEAD`` (2%).  An
enabled-mode run is also timed for the artifact so readers can see
what opting in costs.  Results go to ``BENCH_obs.json`` at the
repository root; following ``bench_parallel.py`` convention the
threshold is asserted only on hosts with >= 4 usable cores
(laptop-class runners record, big runners enforce).
"""

import json
import time
from pathlib import Path

from repro import obs
from repro.apps.teastore import teastore_application
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.core.model import MonitorlessModel
from repro.datasets.configs import run_by_id
from repro.datasets.experiments import evaluation_nodes, teastore_placements
from repro.datasets.generate import build_training_corpus
from repro.orchestrator.autoscaler import ScalingRules
from repro.orchestrator.loop import Orchestrator
from repro.orchestrator.policies import MonitorlessPolicy
from repro.parallel.jobs import available_cores
from repro.telemetry.agent import TelemetryAgent
from repro.workloads.patterns import linear_ramp

import pytest

from conftest import SEED

LOOP_TICKS = 600
COUNT_TICKS = 120
MICRO_CALLS = 100_000
MAX_DISABLED_OVERHEAD = 0.02
HOOKS = ("enabled", "trace", "inc", "observe", "set_gauge")
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_obs.json"


@pytest.fixture(scope="module")
def small_model():
    """Same quick-to-train model as ``bench_streaming.py``."""
    runs = [run_by_id(i) for i in (1, 2, 7, 9, 12, 24)]
    corpus = build_training_corpus(
        duration=80, calibration_duration=100, seed=3, runs=runs
    )
    model = MonitorlessModel(
        classifier_params={"n_estimators": 15}, random_state=SEED
    )
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    return model


def _closed_loop(model, duration: int):
    simulation = ClusterSimulation(evaluation_nodes(), seed=SEED)
    simulation.deploy(teastore_application(), teastore_placements())
    agent = TelemetryAgent(seed=SEED)
    policy = MonitorlessPolicy(model, agent, window=16, streaming=True)
    rules = ScalingRules(
        placements={
            "auth": Placement(node="M2", cpu_limit=2.0, memory_limit=4 * 2**30),
            "recommender": Placement(
                node="M2", cpu_limit=1.0, memory_limit=4 * 2**30
            ),
            "webui": Placement(node="M2", cpu_limit=1.0, memory_limit=4 * 2**30),
        },
        replica_lifespan=120,
        scale_groups=(("auth", "recommender"),),
    )
    orchestrator = Orchestrator(simulation, "teastore", policy, rules)
    workload = linear_ramp(duration, 10, 240)
    started = time.perf_counter()
    result = orchestrator.run({"teastore": workload})
    elapsed = time.perf_counter() - started
    return result, elapsed


def _count_hook_calls(model, duration: int) -> dict:
    """Exact per-tick hook invocation counts, via counting shims.

    The instrumented modules resolve ``obs.inc`` etc. at call time on
    the module object, so swapping the module attributes is enough to
    see every hook the closed loop fires.
    """
    originals = {name: getattr(obs, name) for name in HOOKS}
    counts = dict.fromkeys(HOOKS, 0)

    def _shim(name):
        original = originals[name]

        def counting(*args, **kwargs):
            counts[name] += 1
            return original(*args, **kwargs)

        return counting

    for name in HOOKS:
        setattr(obs, name, _shim(name))
    try:
        _closed_loop(model, duration)
    finally:
        for name, original in originals.items():
            setattr(obs, name, original)
    return {name: counts[name] / duration for name in HOOKS}


def _disabled_hook_cost(fn, calls: int = MICRO_CALLS) -> float:
    started = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - started) / calls


def _micro_costs() -> dict:
    """Per-call disabled-mode cost of each hook, in seconds."""
    assert not obs.enabled()

    def traced_block():
        with obs.trace("bench.region"):
            pass

    return {
        "enabled": _disabled_hook_cost(obs.enabled),
        "trace": _disabled_hook_cost(traced_block),
        "inc": _disabled_hook_cost(lambda: obs.inc("bench.counter")),
        "observe": _disabled_hook_cost(lambda: obs.observe("bench.hist", 0.5)),
        "set_gauge": _disabled_hook_cost(lambda: obs.set_gauge("bench.g", 1.0)),
    }


def test_disabled_overhead_bound(benchmark, small_model, table_printer):
    obs.disable()
    obs.reset()
    cores = available_cores()

    # 1. Production configuration: observability off.
    disabled_result, disabled_seconds = _closed_loop(small_model, LOOP_TICKS)
    seconds_per_tick = disabled_seconds / LOOP_TICKS

    # 2. How often does each hook fire per tick?
    calls_per_tick = _count_hook_calls(small_model, COUNT_TICKS)

    # 3. What does one disabled call cost?
    costs = _micro_costs()

    # 4. Bound the disabled-mode overhead fraction.
    overhead_seconds_per_tick = sum(
        calls_per_tick[name] * costs[name] for name in HOOKS
    )
    disabled_overhead = overhead_seconds_per_tick / seconds_per_tick

    # For the artifact: what opting in costs, and proof the loop is
    # unchanged by recording (same scaling decisions either way).
    obs.reset()
    obs.enable()
    try:
        enabled_result, enabled_seconds = _closed_loop(small_model, LOOP_TICKS)
        snapshot = obs.snapshot()
    finally:
        obs.disable()
        obs.reset()
    assert enabled_result.total_scale_outs == disabled_result.total_scale_outs
    assert snapshot["counters"]["orchestrator.ticks"] == float(LOOP_TICKS)
    enabled_overhead = enabled_seconds / disabled_seconds - 1.0

    table_printer(
        f"Disabled-mode observability overhead ({cores} usable cores)",
        [
            {
                "hook": name,
                "calls/tick": round(calls_per_tick[name], 1),
                "cost [ns]": round(costs[name] * 1e9, 1),
                "us/tick": round(calls_per_tick[name] * costs[name] * 1e6, 2),
            }
            for name in HOOKS
        ],
    )
    table_printer(
        "Streaming closed loop, observability off vs on",
        [
            {
                "mode": "disabled",
                "seconds": f"{disabled_seconds:.2f}",
                "ticks/s": f"{LOOP_TICKS / disabled_seconds:.0f}",
                "overhead": f"{disabled_overhead:.3%} (bound)",
            },
            {
                "mode": "enabled",
                "seconds": f"{enabled_seconds:.2f}",
                "ticks/s": f"{LOOP_TICKS / enabled_seconds:.0f}",
                "overhead": f"{enabled_overhead:+.1%} (measured)",
            },
        ],
    )

    enforce = cores >= 4
    record = {
        "cpu_count": cores,
        "loop_ticks": LOOP_TICKS,
        "disabled_seconds": round(disabled_seconds, 3),
        "enabled_seconds": round(enabled_seconds, 3),
        "disabled_ticks_per_second": round(LOOP_TICKS / disabled_seconds, 1),
        "enabled_overhead_fraction": round(enabled_overhead, 4),
        "hook_calls_per_tick": {
            name: round(calls_per_tick[name], 2) for name in HOOKS
        },
        "hook_cost_ns": {
            name: round(costs[name] * 1e9, 1) for name in HOOKS
        },
        "disabled_overhead_us_per_tick": round(
            overhead_seconds_per_tick * 1e6, 3
        ),
        "disabled_overhead_fraction": round(disabled_overhead, 6),
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "thresholds_enforced": enforce,
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if enforce:
        assert disabled_overhead <= MAX_DISABLED_OVERHEAD, (
            f"disabled-mode observability overhead bound "
            f"{disabled_overhead:.4%} exceeds {MAX_DISABLED_OVERHEAD:.0%}"
        )

    # Benchmark target: one short disabled-mode closed-loop segment.
    benchmark.pedantic(
        lambda: _closed_loop(small_model, 300), rounds=1, iterations=1
    )
