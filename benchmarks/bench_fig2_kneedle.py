"""Figure 2: throughput curve, Savitzky-Golay smoothing, difference
curve and the Kneedle knee on a linear-ramp Solr run.

The paper's figure shows observed throughput (noisy), the smoothed
curve and the beta-alpha differences with the knee near 700 req/s.
"""

import numpy as np

from repro.cluster.node import MACHINES
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.apps.solr import solr_application
from repro.core.labeling import KneedleLabeler, kneedle
from repro.workloads.patterns import linear_ramp


def _ramp_run(duration=600, seed=0):
    simulation = ClusterSimulation({"training": MACHINES["training"]}, seed=seed)
    simulation.deploy(solr_application(), {"solr": [Placement(node="training")]})
    load = linear_ramp(duration, 1.0, 1300.0)
    result = simulation.run({"solr": load})
    throughput = result.kpi("solr", "throughput")
    rng = np.random.default_rng(seed)
    observed = throughput * (1.0 + rng.normal(0.0, 0.02, duration))
    return load, observed


def test_fig2_kneedle(benchmark, table_printer):
    load, observed = _ramp_run()

    result = benchmark.pedantic(
        lambda: kneedle(load, observed, window_length=21), rounds=3, iterations=1
    )

    labeler = KneedleLabeler(window_length=21).fit(load, observed)
    # Emit the three series of the figure at a coarse resolution.
    rows = []
    for index in range(0, len(load), len(load) // 12):
        rows.append(
            {
                "load_req_s": round(float(load[index]), 1),
                "observed": round(float(observed[index]), 1),
                "smoothed": round(float(result.smoothed[index]), 1),
                "difference": round(float(result.difference[index]), 3),
            }
        )
    table_printer("Figure 2: Kneedle on a Solr linear-ramp run", rows)
    print(
        f"knee at {result.knee_x:.0f} req/s (paper: ~700), "
        f"threshold Upsilon = {labeler.threshold_:.1f}"
    )

    # Shape assertions: the knee sits at the capacity elbow.
    assert 700.0 <= result.knee_x <= 900.0
    assert abs(result.knee_y - 800.0) < 60.0
