"""Table 2: hyper-parameter grid search (reduced grid).

The paper grid-searches each algorithm with 5-fold cross-validation
grouped by training run (20 runs train / 5 validate per fold).  The
full grid is hours of compute; this bench runs a reduced random-forest
grid over the axes the paper searched (n_estimators,
min_samples_leaf, criterion, class_weight) and reports every
combination's mean CV F1.
"""

from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import GridSearchCV, GroupKFold


def test_table2_random_forest_grid(
    benchmark, corpus, engineered, table_printer
):
    import numpy as np

    _, X_full, _ = engineered
    # The grid search costs folds x combinations full fits; a stratified
    # row subsample keeps the bench in minutes without changing which
    # configuration wins (the paper's full grid ran for hours).
    max_rows = 4000
    if X_full.shape[0] > max_rows:
        keep = np.random.default_rng(0).choice(
            X_full.shape[0], size=max_rows, replace=False
        )
        keep.sort()
    else:
        keep = np.arange(X_full.shape[0])
    X = X_full[keep]
    y, groups = corpus.y[keep], corpus.groups[keep]

    grid = {
        "n_estimators": [10, 25],
        "min_samples_leaf": [5, 20],
        "criterion": ["gini", "entropy"],
    }
    search = GridSearchCV(
        estimator=RandomForestClassifier(random_state=0),
        param_grid=grid,
        cv=GroupKFold(n_splits=5),
        scoring="f1",
    )

    benchmark.pedantic(
        lambda: search.fit(X, y, groups=groups), rounds=1, iterations=1
    )

    rows = [
        {
            "params": ", ".join(f"{k}={v}" for k, v in item["params"].items()),
            "mean_cv_f1": round(item["mean_score"], 4),
        }
        for item in sorted(
            search.results_, key=lambda item: item["mean_score"], reverse=True
        )
    ]
    table_printer("Table 2 (reduced): RF hyper-parameter grid", rows)
    print(f"selected: {search.best_params_} (paper: 250 trees, "
          f"min_samples_leaf=20, criterion=entropy, class_weight=None)")

    # Grouped CV scores are pessimistic (every fold validates on runs
    # whose bottleneck mix it never trained on); structural claims only.
    assert search.best_score_ > 0.5
    assert len(search.results_) == 8
    assert search.best_score_ == max(r["mean_score"] for r in search.results_)
