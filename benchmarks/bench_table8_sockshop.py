"""Table 8: Sockshop -- the larger, harder application.

Scored only over the three active Locust windows (the paper's 2997
samples).  Expected shape: every detector degrades relative to
TeaStore; CPU-AND-MEM best (0.699), monitorless second (0.598, ~89%
accuracy), CPU alone mediocre, MEM / CPU-OR-MEM collapse -- and the OR
aggregation over 14 services visibly inflates false positives
(motivating smarter aggregation, section 4.2.3).
"""

from repro.datasets.experiments import evaluate_detectors, sockshop_windows


def test_table8_sockshop(benchmark, model, multitenant, table_printer):
    _, sockshop = multitenant
    windows = sockshop_windows(len(sockshop.workload))

    comparison = benchmark.pedantic(
        lambda: evaluate_detectors(sockshop, model, k=2, window=windows),
        rounds=1,
        iterations=1,
    )

    table_printer("Table 8: Sockshop (evaluation windows only)", comparison.table())
    saturated = sockshop.y_true[windows].mean()
    print(
        f"windowed samples: {len(windows)}, saturated fraction: "
        f"{saturated:.3f} (paper: 0.101)"
    )

    rows = comparison.rows
    # Shape assertions: monitorless stays accurate and competitive with
    # every a-posteriori-tuned baseline, beats the MEM detector, and --
    # like the paper's CPU-AND-MEM -- the conjunctive rule pays for its
    # precision with the most missed saturation events.
    assert rows["monitorless"].accuracy > 0.75
    assert rows["monitorless"].f1 > rows["mem"].f1 - 0.05
    best = max(r.f1 for r in rows.values())
    assert rows["monitorless"].f1 > best - 0.35
    assert rows["cpu-and-mem"].fn == max(r.fn for r in rows.values())
