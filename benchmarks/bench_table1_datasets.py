"""Table 1: the 25 training runs -- configurations, saturation ratios
and the resource bottleneck each run actually exercises.

Regenerating the corpus is the benchmark; the assertion checks that
every run's *observed* modal bottleneck matches the paper's intended
label (the inventory is only useful if the simulated configurations
stress what the paper says they stress).
"""

BOTTLENECK_RESOURCE = {
    "Container-CPU": "cpu",
    "Host-CPU": "cpu",
    "IO-Bandwidth": "disk_bandwidth",
    "IO-Queue": "disk_queue",
    "IO-Wait": "disk_queue",
    "Mem-Bandwidth": "memory_bandwidth",
    "Network-Util": "network",
}


def test_table1_training_runs(benchmark, corpus, table_printer):
    summary = benchmark.pedantic(corpus.summary, rounds=1, iterations=1)

    rows = [
        {
            "#": item["run"],
            "service": item["service"],
            "traffic": item["traffic"],
            "samples": item["samples"],
            "saturated": item["saturated"],
            "intended": item["intended_bottleneck"],
            "observed": item["observed_bottleneck"],
        }
        for item in sorted(summary, key=lambda s: s["run"])
    ]
    table_printer("Table 1: training datasets", rows)
    print(
        f"total samples: {corpus.X.shape[0]}, features: {corpus.X.shape[1]}, "
        f"saturated fraction: {corpus.saturated_fraction:.2f} (paper: 0.26)"
    )

    # The intended bottleneck is the resource that binds *when the run
    # saturates*; interference partners pinned at constant sub-knee load
    # (e.g. run 23) never saturate, and their all-ticks modal resource
    # reflects whatever their noisy neighbour floods, so they are
    # excluded from the check.
    mismatches = [
        item["run"]
        for item in summary
        if item["saturated"] > 0.0
        and BOTTLENECK_RESOURCE[item["intended_bottleneck"]]
        != item["observed_bottleneck"]
    ]
    assert not mismatches, f"bottleneck mismatches in runs {mismatches}"
    assert corpus.X.shape[1] == 1040
