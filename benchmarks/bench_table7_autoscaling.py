"""Table 7: closed-loop autoscaling on the TeaStore trace.

Seven policies scale the TeaStore deployment while the bursty trace
plays; every scale-out replica lives 120 s.  For fairness all policies
are tied to scale Recommender and Auth together (paper section 4.2.2).

Expected shape: No-Scaling worst by far (183 violations in the paper);
the a-posteriori RT-based scaler best (1 violation, +7%); monitorless
close behind (+10%, 7 violations); CPU-AND-MEM cheapest but with >2x
monitorless' violations; MEM and CPU-OR-MEM 3-4x over-provisioned.
"""

import pytest

from repro.apps.sockshop import sockshop_application
from repro.apps.teastore import teastore_application
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.core.thresholds import BASELINE_KINDS, tune_threshold_baseline
from repro.datasets.experiments import (
    evaluation_nodes,
    sockshop_placements,
    teastore_placements,
)
from repro.orchestrator.autoscaler import ScalingRules
from repro.orchestrator.loop import Orchestrator
from repro.orchestrator.policies import (
    MonitorlessPolicy,
    NoScalingPolicy,
    ResponseTimePolicy,
    ThresholdPolicy,
)
from repro.telemetry.agent import TelemetryAgent
from repro.workloads.locust import staggered_locust_runs
from repro.workloads.traces import teastore_trace

from conftest import EVAL_DURATION, SEED


def _scaling_rules():
    return ScalingRules(
        placements={
            "auth": Placement(node="M2", cpu_limit=2.0, memory_limit=4 * 2**30),
            "recommender": Placement(node="M2", cpu_limit=1.0, memory_limit=4 * 2**30),
            "webui": Placement(node="M2", cpu_limit=1.0, memory_limit=4 * 2**30),
        },
        replica_lifespan=120,
        scale_groups=(("auth", "recommender"),),
    )


def _run_policy(policy_factory, duration):
    simulation = ClusterSimulation(evaluation_nodes(), seed=SEED)
    simulation.deploy(teastore_application(), teastore_placements())
    simulation.deploy(sockshop_application(), sockshop_placements())
    policy = policy_factory(simulation)
    rules = None if isinstance(policy, NoScalingPolicy) else _scaling_rules()
    orchestrator = Orchestrator(simulation, "teastore", policy, rules)
    workloads = {
        "teastore": teastore_trace(duration=duration, seed=SEED + 7),
        "sockshop": staggered_locust_runs(
            total_duration=duration,
            starts=tuple(int(duration * f) for f in (1 / 7, 3 / 7, 5 / 7)),
            run_duration=duration // 7,
            hatch_seconds=int(duration // 7 * 0.7),
        ),
    }
    return orchestrator.run(workloads)


@pytest.fixture(scope="module")
def tuned_baselines(model, multitenant):
    """The a-posteriori optimal thresholds from the Table-6 data."""
    teastore, _ = multitenant
    utilizations = teastore.utilizations()
    tuned = {}
    for kind in BASELINE_KINDS:
        baseline, _ = tune_threshold_baseline(kind, utilizations, teastore.y_true, k=2)
        tuned[kind] = baseline
    return tuned


def test_table7_autoscaling(benchmark, model, tuned_baselines, table_printer):
    duration = EVAL_DURATION
    agent = TelemetryAgent(seed=SEED)

    policies = {
        "A-posteriori CPU": lambda sim: ThresholdPolicy(tuned_baselines["cpu"], agent),
        "A-posteriori MEM": lambda sim: ThresholdPolicy(tuned_baselines["mem"], agent),
        "CPU-OR-MEM": lambda sim: ThresholdPolicy(
            tuned_baselines["cpu-or-mem"], agent
        ),
        "CPU-AND-MEM": lambda sim: ThresholdPolicy(
            tuned_baselines["cpu-and-mem"], agent
        ),
        "monitorless": lambda sim: MonitorlessPolicy(model, agent, window=16),
        "No Scaling (baseline)": lambda sim: NoScalingPolicy(),
        "RT-based (optimal)": lambda sim: ResponseTimePolicy(
            ["recommender", "auth"], rt_threshold=0.5
        ),
    }

    results = {}
    for name, factory in policies.items():
        results[name] = _run_policy(factory, duration)

    rows = []
    for name, result in results.items():
        rows.append(
            {
                "algorithm": name,
                "provisioning_avg": f"+{100 * result.average_provisioning:.0f}%",
                "slo_violations": result.slo_violation_count,
                "scale_outs": result.total_scale_outs,
            }
        )
    table_printer("Table 7: autoscaling on the TeaStore trace", rows)

    no_scaling = results["No Scaling (baseline)"].slo_violation_count
    monitorless = results["monitorless"]
    rt_optimal = results["RT-based (optimal)"]

    # Shape assertions (paper: 183 -> 7 for monitorless, 1 for RT-based).
    assert no_scaling > 0
    assert monitorless.slo_violation_count < no_scaling
    assert rt_optimal.slo_violation_count <= monitorless.slo_violation_count + 3
    assert monitorless.average_provisioning < 0.5  # modest provisioning

    # Benchmark target: one short monitorless closed-loop segment.
    benchmark.pedantic(
        lambda: _run_policy(
            lambda sim: MonitorlessPolicy(model, agent, window=16), 600
        ),
        rounds=1,
        iterations=1,
    )
