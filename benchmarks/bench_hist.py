"""Exact vs histogram-binned forest training wall-clock and accuracy.

Times the serial Table-1 forest fit under both tree-growth modes and
records the results to ``BENCH_hist.json`` at the repository root:

- ``exact``  -- the default mode after this PR (root presort + stable
  partition propagation; still bitwise identical to the historical
  trees, see ``tests/test_hist.py::TestExactFingerprint``);
- ``hist``   -- quantile-binned growth (``tree_method="hist"``),
  including the once-per-forest binning cost.

The headline stage trains on the *full* corpus (the paper trains on
all Table-1 samples; hist's per-tree advantage grows with sample
count).  A second exact-only stage repeats the 2000-sample workload
recorded as ``forest_fit`` in ``BENCH_parallel.json`` so the artifact
carries all three points for one comparable workload: ``exact_before``
(the committed pre-PR serial time), ``exact_after`` and -- scaled by
the headline ratio -- hist.

Accuracy is checked end to end: two full monitorless models (one per
mode) are trained on the corpus and scored on the unseen Elgg
application; the hist model's F1_2 must stay within ``MAX_F1_DELTA``
of exact.  The >= ``MIN_HIST_SPEEDUP`` serial-speedup floor is
asserted only on hosts with >= 4 usable cores (same convention as
``bench_parallel.py``: laptop-class CI runners record, big runners
enforce), while the F1 floor holds everywhere.

- ``BENCH_HIST_TREES``    forest size for the timing stages  (250)
- ``BENCH_HIST_SAMPLES``  sample cap, 0 = full corpus        (0)
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.model import MonitorlessModel
from repro.datasets.experiments import evaluate_detectors
from repro.ml.forest import RandomForestClassifier
from repro.parallel.jobs import available_cores

from conftest import N_TREES as MODEL_TREES
from conftest import SEED

N_TREES = int(os.environ.get("BENCH_HIST_TREES", "250"))
N_SAMPLES = int(os.environ.get("BENCH_HIST_SAMPLES", "0"))
REF_SAMPLES = 2000  # the BENCH_parallel.json forest_fit workload
MIN_HIST_SPEEDUP = 5.0
MAX_F1_DELTA = 0.01
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_hist.json"
PARALLEL_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"


def _fit_forest(X, y, tree_method: str) -> float:
    """Serial wall-clock of one Table-1 forest fit in ``tree_method``."""
    forest = RandomForestClassifier(
        n_estimators=N_TREES,
        min_samples_leaf=20,
        tree_method=tree_method,
        random_state=SEED,
        n_jobs=1,
    )
    started = time.perf_counter()
    forest.fit(X, y)
    return time.perf_counter() - started


def _exact_before_reference() -> dict | None:
    """The pre-PR serial forest-fit time from ``BENCH_parallel.json``."""
    if not PARALLEL_PATH.exists():
        return None
    stage = json.loads(PARALLEL_PATH.read_text())["stages"].get("forest_fit")
    if stage is None:
        return None
    return {
        "seconds": stage["seconds"]["1"],
        "trees": stage["trees"],
        "n_samples": stage["n_samples"],
        "source": PARALLEL_PATH.name,
    }


def _elgg_f1(corpus, elgg, tree_method: str) -> float:
    model = MonitorlessModel(
        classifier_params={
            "n_estimators": MODEL_TREES,
            "tree_method": tree_method,
        },
        random_state=SEED,
    )
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    comparison = evaluate_detectors(elgg, model, k=2)
    return float(comparison.rows["monitorless"].f1)


def test_hist_speedup(benchmark, corpus, elgg, table_printer):
    order = np.random.default_rng(SEED).permutation(len(corpus.y))
    keep = order[:N_SAMPLES] if N_SAMPLES else order
    X, y = corpus.X[keep], corpus.y[keep]
    cores = available_cores()

    seconds = {mode: _fit_forest(X, y, mode) for mode in ("exact", "hist")}
    speedup = seconds["exact"] / seconds["hist"]

    # The exact_before point in BENCH_parallel.json was recorded on a
    # 2000-sample slice; repeat exactly that workload in today's exact
    # mode so before/after are directly comparable.
    ref = order[:REF_SAMPLES]
    exact_after_ref = _fit_forest(corpus.X[ref], corpus.y[ref], "exact")

    f1 = {mode: _elgg_f1(corpus, elgg, mode) for mode in ("exact", "hist")}
    f1_delta = abs(f1["hist"] - f1["exact"])

    table_printer(
        f"Exact vs hist serial forest fit ({cores} usable cores, "
        f"{X.shape[0]} samples)",
        [
            {
                "mode": mode,
                "fit [s]": round(seconds[mode], 3),
                "speedup": round(seconds["exact"] / seconds[mode], 2),
                "elgg F1_2": round(f1[mode], 4),
            }
            for mode in ("exact", "hist")
        ],
    )

    enforce = cores >= 4
    record = {
        "cpu_count": cores,
        "trees": N_TREES,
        "n_samples": int(X.shape[0]),
        "n_features": int(X.shape[1]),
        "seconds": {mode: round(s, 3) for mode, s in seconds.items()},
        "hist_speedup": round(speedup, 2),
        "exact_before": _exact_before_reference(),
        "exact_after_ref": {
            "seconds": round(exact_after_ref, 3),
            "trees": N_TREES,
            "n_samples": int(min(REF_SAMPLES, len(order))),
        },
        "elgg_f1": {mode: round(score, 4) for mode, score in f1.items()},
        "f1_delta": round(f1_delta, 4),
        "model_trees": MODEL_TREES,
        "thresholds": {
            "hist_serial_speedup": MIN_HIST_SPEEDUP,
            "max_f1_delta": MAX_F1_DELTA,
        },
        "thresholds_enforced": enforce,
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # Accuracy must hold on every host; the wall-clock floor only where
    # the machine is big enough for timings to mean anything.
    assert f1_delta <= MAX_F1_DELTA, (
        f"hist F1 drifted by {f1_delta:.4f} (exact {f1['exact']:.4f}, "
        f"hist {f1['hist']:.4f})"
    )
    if enforce:
        assert speedup >= MIN_HIST_SPEEDUP, (
            f"hist serial speedup: {speedup:.2f}x "
            f"(exact {seconds['exact']:.1f}s, hist {seconds['hist']:.1f}s)"
        )

    # Benchmark target: one serial hist-mode forest fit.
    benchmark.pedantic(
        lambda: _fit_forest(X, y, "hist"), rounds=1, iterations=1
    )
