"""Drift-lifecycle benchmark: the seeded detect/retrain/promote loop.

Runs the deterministic drift scenario (:mod:`repro.lifecycle.scenario`:
a stationary TeaStore plateau hit mid-run by a bursty membw antagonist
plus a workload step) end to end with the full lifecycle attached, and
records the contract to ``BENCH_drift.json``:

- **always asserted**: the champion's serving decisions (per-tick SLO
  outcomes and scale-out count) are identical with and without the
  lifecycle attached, up to the promotion tick -- shadow serving
  observes, it never actuates; the promotion history is bitwise
  identical when the retrain corpus is built with two workers
  (``n_jobs`` contract) and across a mid-run kill-and-resume from an
  orchestrator checkpoint; drift is detected after the onset, the
  retrained challenger is promoted, and the registry ends with v1
  retired and v2 champion;
- recorded, and **enforced on >= 4-core hosts** following the
  ``bench_parallel.py`` convention: the wall-clock overhead of running
  the whole lifecycle (challenger shadow scoring, streaming drift
  histograms, two retrains) stays within a small multiple of the
  bare champion loop.
"""

import json
import time
from pathlib import Path

import pytest

from repro.core.model import MonitorlessModel
from repro.datasets.configs import run_by_id
from repro.datasets.generate import build_training_corpus
from repro.lifecycle import DriftScenarioConfig, DriftScenarioRunner
from repro.parallel.jobs import available_cores

from conftest import SEED

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_drift.json"
RESUME_TICK = 200
CHECKPOINT_INTERVAL = 50


@pytest.fixture(scope="module")
def small_model():
    """The quick-to-train solo champion the scenario defaults are tuned
    for -- same recipe as the ``tiny_model`` test fixture."""
    from repro.core.features.pipeline import PipelineConfig

    runs = [run_by_id(i) for i in (1, 2, 7, 9, 12, 24)]
    corpus = build_training_corpus(
        duration=80, calibration_duration=100, seed=3, runs=runs
    )
    model = MonitorlessModel(
        pipeline_config=PipelineConfig(temporal_windows=(1, 5)),
        classifier_params={"n_estimators": 15},
        random_state=SEED,
    )
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    return model


def _run_collecting(runner):
    """Advance a runner to the end, keeping each tick's SLO outcome."""
    outcomes = []
    while runner.t < runner.config.duration:
        runner.run_until(runner.t + 1)
        outcomes.append(runner._violated())
    return outcomes, runner.finish()


def test_drift_lifecycle(benchmark, small_model, table_printer, tmp_path):
    cores = available_cores()
    config = DriftScenarioConfig()

    started = time.perf_counter()
    runner = DriftScenarioRunner(small_model, tmp_path / "fresh", config)
    outcomes, result = _run_collecting(runner)
    lifecycle_seconds = time.perf_counter() - started
    history = result.promotion_history()

    # Scenario contract (always asserted): detect after the onset,
    # retrain, promote the challenger, retire the old champion.
    assert result.detection_tick is not None
    assert (
        result.onset_tick
        <= result.detection_tick
        <= result.onset_tick + 2 * config.antagonist_period
    )
    assert result.promoted and result.promotion_tick > result.retrain_tick
    assert result.champion_version == 2
    stages = {r["version"]: r["stage"] for r in result.lineage}
    assert stages[1] == "retired" and stages[2] == "champion"

    # Shadow serving never actuates (always asserted): with the
    # lifecycle disabled the loop makes the same decisions, so SLO
    # outcomes match tick for tick until the promotion swaps models.
    started = time.perf_counter()
    baseline = DriftScenarioRunner(
        small_model,
        tmp_path / "baseline",
        DriftScenarioConfig(lifecycle_enabled=False),
    )
    base_outcomes, base_result = _run_collecting(baseline)
    baseline_seconds = time.perf_counter() - started
    promotion = result.promotion_tick
    assert outcomes[:promotion] == base_outcomes[:promotion], (
        "champion decisions changed while the challenger was shadow-only"
    )
    assert base_result.champion_version == 1

    # n_jobs determinism (always asserted): retraining with two worker
    # processes reproduces the promotion history bitwise.
    parallel_result = DriftScenarioRunner(
        small_model,
        tmp_path / "parallel",
        DriftScenarioConfig(n_jobs=2),
    )
    parallel_result.run_until()
    assert parallel_result.finish().promotion_history() == history, (
        "promotion history differs by n_jobs"
    )

    # Kill-and-resume determinism (always asserted): only the
    # checkpoint file survives the "crash" at RESUME_TICK.
    checkpoint = tmp_path / "scenario.ckpt"
    partial = DriftScenarioRunner(small_model, tmp_path / "resume", config)
    partial.run_until(
        RESUME_TICK,
        checkpoint_path=checkpoint,
        checkpoint_interval=CHECKPOINT_INTERVAL,
    )
    del partial
    resumed = DriftScenarioRunner.resume(checkpoint, config)
    resumed.run_until()
    assert resumed.finish().promotion_history() == history, (
        "promotion history differs across kill-and-resume"
    )

    overhead_ratio = lifecycle_seconds / max(baseline_seconds, 1e-9)
    table_printer(
        f"Drift lifecycle, {config.duration} ticks ({cores} usable cores)",
        [
            {"quantity": "onset_tick", "value": result.onset_tick},
            {"quantity": "detection_tick", "value": result.detection_tick},
            {"quantity": "retrain_tick", "value": result.retrain_tick},
            {"quantity": "promotion_tick", "value": result.promotion_tick},
            {"quantity": "champion_version", "value": result.champion_version},
            {"quantity": "violations", "value": result.violations},
            {"quantity": "scale_outs", "value": result.scale_outs},
            {"quantity": "lifecycle_seconds", "value": round(lifecycle_seconds, 2)},
            {"quantity": "baseline_seconds", "value": round(baseline_seconds, 2)},
            {"quantity": "overhead_ratio", "value": round(overhead_ratio, 2)},
        ],
    )

    enforce = cores >= 4
    record = {
        "cpu_count": cores,
        "duration": config.duration,
        "seed": config.seed,
        "onset_tick": result.onset_tick,
        "detection_tick": result.detection_tick,
        "retrain_tick": result.retrain_tick,
        "promotion_tick": result.promotion_tick,
        "champion_version": result.champion_version,
        "violations": result.violations,
        "scale_outs": result.scale_outs,
        "history": result.history,
        "lineage": history["lineage"],
        "n_jobs_bitwise_identical": True,
        "resume_bitwise_identical": True,
        "champion_unperturbed_until_promotion": True,
        "lifecycle_seconds": round(lifecycle_seconds, 3),
        "baseline_seconds": round(baseline_seconds, 3),
        "shadow_overhead_ratio": round(overhead_ratio, 3),
        "thresholds_enforced": enforce,
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if enforce:
        # The whole lifecycle -- shadow scoring every tick, streaming
        # drift histograms and two full retrains -- must stay within a
        # small multiple of the bare champion loop.
        assert overhead_ratio <= 3.0

    # Benchmark target: a short no-antagonist scenario end to end
    # (loop + lifecycle bookkeeping without the retrain spikes).
    def quick_scenario():
        quick = DriftScenarioRunner(
            small_model,
            tmp_path / "bench",
            DriftScenarioConfig(duration=60, antagonist=None),
        )
        quick.run_until()
        return quick.finish()

    benchmark.pedantic(quick_scenario, rounds=1, iterations=1)
