"""Fleet-serving benchmark: the vectorized struct-of-arrays path.

Measures the end-to-end fleet loop -- one ``(n_containers x
n_features)`` matrix per tick from telemetry synthesis through one
``predict_proba`` to per-cell autoscaling, sharded over
``parallel_map`` workers -- and records the contract to
``BENCH_fleet.json``:

- **correctness** (always asserted): on a >= 256-container fleet the
  vectorized path's per-tick saturation decisions equal the
  per-container streaming ``MonitorlessPolicy`` reference
  container-for-container;
- **resilience** (always asserted): killing a shard's worker mid-run
  leaves the merged result bitwise identical to an uninterrupted run,
  resumed from the shard's last ``REPRO-CKPT`` checkpoint;
- **scale** (enforced only on >= 4-core hosts, as in
  ``bench_parallel.py``): >= 5 000 containers advance at >= 2 fleet
  ticks per second end to end.  The record also carries the per-phase
  loop breakdown (simulate / telemetry / features / predict / policy
  seconds summed over shards) so regressions are attributable.

Environment knobs (defaults target the scale floor):

- ``MONITORLESS_BENCH_FLEET_CELLS``  cells in the scale run (default
  715; 7 containers each -> 5 005 containers)
- ``MONITORLESS_BENCH_FLEET_TICKS``  ticks in the scale run (default 6)
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core.model import MonitorlessModel
from repro.datasets.configs import run_by_id
from repro.datasets.generate import build_training_corpus
from repro.fleet.orchestrator import (
    FleetOrchestrator,
    FleetShardRunner,
    build_cell,
    default_fleet_workloads,
    make_fleet_specs,
)
from repro.orchestrator.policies import MonitorlessPolicy
from repro.parallel.jobs import available_cores

from conftest import SEED

SCALE_CELLS = int(os.environ.get("MONITORLESS_BENCH_FLEET_CELLS", "715"))
SCALE_TICKS = int(os.environ.get("MONITORLESS_BENCH_FLEET_TICKS", "6"))
CROSS_CHECK_CELLS = 37  # 7 containers each -> 259 >= the 256 floor
CROSS_CHECK_TICKS = 12
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_fleet.json"


@pytest.fixture(scope="module")
def small_model():
    """Same quick-to-train model as ``bench_chaos.py``."""
    runs = [run_by_id(i) for i in (1, 2, 7, 9, 12, 24)]
    corpus = build_training_corpus(
        duration=80, calibration_duration=100, seed=3, runs=runs
    )
    model = MonitorlessModel(
        classifier_params={"n_estimators": 15}, random_state=SEED
    )
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    return model


def _cross_check(model) -> dict:
    """Fleet decisions vs the per-container reference, >= 256 containers."""
    specs = make_fleet_specs(CROSS_CHECK_CELLS, base_seed=SEED)
    workloads = default_fleet_workloads(
        CROSS_CHECK_CELLS, CROSS_CHECK_TICKS, seed=SEED
    )
    runner = FleetShardRunner(0, specs, model)
    runner.start()
    for t in range(CROSS_CHECK_TICKS):
        runner.tick(workloads[:, t])
    fleet = runner.finish()

    mismatches = 0
    reference_decisions = [set() for _ in range(CROSS_CHECK_TICKS)]
    for row, spec in enumerate(specs):
        cell = build_cell(spec)
        policy = MonitorlessPolicy(model, cell.agent, window=16, streaming=True)
        for t in range(CROSS_CHECK_TICKS):
            cell.simulation.step({cell.application: float(workloads[row, t])})
            saturated = policy.saturated_services(
                cell.simulation, cell.application, t
            )
            for service in saturated:
                reference_decisions[t].add((spec.namespace, service))
            cell.autoscaler.act(saturated, t)
    for t in range(CROSS_CHECK_TICKS):
        if set(fleet.decisions[t]) != reference_decisions[t]:
            mismatches += 1
    return {
        "containers": 7 * CROSS_CHECK_CELLS,
        "cells": CROSS_CHECK_CELLS,
        "ticks": CROSS_CHECK_TICKS,
        "decisions": sum(len(d) for d in fleet.decisions),
        "mismatched_ticks": mismatches,
    }


def _worker_kill(model, checkpoint_dir) -> dict:
    """Bitwise rescue of a shard whose worker dies mid-run."""
    ticks = 25
    specs = make_fleet_specs(4, base_seed=SEED)
    workloads = default_fleet_workloads(4, ticks, seed=SEED)
    clean = FleetOrchestrator(
        specs, model, n_shards=2, n_jobs=2
    ).run(workloads)
    crashed = FleetOrchestrator(
        specs, model, n_shards=2, n_jobs=2,
        checkpoint_dir=checkpoint_dir, checkpoint_interval=6,
        die_at_tick={0: 15},
    ).run(workloads)
    identical = crashed.decisions == clean.decisions and all(
        np.array_equal(
            clean.cells[ns].extra_replicas, crashed.cells[ns].extra_replicas
        )
        for ns in clean.cells
    )
    return {
        "ticks": ticks,
        "kill_tick": 15,
        "resumed_from_tick": crashed.shard_results[0].resumed_from_tick,
        "bitwise_identical": identical,
    }


def test_fleet_scale(benchmark, small_model, table_printer, tmp_path):
    obs.disable()
    obs.reset()
    cores = available_cores()
    enforce = cores >= 4

    cross_check = _cross_check(small_model)
    assert cross_check["mismatched_ticks"] == 0, (
        "fleet decisions diverged from the per-container reference"
    )
    assert cross_check["decisions"] > 0, "cross-check never saturated"

    worker_kill = _worker_kill(small_model, tmp_path)
    assert worker_kill["bitwise_identical"], (
        "crash rescue changed the fleet result"
    )
    assert worker_kill["resumed_from_tick"] == 12, (
        "the worker kill never fired (no checkpoint resume observed)"
    )

    # The scale run: build the fleet, then time the serving loop alone.
    n_containers = 7 * SCALE_CELLS
    specs = make_fleet_specs(SCALE_CELLS, base_seed=SEED)
    workloads = default_fleet_workloads(SCALE_CELLS, SCALE_TICKS, seed=SEED)
    orchestrator = FleetOrchestrator(specs, small_model, n_jobs=-1)
    started = time.perf_counter()
    result = orchestrator.run(workloads)
    elapsed = time.perf_counter() - started
    ticks_per_second = SCALE_TICKS / elapsed

    # Where the serving loop spends its time, summed over shards
    # (telemetry synthesis / feature engineering / inference / policy
    # bookkeeping / simulation advance).
    phase_seconds: dict[str, float] = {}
    for shard in result.shard_results:
        for phase, seconds in shard.phase_seconds.items():
            phase_seconds[phase] = phase_seconds.get(phase, 0.0) + seconds

    rows = [
        {
            "quantity": "containers",
            "value": n_containers,
        },
        {"quantity": "cells", "value": SCALE_CELLS},
        {"quantity": "ticks", "value": SCALE_TICKS},
        {"quantity": "shards", "value": orchestrator.n_shards},
        {"quantity": "elapsed_s", "value": round(elapsed, 2)},
        {"quantity": "ticks_per_s", "value": round(ticks_per_second, 3)},
        {
            "quantity": "container_ticks_per_s",
            "value": round(n_containers * ticks_per_second),
        },
        {
            "quantity": "decisions",
            "value": sum(len(d) for d in result.decisions),
        },
        {"quantity": "scale_outs", "value": result.total_scale_outs},
    ]
    rows.extend(
        {"quantity": f"phase_{phase}_s", "value": round(seconds, 3)}
        for phase, seconds in sorted(phase_seconds.items())
    )
    table_printer(
        f"Fleet serving path ({cores} usable cores)", rows
    )

    record = {
        "cpu_count": cores,
        "seed": SEED,
        "containers": n_containers,
        "cells": SCALE_CELLS,
        "ticks": SCALE_TICKS,
        "n_shards": orchestrator.n_shards,
        "elapsed_seconds": round(elapsed, 3),
        "ticks_per_second": round(ticks_per_second, 4),
        "container_ticks_per_second": round(
            n_containers * ticks_per_second, 1
        ),
        "decisions": sum(len(d) for d in result.decisions),
        "scale_outs": result.total_scale_outs,
        "phase_seconds": {
            phase: round(seconds, 3)
            for phase, seconds in sorted(phase_seconds.items())
        },
        "cross_check": cross_check,
        "worker_kill": worker_kill,
        "floor_containers": 5000,
        "floor_ticks_per_second": 2.0,
        "thresholds_enforced": enforce,
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if enforce:
        assert n_containers >= 5000, (
            "the scale run must cover at least 5000 containers"
        )
        assert ticks_per_second >= 2.0, (
            f"fleet advanced {ticks_per_second:.2f} ticks/s; "
            f"the floor is 2.0"
        )

    # Benchmark target: a small steady-state fleet segment.
    bench_specs = make_fleet_specs(8, base_seed=SEED)
    bench_workloads = default_fleet_workloads(8, 10, seed=SEED)

    def _segment():
        runner = FleetShardRunner(0, bench_specs, small_model)
        runner.start()
        for t in range(10):
            runner.tick(bench_workloads[:, t])
        return runner.finish()

    benchmark.pedantic(_segment, rounds=1, iterations=1)
