"""Streaming vs batch data path in the closed autoscaling loop.

The batch monitorless policy re-synthesizes and re-transforms a
16-second sliding window for every container on every tick -- O(window)
work per container-tick, paid again and again for rows already seen.
The streaming policy holds one persistent telemetry stream and one
pipeline stream per container and only pushes the new row -- O(1) per
container-tick.

This benchmark drives the same TeaStore closed loop through both data
paths at two trace lengths and records wall-clock times plus the
speedup to ``BENCH_streaming.json`` at the repository root.  The
speedup is expected to grow slightly with trace length (longer runs
amortize the fixed setup) and must be at least 5x at 3000 ticks.
"""

import json
import time
from pathlib import Path

from repro.apps.teastore import teastore_application
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.core.model import MonitorlessModel
from repro.datasets.configs import run_by_id
from repro.datasets.experiments import evaluation_nodes, teastore_placements
from repro.datasets.generate import build_training_corpus
from repro.orchestrator.autoscaler import ScalingRules
from repro.orchestrator.loop import Orchestrator
from repro.orchestrator.policies import MonitorlessPolicy
from repro.telemetry.agent import TelemetryAgent
from repro.workloads.patterns import linear_ramp

import pytest

from conftest import SEED

DURATIONS = (300, 3000)
MIN_SPEEDUP_AT_3000 = 5.0
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_streaming.json"


@pytest.fixture(scope="module")
def small_model():
    """A quick-to-train model with the paper's full (1, 5, 15) temporal
    windows, so the batch path's 16-row window is the honest cost."""
    runs = [run_by_id(i) for i in (1, 2, 7, 9, 12, 24)]
    corpus = build_training_corpus(
        duration=80, calibration_duration=100, seed=3, runs=runs
    )
    model = MonitorlessModel(
        classifier_params={"n_estimators": 15}, random_state=SEED
    )
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    return model


def _closed_loop(model, streaming: bool, duration: int):
    simulation = ClusterSimulation(evaluation_nodes(), seed=SEED)
    simulation.deploy(teastore_application(), teastore_placements())
    agent = TelemetryAgent(seed=SEED)
    policy = MonitorlessPolicy(model, agent, window=16, streaming=streaming)
    rules = ScalingRules(
        placements={
            "auth": Placement(node="M2", cpu_limit=2.0, memory_limit=4 * 2**30),
            "recommender": Placement(
                node="M2", cpu_limit=1.0, memory_limit=4 * 2**30
            ),
            "webui": Placement(node="M2", cpu_limit=1.0, memory_limit=4 * 2**30),
        },
        replica_lifespan=120,
        scale_groups=(("auth", "recommender"),),
    )
    orchestrator = Orchestrator(simulation, "teastore", policy, rules)
    workload = linear_ramp(duration, 10, 240)
    started = time.perf_counter()
    result = orchestrator.run({"teastore": workload})
    elapsed = time.perf_counter() - started
    return result, elapsed


def test_streaming_speedup(benchmark, small_model, table_printer):
    rows = []
    record = {"durations": {}}
    for duration in DURATIONS:
        batch_result, batch_seconds = _closed_loop(small_model, False, duration)
        stream_result, stream_seconds = _closed_loop(small_model, True, duration)
        speedup = batch_seconds / stream_seconds
        record["durations"][str(duration)] = {
            "batch_seconds": round(batch_seconds, 3),
            "streaming_seconds": round(stream_seconds, 3),
            "speedup": round(speedup, 2),
            "batch_ticks_per_second": round(duration / batch_seconds, 1),
            "streaming_ticks_per_second": round(duration / stream_seconds, 1),
            "batch_slo_violations": batch_result.slo_violation_count,
            "streaming_slo_violations": stream_result.slo_violation_count,
            "batch_scale_outs": batch_result.total_scale_outs,
            "streaming_scale_outs": stream_result.total_scale_outs,
        }
        rows.append(
            {
                "ticks": duration,
                "batch_s": f"{batch_seconds:.2f}",
                "stream_s": f"{stream_seconds:.2f}",
                "speedup": f"{speedup:.1f}x",
                "stream_ticks/s": f"{duration / stream_seconds:.0f}",
            }
        )
    table_printer("Streaming vs batch closed-loop data path", rows)

    speedup_at_3000 = record["durations"]["3000"]["speedup"]
    record["speedup_at_3000"] = speedup_at_3000
    record["min_required_speedup"] = MIN_SPEEDUP_AT_3000
    record["generated_utc"] = time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
    )
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert speedup_at_3000 >= MIN_SPEEDUP_AT_3000

    # Benchmark target: one short streaming closed-loop segment.
    benchmark.pedantic(
        lambda: _closed_loop(small_model, True, 300), rounds=1, iterations=1
    )
