"""Interference transfer benchmark: solo-trained model vs noisy
neighbours.

Builds the neighbour-caused degradation corpus
(:mod:`repro.datasets.interference`: victims at constant sub-knee load
co-located with single-resource antagonists on one node) and scores
the small solo-trained model on it, recording the transfer contract to
``BENCH_interference.json``:

- **always asserted**: the corpus is bitwise identical when built
  serially and with two worker processes (the ``n_jobs`` determinism
  contract), emitted ``kernel.all.cpu.steal`` is non-negative
  everywhere, ~0 on solo-control scenarios and high once a CPU
  antagonist switches on, and the label bookkeeping is coherent
  (neighbour-caused seconds only in antagonist scenarios);
- recorded, and **enforced on >= 4-core hosts** following the
  ``bench_parallel.py`` convention: recall on neighbour-caused
  degradation, recall on self-overload (the training distribution),
  and the false-alarm delta between clean interference seconds and
  clean solo seconds;
- **before/after the interference mix-in**: the same solo runs
  retrained with ``build_training_corpus(interference_scenarios=...)``
  (the drift-triggered retrainer's corpus shape) must close the
  membw/disk transfer gap the solo model leaves open.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.model import MonitorlessModel
from repro.datasets.configs import run_by_id
from repro.datasets.generate import build_training_corpus
from repro.datasets.interference import (
    CAUSE_NEIGHBOR,
    INTERFERENCE_SCENARIOS,
    build_interference_corpus,
    transfer_eval,
)
from repro.parallel.jobs import available_cores
from repro.telemetry.catalog import default_catalog

from conftest import SEED

DURATION = 120
CALIBRATION = 100
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_interference.json"


@pytest.fixture(scope="module")
def small_model():
    """Same quick-to-train solo-tenant model as ``bench_chaos.py``."""
    runs = [run_by_id(i) for i in (1, 2, 7, 9, 12, 24)]
    corpus = build_training_corpus(
        duration=80, calibration_duration=100, seed=3, runs=runs
    )
    model = MonitorlessModel(
        classifier_params={"n_estimators": 15}, random_state=SEED
    )
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    return model


def test_interference_transfer(benchmark, small_model, table_printer):
    cores = available_cores()

    started = time.perf_counter()
    corpus = build_interference_corpus(
        duration=DURATION, calibration_duration=CALIBRATION, seed=3
    )
    build_seconds = time.perf_counter() - started

    # Determinism cross-check (always asserted): a two-worker build
    # must reproduce the serial corpus bitwise.
    parallel = build_interference_corpus(
        duration=DURATION, calibration_duration=CALIBRATION, seed=3, n_jobs=2
    )
    assert np.array_equal(corpus.X, parallel.X), "corpus X differs by n_jobs"
    assert np.array_equal(corpus.y, parallel.y)
    assert np.array_equal(corpus.cause, parallel.cause)
    assert np.array_equal(corpus.groups, parallel.groups)

    # Steal-signal contract (always asserted).
    names = [spec.name for spec in default_catalog().host]
    i_steal = names.index("kernel.all.cpu.steal")
    assert float(corpus.X[:, i_steal].min()) >= 0.0
    for run in corpus.runs:
        steal = run.X[:DURATION, i_steal]
        if run.scenario.antagonist == "cpu":
            assert steal[run.onset_tick :].mean() > 10.0 * (
                steal[: run.onset_tick].mean() + 1e-9
            ), f"{run.scenario.label}: steal did not rise at onset"
        if run.scenario.antagonist is None:
            assert steal.mean() < 0.5, (
                f"{run.scenario.label}: solo run shows steal"
            )
        if run.scenario.antagonist is None and run.scenario.victim_load < 1.0:
            assert run.y.sum() == 0, f"{run.scenario.label}: solo control degraded"
    neighbor_groups = set(
        corpus.groups[corpus.cause == CAUSE_NEIGHBOR].tolist()
    )
    antagonist_groups = {
        run.scenario.scenario_id
        for run in corpus.runs
        if run.scenario.antagonist is not None
    }
    assert neighbor_groups <= antagonist_groups

    result = transfer_eval(small_model, corpus)

    # Before/after the interference mix-in: retrain the same solo runs
    # with the neighbour-contention corpus folded into the training set
    # (``build_training_corpus(interference_scenarios=...)``, the shape
    # the drift-triggered retrainer uses).  The mix-in is built at a
    # different seed than the evaluation corpus, so the model sees the
    # contention *distribution*, not the literal evaluation rows.
    mixed_corpus = build_training_corpus(
        duration=80,
        calibration_duration=CALIBRATION,
        seed=5,
        runs=[run_by_id(i) for i in (1, 2, 7, 9, 12, 24)],
        interference_scenarios=list(INTERFERENCE_SCENARIOS),
    )
    mixed_model = MonitorlessModel(
        classifier_params={"n_estimators": 15}, random_state=SEED
    )
    mixed_model.fit(
        mixed_corpus.X, mixed_corpus.meta, mixed_corpus.y, mixed_corpus.groups
    )
    mixed = transfer_eval(mixed_model, corpus)

    per_solo = {row["scenario"]: row for row in result["per_scenario"]}
    per_mixed = {row["scenario"]: row for row in mixed["per_scenario"]}

    table_printer(
        f"Solo->interference transfer, {DURATION}s x "
        f"{len(corpus.runs)} scenarios ({cores} usable cores)",
        [
            {"quantity": key, "value": result[key]}
            for key in (
                "samples",
                "interference_recall",
                "self_recall",
                "false_alarm_interference",
                "false_alarm_solo",
                "false_alarm_delta",
            )
        ]
        + [
            {
                "quantity": "interference_recall (mixed)",
                "value": mixed["interference_recall"],
            },
            {
                "quantity": "membw recall solo -> mixed",
                "value": (
                    per_solo[102]["recall_neighbor"],
                    per_mixed[102]["recall_neighbor"],
                ),
            },
            {
                "quantity": "disk recall solo -> mixed",
                "value": (
                    per_solo[103]["recall_neighbor"],
                    per_mixed[103]["recall_neighbor"],
                ),
            },
        ],
    )

    enforce = cores >= 4
    record = {
        "cpu_count": cores,
        "duration": DURATION,
        "calibration_duration": CALIBRATION,
        "seed": 3,
        "corpus_build_seconds": round(build_seconds, 3),
        "n_jobs_bitwise_identical": True,
        "steal_nonnegative": True,
        "scenarios": corpus.summary(),
        **{
            key: result[key]
            for key in (
                "samples",
                "interference_recall",
                "self_recall",
                "false_alarm_interference",
                "false_alarm_solo",
                "false_alarm_delta",
            )
        },
        "per_scenario": result["per_scenario"],
        "mixed_model": {
            "train_seed": 5,
            "interference_recall": mixed["interference_recall"],
            "self_recall": mixed["self_recall"],
            "false_alarm_solo": mixed["false_alarm_solo"],
            "recall_membw_before": per_solo[102]["recall_neighbor"],
            "recall_membw_after": per_mixed[102]["recall_neighbor"],
            "recall_disk_before": per_solo[103]["recall_neighbor"],
            "recall_disk_after": per_mixed[103]["recall_neighbor"],
            "per_scenario": mixed["per_scenario"],
        },
        "thresholds_enforced": enforce,
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if enforce:
        # The solo-trained model must catch CPU-steal interference on
        # the matching victim and keep solo false alarms modest; the
        # membw/disk transfer gap is recorded, not asserted -- it is
        # the finding this benchmark exists to expose.
        per = {row["scenario"]: row for row in result["per_scenario"]}
        assert per[101]["recall_neighbor"] >= 0.9
        assert result["interference_recall"] >= 0.15
        assert result["self_recall"] >= 0.25
        assert result["false_alarm_solo"] <= 0.25
        # The mix-in must close (not merely dent) the membw/disk
        # transfer gap without giving back self-overload recall.
        assert (
            mixed["interference_recall"] >= result["interference_recall"]
        )
        assert (
            per_mixed[102]["recall_neighbor"]
            >= per_solo[102]["recall_neighbor"]
        )
        assert (
            per_mixed[103]["recall_neighbor"]
            >= per_solo[103]["recall_neighbor"]
        )
        assert mixed["self_recall"] >= 0.25

    # Benchmark target: one scenario generated end to end.
    from repro.datasets.interference import generate_interference_run

    benchmark.pedantic(
        lambda: generate_interference_run(
            INTERFERENCE_SCENARIOS[0],
            duration=60,
            calibration_duration=CALIBRATION,
            seed=3,
        ),
        rounds=1,
        iterations=1,
    )
