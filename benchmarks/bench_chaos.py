"""Chaos-harness benchmark: the closed loop under seeded degradation.

Runs :func:`repro.reliability.chaos.run_chaos` -- the TeaStore closed
loop once clean and once under the default seeded schedule (>= 10%
metric dropout, injected hard/transient telemetry failures, NaN
corruption, blackout windows and a node slowdown) with the full
resilience stack (``ResilientTelemetry`` + ``FallbackPolicy``) -- and
records the robustness contract to ``BENCH_chaos.json``:

- the run completes with no unhandled exception;
- the fallback chain actually exercised demotion *and* recovery
  (read back from ``repro.obs`` counters);
- the SLO-violation delta versus the clean run stays within the
  documented bound (``max_violation_delta_fraction * duration``).

Following ``bench_parallel.py`` convention the assertions are
enforced only on hosts with >= 4 usable cores; smaller runners still
record the artifact.
"""

import json
import time
from pathlib import Path

from repro import obs
from repro.core.model import MonitorlessModel
from repro.datasets.configs import run_by_id
from repro.datasets.generate import build_training_corpus
from repro.parallel.jobs import available_cores
from repro.reliability.chaos import run_chaos

import pytest

from conftest import SEED

DURATION = 240
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_chaos.json"


@pytest.fixture(scope="module")
def small_model():
    """Same quick-to-train model as ``bench_streaming.py``."""
    runs = [run_by_id(i) for i in (1, 2, 7, 9, 12, 24)]
    corpus = build_training_corpus(
        duration=80, calibration_duration=100, seed=3, runs=runs
    )
    model = MonitorlessModel(
        classifier_params={"n_estimators": 15}, random_state=SEED
    )
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    return model


def test_chaos_harness(benchmark, small_model, table_printer):
    obs.disable()
    obs.reset()
    cores = available_cores()

    started = time.perf_counter()
    report = run_chaos(small_model, duration=DURATION, seed=SEED)
    elapsed = time.perf_counter() - started

    table_printer(
        f"Seeded chaos harness, {DURATION} ticks ({cores} usable cores)",
        report.rows(),
    )

    enforce = cores >= 4
    record = {
        "cpu_count": cores,
        "duration": DURATION,
        "seed": SEED,
        "harness_seconds": round(elapsed, 3),
        "clean_violations": report.clean_violations,
        "chaos_violations": report.chaos_violations,
        "violation_delta": report.violation_delta,
        "violation_bound": report.violation_bound,
        "bound_fraction": report.bound_fraction,
        "within_bound": report.within_bound,
        "clean_scale_outs": report.clean_scale_outs,
        "chaos_scale_outs": report.chaos_scale_outs,
        "demotions": report.demotions,
        "recoveries": report.recoveries,
        "failsafe_entries": report.failsafe_entries,
        "failsafe_ticks": report.failsafe_ticks,
        "imputed_ticks": report.imputed_ticks,
        "ticks_lost": report.ticks_lost,
        "retries": report.retries,
        "nan_masked_values": report.nan_masked_values,
        "readings_dropped": report.readings_dropped,
        "health_final_states": sorted(set(report.health_final.values())),
        "telemetry_summary": report.telemetry_summary,
        "thresholds_enforced": enforce,
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if enforce:
        assert report.within_bound, (
            f"SLO-violation delta {report.violation_delta} exceeds the "
            f"documented bound {report.violation_bound:.0f}"
        )
        assert report.demotions >= 1, "chaos never demoted a container"
        assert report.recoveries >= 1, "no container recovered to healthy"
        assert report.imputed_ticks >= 1, "imputation never exercised"
        assert report.retries >= 1, "retry path never exercised"

    # Benchmark target: one short chaos segment (clean + chaos runs).
    benchmark.pedantic(
        lambda: run_chaos(small_model, duration=80, seed=SEED),
        rounds=1,
        iterations=1,
    )
