"""Flat-forest batched inference vs the per-tree predict loop.

Times single-thread ``predict_proba`` on full-corpus 250-tree forests
(exact and hist mode) across batch sizes -- from the 1-row serving
shape that bounds the per-container streaming tick up to the whole
engineered corpus -- and records the contract to ``BENCH_predict.json``
at the repository root:

- **correctness** (always asserted, both modes, every batch size): the
  flat kernel's probabilities are *bitwise identical* to the historical
  per-tree chunked vote loop, reproduced verbatim in this module;
- **throughput** (enforced only on >= 4-core hosts, the
  ``BENCH_parallel``/``BENCH_fleet`` gating convention): the flat path
  is >= 10x faster than the per-tree path at the serving batch shape.

The speedup is largest exactly where the fleet loop lives: at small
batches the per-tree path pays 250 Python-level walks + 250 vote
scatters per call, while the flat path runs one compacted traversal
over every (row, tree) lane.  Large batches are gather-bound in both
paths, so the recorded sweep is honest about the taper.

A third stage times the hist forest's uint8 byte kernel on
*pre-binned* codes (``predict_proba_binned``) against the float walk
and records the per-call ``Binner.transform`` cost separately: the
byte walk is the faster kernel, but binning raw floats costs more
than the traversal saves on this feature width -- which is why
``predict_proba`` never bins implicitly.

Environment knobs:

- ``BENCH_PREDICT_TREES``  forest size            (default 250)
- ``BENCH_PREDICT_BATCHES`` comma-separated batch sizes
  (default ``1,8,64,512,full``)
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.ml.base import check_array
from repro.ml.forest import RandomForestClassifier, _PREDICT_CHUNK_TREES
from repro.parallel.jobs import available_cores

from conftest import SEED

N_TREES = int(os.environ.get("BENCH_PREDICT_TREES", "250"))
BATCHES = os.environ.get("BENCH_PREDICT_BATCHES", "1,8,64,512,full")
SERVING_BATCH = 1  # the per-container streaming tick shape
MIN_FLAT_SPEEDUP = 10.0
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_predict.json"


def per_tree_proba(forest, X):
    """The historical public ``predict_proba``: one ``check_array``
    pass, then the chunked per-tree ``_apply`` + vote-scatter loop."""
    X = check_array(X)
    k = len(forest.classes_)
    partials = []
    for start in range(0, len(forest.estimators_), _PREDICT_CHUNK_TREES):
        chunk = forest.estimators_[start:start + _PREDICT_CHUNK_TREES]
        votes = np.zeros((X.shape[0], k))
        for tree in chunk:
            votes[:, tree.classes_] += tree.tree_value_[tree._apply(X)]
        partials.append(votes)
    accumulated = partials[0]
    for votes in partials[1:]:
        accumulated = accumulated + votes
    return accumulated / len(forest.estimators_)


def _time(fn, X, min_time=0.3, max_reps=500):
    fn(X)  # warm-up (compiles the flat representation on first call)
    reps = 0
    started = time.perf_counter()
    while True:
        fn(X)
        reps += 1
        elapsed = time.perf_counter() - started
        if elapsed >= min_time or reps >= max_reps:
            return elapsed / reps


def test_predict_speedup(benchmark, corpus, engineered, table_printer):
    _, X_all, _ = engineered
    y = corpus.y
    cores = available_cores()
    enforce = cores >= 4

    forests = {
        mode: RandomForestClassifier(
            n_estimators=N_TREES,
            min_samples_leaf=20,
            criterion="entropy",
            tree_method=mode,
            random_state=SEED,
            n_jobs=1,
        ).fit(X_all, y)
        for mode in ("exact", "hist")
    }

    batch_sizes = []
    for token in BATCHES.split(","):
        batch_sizes.append(
            X_all.shape[0] if token.strip() == "full"
            else min(int(token), X_all.shape[0])
        )
    order = np.random.default_rng(SEED).permutation(X_all.shape[0])

    rows = []
    sweep: dict[str, dict] = {mode: {} for mode in forests}
    serving_speedup: dict[str, float] = {}
    for mode, forest in forests.items():
        for n in batch_sizes:
            Xq = np.ascontiguousarray(X_all[order[:n]])
            reference = per_tree_proba(forest, Xq)
            flat = forest.predict_proba(Xq)
            assert np.array_equal(flat, reference), (
                f"flat path diverged from the per-tree reference "
                f"({mode}, batch {n})"
            )
            t_ref = _time(lambda Xq: per_tree_proba(forest, Xq), Xq)
            t_flat = _time(forest.predict_proba, Xq)
            speedup = t_ref / t_flat
            if n == SERVING_BATCH:
                serving_speedup[mode] = speedup
            sweep[mode][str(n)] = {
                "per_tree_ms": round(t_ref * 1e3, 3),
                "flat_ms": round(t_flat * 1e3, 3),
                "speedup": round(speedup, 2),
            }
            rows.append({
                "mode": mode,
                "batch": n,
                "per-tree [ms]": round(t_ref * 1e3, 3),
                "flat [ms]": round(t_flat * 1e3, 3),
                "speedup": round(speedup, 2),
                "rows/s (flat)": round(n / t_flat),
            })

    table_printer(
        f"Flat vs per-tree predict_proba ({N_TREES} trees, "
        f"{X_all.shape[1]} features, {cores} usable cores)",
        rows,
    )

    # Byte kernel on pre-binned codes vs the float walk (hist forest,
    # full batch): the uint8 walk itself is faster, but the per-call
    # binning pass is not free -- record all three so the default path
    # choice (float for raw input) is backed by numbers.
    hist_flat = forests["hist"]._flat()
    binner = forests["hist"].binner_
    X_full = np.ascontiguousarray(X_all[order])
    codes_full = binner.transform(X_full)
    assert np.array_equal(
        hist_flat.predict_proba_binned(codes_full),
        hist_flat.predict_proba(X_full),
    ), "byte kernel diverged from the float walk on pre-binned codes"
    t_float = _time(hist_flat.predict_proba, X_full)
    t_byte = _time(hist_flat.predict_proba_binned, codes_full)
    t_bin = _time(binner.transform, X_full)
    byte_kernel = {
        "batch": int(X_full.shape[0]),
        "float_walk_ms": round(t_float * 1e3, 3),
        "byte_walk_ms": round(t_byte * 1e3, 3),
        "binner_transform_ms": round(t_bin * 1e3, 3),
        "byte_kernel_speedup": round(t_float / t_byte, 2),
    }
    table_printer(
        "Hist byte kernel (pre-binned codes) vs float walk, full batch",
        [{
            "float walk [ms]": byte_kernel["float_walk_ms"],
            "byte walk [ms]": byte_kernel["byte_walk_ms"],
            "transform [ms]": byte_kernel["binner_transform_ms"],
            "kernel speedup": byte_kernel["byte_kernel_speedup"],
        }],
    )

    record = {
        "cpu_count": cores,
        "seed": SEED,
        "trees": N_TREES,
        "n_samples": int(X_all.shape[0]),
        "n_features": int(X_all.shape[1]),
        "hist_byte_path_compiled": forests["hist"]._flat().binned,
        "bitwise_equal_all_batches": True,  # asserted above, both modes
        "serving_batch": SERVING_BATCH,
        "serving_speedup": {
            mode: round(value, 2) for mode, value in serving_speedup.items()
        },
        "batches": sweep,
        "byte_kernel": byte_kernel,
        "floor_serving_speedup": MIN_FLAT_SPEEDUP,
        "thresholds_enforced": enforce,
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert forests["hist"]._flat().binned, (
        "hist-mode forest failed to compile the uint8 byte path"
    )
    if enforce:
        for mode, speedup in serving_speedup.items():
            assert speedup >= MIN_FLAT_SPEEDUP, (
                f"{mode} serving-shape speedup {speedup:.1f}x is below "
                f"the {MIN_FLAT_SPEEDUP:.0f}x floor"
            )

    # Benchmark target: one serving-shape flat predict on the exact
    # forest (the fleet tick's hot call).
    X_one = np.ascontiguousarray(X_all[order[:SERVING_BATCH]])
    benchmark.pedantic(
        lambda: forests["exact"].predict_proba(X_one), rounds=30, iterations=10
    )
