"""Serial vs multi-process wall-clock for the three parallel surfaces.

Times the ``n_jobs`` fan-out that PR 2 introduced -- forest training,
grid search, and corpus generation -- at 1/2/4/8 workers and records
the results to ``BENCH_parallel.json`` at the repository root.

All three workloads are bitwise deterministic across ``n_jobs`` (see
``tests/test_parallel.py``), so the timings compare identical
computations.  Speedup floors (2.5x forest fit, 2.0x corpus build at 4
workers) are asserted only when the host actually has >= 4 usable
cores; the recorded ``cpu_count`` says how to read the artifact.

- ``BENCH_PARALLEL_WORKERS``  comma list of worker counts (``1,2,4,8``)
- ``BENCH_PARALLEL_TREES``    forest size for the fit stage   (250)
- ``BENCH_PARALLEL_SAMPLES``  sample cap for forest/grid data (2000)
- ``BENCH_PARALLEL_DURATION`` corpus training-run seconds     (300)
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.generate import (
    build_training_corpus,
    clear_calibration_cache,
)
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import GridSearchCV, KFold
from repro.parallel.jobs import available_cores

from conftest import SEED

WORKERS = tuple(
    int(w) for w in os.environ.get("BENCH_PARALLEL_WORKERS", "1,2,4,8").split(",")
)
N_TREES = int(os.environ.get("BENCH_PARALLEL_TREES", "250"))
N_SAMPLES = int(os.environ.get("BENCH_PARALLEL_SAMPLES", "2000"))
CORPUS_DURATION = int(os.environ.get("BENCH_PARALLEL_DURATION", "300"))
MIN_FOREST_SPEEDUP_AT_4 = 2.5
MIN_CORPUS_SPEEDUP_AT_4 = 2.0
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"


@pytest.fixture(scope="module")
def training_data():
    """A deterministic (X, y) slice of the full Table-1 corpus."""
    corpus = build_training_corpus(
        duration=CORPUS_DURATION, calibration_duration=300, seed=SEED
    )
    keep = np.random.default_rng(SEED).permutation(len(corpus.y))[:N_SAMPLES]
    return corpus.X[keep], corpus.y[keep]


def _time_per_worker(run) -> dict[int, float]:
    """``{workers: seconds}`` for one workload callable."""
    seconds = {}
    for workers in WORKERS:
        started = time.perf_counter()
        run(workers)
        seconds[workers] = time.perf_counter() - started
    return seconds


def _record_stage(name: str, seconds: dict[int, float], **extra) -> dict:
    serial = seconds[1]
    return {
        "name": name,
        "seconds": {str(w): round(s, 3) for w, s in seconds.items()},
        "speedup": {str(w): round(serial / s, 2) for w, s in seconds.items()},
        **extra,
    }


def _fit_forest(X, y, workers: int) -> None:
    RandomForestClassifier(
        n_estimators=N_TREES,
        min_samples_leaf=20,
        random_state=SEED,
        n_jobs=workers,
    ).fit(X, y)


def _grid_search(X, y, workers: int) -> None:
    GridSearchCV(
        RandomForestClassifier(n_estimators=30, random_state=SEED),
        {"min_samples_leaf": [10, 20, 40], "criterion": ["gini", "entropy"]},
        cv=KFold(n_splits=3),
        scoring="f1",
        n_jobs=workers,
    ).fit(X, y)


def _build_corpus(workers: int) -> None:
    # Fork-started workers inherit the parent's warm ramp cache, so the
    # cache is dropped before every build to time equal work at every
    # worker count.
    clear_calibration_cache()
    build_training_corpus(
        duration=CORPUS_DURATION,
        calibration_duration=300,
        seed=SEED,
        n_jobs=workers,
    )


def test_parallel_speedup(benchmark, training_data, table_printer):
    X, y = training_data
    cores = available_cores()

    stages = [
        _record_stage(
            "forest_fit",
            _time_per_worker(lambda w: _fit_forest(X, y, w)),
            trees=N_TREES,
            n_samples=int(X.shape[0]),
            n_features=int(X.shape[1]),
        ),
        _record_stage(
            "grid_search",
            _time_per_worker(lambda w: _grid_search(X, y, w)),
            candidates=6,
            folds=3,
        ),
        _record_stage(
            "corpus_build",
            _time_per_worker(_build_corpus),
            duration=CORPUS_DURATION,
        ),
    ]

    table_printer(
        f"Serial vs parallel wall-clock ({cores} usable cores)",
        [
            {
                "stage": stage["name"],
                **{
                    f"{w}w [s]": stage["seconds"][str(w)] for w in WORKERS
                },
                **{
                    f"x{w}": stage["speedup"][str(w)]
                    for w in WORKERS
                    if w != 1
                },
            }
            for stage in stages
        ],
    )

    enforce = cores >= 4 and 4 in WORKERS
    record = {
        "cpu_count": cores,
        "workers": list(WORKERS),
        "stages": {stage.pop("name"): stage for stage in stages},
        "thresholds": {
            "forest_fit_speedup_at_4": MIN_FOREST_SPEEDUP_AT_4,
            "corpus_build_speedup_at_4": MIN_CORPUS_SPEEDUP_AT_4,
        },
        "thresholds_enforced": enforce,
        "generated_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if enforce:
        forest = record["stages"]["forest_fit"]["speedup"]["4"]
        corpus = record["stages"]["corpus_build"]["speedup"]["4"]
        assert forest >= MIN_FOREST_SPEEDUP_AT_4, (
            f"forest fit speedup at 4 workers: {forest}"
        )
        assert corpus >= MIN_CORPUS_SPEEDUP_AT_4, (
            f"corpus build speedup at 4 workers: {corpus}"
        )

    # Benchmark target: one parallel forest fit at the sweep's widest
    # worker count (equals serial on a single-core host).
    widest = min(max(WORKERS), cores)
    benchmark.pedantic(
        lambda: _fit_forest(X, y, widest), rounds=1, iterations=1
    )
