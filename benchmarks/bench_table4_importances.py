"""Table 4: the top-30 features by random-forest importance.

The paper's observation: nearly all top features are *multiplicative*
combinations, mostly CPU-level metrics crossed with network/memory
metrics (e.g. ``network.tcp.currestab x C-CPU-HIGH``), plus a few
averaged/lagged binary CPU levels; raw un-engineered metrics barely
appear.
"""


def test_table4_feature_importances(benchmark, model, table_printer):
    top30 = benchmark.pedantic(
        lambda: model.feature_importances(top=30), rounds=1, iterations=1
    )

    rows = [
        {"rank": rank + 1, "feature": name, "importance": f"{weight:.4f}"}
        for rank, (name, weight) in enumerate(top30)
    ]
    table_printer("Table 4: top-30 features by RF importance", rows)

    names = [name for name, _ in top30]
    interaction_share = sum(" x " in name for name in names) / len(names)
    temporal_share = sum(
        ("-AVG" in name or "-LAGGED" in name) for name in names
    ) / len(names)
    cpu_level_share = sum("C-CPU" in name for name in names) / len(names)
    print(
        f"interaction features: {interaction_share:.0%}, "
        f"temporal: {temporal_share:.0%}, C-CPU-derived: {cpu_level_share:.0%}"
    )

    # Shape: engineered (interaction) features dominate the table.
    assert interaction_share >= 0.4
    assert any("C-CPU" in name for name in names)
