"""Table 6: TeaStore in the multi-tenant deployment.

Expected shape (paper): rare saturation (~3% of samples) makes this
far harder than Elgg.  CPU-AND-MEM achieves the best F1_2 (0.738) but
misses more saturation events (10 FN_2); monitorless lands close
(0.712) with very few FN_2 (3); MEM and CPU-OR-MEM collapse to mass
false positives (F1_2 ~ 0.06).
"""

from repro.datasets.experiments import evaluate_detectors


def test_table6_teastore(benchmark, model, multitenant, table_printer):
    teastore, _ = multitenant
    comparison = benchmark.pedantic(
        lambda: evaluate_detectors(teastore, model, k=2), rounds=1, iterations=1
    )

    table_printer("Table 6: TeaStore (multi-tenant)", comparison.table())
    print(f"saturated fraction: {teastore.y_true.mean():.3f} (paper: 0.029)")

    rows = comparison.rows
    best_baseline = max(
        rows[kind].f1 for kind in ("cpu", "mem", "cpu-or-mem", "cpu-and-mem")
    )
    # Shape assertions: monitorless is competitive with the best tuned
    # baseline (which saw the ground truth) and keeps accuracy high.
    assert rows["monitorless"].f1 > best_baseline - 0.35
    assert rows["monitorless"].accuracy > 0.9
    assert rows["monitorless"].f1 > rows["mem"].f1 - 0.05
