"""Benchmarks for the section-5 extension features.

Not paper tables -- these quantify the future-work directions the
paper sketches:

- **edge offloading** (section 5, "Refine the architecture"): traffic
  reduction from predicting at the agents instead of shipping 1040
  metrics per container-second to the orchestrator;
- **domain adaptation** (section 5, "Calibration"): CORAL covariance
  alignment between the training services and an unseen application's
  metric distribution;
- **surrogate rules** (section 5, "Interpretability"): fidelity of a
  depth-3 rule set distilled from the forest.
"""

from repro.apps.teastore import teastore_application
from repro.cluster.simulation import ClusterSimulation
from repro.core.adaptation import CoralAligner, ImportanceWeighter
from repro.core.interpret import SurrogateTree
from repro.datasets.experiments import evaluation_nodes, teastore_placements
from repro.orchestrator.edge import EdgeDeployment
from repro.telemetry.agent import TelemetryAgent

from conftest import SEED


def test_edge_offloading_traffic(benchmark, model, table_printer):
    simulation = ClusterSimulation(evaluation_nodes(), seed=SEED)
    simulation.deploy(teastore_application(), teastore_placements())
    edge = EdgeDeployment(model, TelemetryAgent(seed=SEED), window=16)

    account = benchmark.pedantic(
        lambda: edge.account(simulation, "teastore", duration=3600),
        rounds=1,
        iterations=1,
    )
    rows = [
        {
            "mode": "centralized (1040 metrics/s/container)",
            "agent->orchestrator": f"{account.centralized_bytes / 1e6:.1f} MB/h",
        },
        {
            "mode": "edge (1 verdict/s/container)",
            "agent->orchestrator": f"{account.edge_bytes / 1e6:.3f} MB/h",
        },
    ]
    table_printer("Edge offloading: monitoring traffic per hour (TeaStore)", rows)
    print(f"reduction: {account.reduction_factor:.0f}x; agent CPU overhead "
          f"~{edge.agent_cpu_overhead_estimate(0.005, 9):.2f} cores/node")

    assert account.reduction_factor > 50
    # Edge predictions are the same model: the policy path must work.
    for _ in range(8):
        simulation.step({"teastore": 100.0})
    saturated = edge.saturated_services(simulation, "teastore", 7)
    assert isinstance(saturated, set)


def test_domain_adaptation_alignment(benchmark, corpus, model, elgg, table_printer):
    """CORAL between training-service features and the unseen Elgg
    application's features, measured in the engineered space."""
    meta = elgg.agent.catalog.feature_meta()
    container = elgg.containers()[0]
    target_raw = elgg.agent.instance_matrix(container, elgg.result.nodes)
    target = model.transform(target_raw, meta)
    source = model.transform(corpus.X[: len(target_raw)], corpus.meta)

    def align():
        aligner = CoralAligner().fit(source, target)
        return aligner, aligner.transform(source)

    aligner, aligned = benchmark.pedantic(align, rounds=1, iterations=1)
    before = aligner.alignment_distance(source, target)
    after = aligner.alignment_distance(aligned, target)

    weighter = ImportanceWeighter(random_state=SEED).fit(source, target)
    separability = weighter.domain_separability(source, target)

    table_printer(
        "Domain adaptation diagnostics (training services -> Elgg)",
        [
            {"quantity": "covariance distance before CORAL", "value": f"{before:.1f}"},
            {"quantity": "covariance distance after CORAL", "value": f"{after:.1f}"},
            {"quantity": "domain separability (0.5 = none)", "value": f"{separability:.2f}"},
        ],
    )
    assert after < before


def test_surrogate_rule_fidelity(benchmark, corpus, model, table_printer):
    features = model.transform(corpus.X, corpus.meta, corpus.groups)
    names = model.pipeline_.feature_names_
    predictions = model.classifier_.predict(features)

    surrogate = benchmark.pedantic(
        lambda: SurrogateTree(max_depth=3, min_samples_leaf=30).fit(
            features, predictions, names
        ),
        rounds=1,
        iterations=1,
    )
    fidelity = surrogate.fidelity(features, predictions)
    rules = surrogate.rules()
    table_printer(
        "Surrogate scaling rules (depth 3)",
        [{"rule": str(rule)} for rule in rules[:5]],
    )
    print(f"fidelity to the forest: {fidelity:.1%} over {len(rules)} rules")
    assert fidelity > 0.85
    assert all(len(rule.conditions) <= 3 for rule in rules)
