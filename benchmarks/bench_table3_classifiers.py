"""Table 3: the six classifiers -- training time, per-sample
classification time, and F1_2 on the first validation set.

As in the paper, every classifier trains on the engineered Table-1
corpus and is scored on the Elgg three-tier *validation* application
(that is why the paper's majority-label classifiers still reach
F1 = 0.858: the Elgg set is ~75% saturated).  Expected shape:
random forest best, XGBoost second, the linear models and the neural
network collapse toward the majority label, linear SVC worst.
"""

import time

import numpy as np
import pytest

from repro.core.aggregation import aggregate_or
from repro.core.evaluation import lagged_confusion
from repro.core.model import make_classifier

# (paper name, factory name, bench-scale overrides)
ALGORITHMS = [
    ("SVC", "svc", {"max_iter": 8}),
    ("Logistic Regression", "logistic_regression", {"max_iter": 5}),
    ("AdaBoost", "adaboost", {"n_estimators": 15}),
    ("Neural Net", "neural_net", {"epochs": 15}),
    ("XGBoost", "xgboost", {"n_estimators": 25, "max_depth": 6}),
    ("Random Forest", "random_forest", {"n_estimators": 60}),
]


@pytest.fixture(scope="module")
def validation_features(engineered, elgg):
    """Per-instance engineered features of the Elgg validation set."""
    pipeline, _, _ = engineered
    meta = elgg.agent.catalog.feature_meta()
    features = []
    for container in elgg.containers():
        matrix = elgg.agent.instance_matrix(container, elgg.result.nodes)
        transformed, _ = pipeline.transform(matrix, meta)
        features.append(transformed)
    return features


def test_table3_classifier_comparison(
    benchmark, corpus, engineered, elgg, validation_features, table_printer
):
    _, X_train, _ = engineered
    y_train = corpus.y

    rows = []
    scores = {}
    for paper_name, factory, overrides in ALGORITHMS:
        classifier = make_classifier(factory, random_state=0, **overrides)
        start = time.perf_counter()
        classifier.fit(X_train, y_train)
        train_seconds = time.perf_counter() - start

        start = time.perf_counter()
        per_instance = [classifier.predict(f) for f in validation_features]
        predict_seconds = time.perf_counter() - start
        n_predictions = sum(len(f) for f in validation_features)

        aggregated = aggregate_or(
            [np.asarray(p).astype(np.int64) for p in per_instance]
        )
        confusion = lagged_confusion(elgg.y_true, aggregated, k=2)
        scores[paper_name] = confusion.f1
        rows.append(
            {
                "algorithm": paper_name,
                "training_time": f"{train_seconds:.1f} s",
                "class_time": f"{1e3 * predict_seconds / n_predictions:.3f} ms",
                "F1_2": round(confusion.f1, 3),
            }
        )
    table_printer("Table 3: classifier comparison (validated on Elgg)", rows)
    majority_f1 = lagged_confusion(
        elgg.y_true, np.ones_like(elgg.y_true), k=2
    ).f1
    print(f"majority-label (always saturated) F1_2 = {majority_f1:.3f}")

    # Shape assertions (paper: RF 0.997 > XGB 0.944 >> linear ~ majority).
    # RF and XGBoost can tie near the ceiling; RF must be at (or within
    # noise of) the top and strong in absolute terms.
    assert scores["Random Forest"] >= max(scores.values()) - 0.01
    assert scores["Random Forest"] > 0.9
    assert scores["XGBoost"] > scores["Logistic Regression"] - 0.05

    # Benchmark target: the winning model family's training.
    benchmark.pedantic(
        lambda: make_classifier(
            "random_forest", random_state=0, n_estimators=20
        ).fit(X_train[:2000], y_train[:2000]),
        rounds=1,
        iterations=1,
    )
