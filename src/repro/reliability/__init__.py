"""Degradation-tolerant serving: telemetry resilience, policy
fallback, checkpoint/resume and the chaos harness.

Everything here is opt-in -- the historical entry points never route
through this package, so enabling nothing changes nothing.  See
"Degraded-mode operation" in ``docs/api_overview.md``.
"""

from repro.reliability.checkpoint import (
    CheckpointError,
    load_checkpoint,
    read_header,
    save_checkpoint,
)
from repro.reliability.chaos import (
    ChaosAgent,
    ChaosConfig,
    ChaosReport,
    InjectedTelemetryError,
    TelemetryBlackout,
    run_chaos,
)
from repro.reliability.fallback import (
    DEGRADED,
    FAILSAFE,
    HEALTHY,
    RECOVERING,
    FallbackPolicy,
)
from repro.reliability.telemetry import (
    ResilientInstanceStream,
    ResilientTelemetry,
    TelemetryFault,
    TelemetryUnavailable,
)

__all__ = [
    "CheckpointError",
    "load_checkpoint",
    "read_header",
    "save_checkpoint",
    "ChaosAgent",
    "ChaosConfig",
    "ChaosReport",
    "InjectedTelemetryError",
    "TelemetryBlackout",
    "run_chaos",
    "FallbackPolicy",
    "HEALTHY",
    "DEGRADED",
    "FAILSAFE",
    "RECOVERING",
    "ResilientInstanceStream",
    "ResilientTelemetry",
    "TelemetryFault",
    "TelemetryUnavailable",
]
