"""The policy fallback chain: monitorless -> thresholds -> fail-safe.

:class:`FallbackPolicy` runs a streaming
:class:`~repro.orchestrator.policies.MonitorlessPolicy` as the primary
detector and demotes *per container* when that container's data path
degrades:

1. **primary** -- the container's resilient telemetry stream delivered
   (possibly imputed) features and the classifier produced a verdict;
2. **secondary** -- the stream raised
   :class:`~repro.reliability.telemetry.TelemetryFault` (staleness
   budget exhausted, injected failure) or the classifier raised: the
   container is judged by
   :meth:`~repro.orchestrator.policies.ThresholdPolicy.instance_saturated`
   instead;
3. **fail-safe** -- the threshold read failed too.  ``failsafe="hold"``
   keeps the current replica count (never scale on no data);
   ``failsafe="scale-up"`` reports the service saturated (provision
   for the worst).

Each container walks a health state machine ``healthy -> degraded ->
failsafe -> recovering -> healthy``; ``recovering`` requires
``recovery_ticks`` consecutive primary successes before the container
counts as healthy again.  Transitions are exported as ``obs`` counters
(``fallback.demotions`` / ``fallback.recoveries`` /
``fallback.failsafe_entries``; classifier failures additionally emit
``fallback.classifier_error{type=<ExceptionClass>}``) and per-state
gauges, and mirrored on
the policy object (:attr:`demotions`, :attr:`recoveries`,
:attr:`failsafe_entries`, :attr:`health`) for obs-disabled callers.
"""

from __future__ import annotations

from repro import obs
from repro.reliability.telemetry import TelemetryFault

__all__ = [
    "FallbackPolicy",
    "HEALTHY",
    "DEGRADED",
    "FAILSAFE",
    "RECOVERING",
]

HEALTHY = "healthy"
DEGRADED = "degraded"
FAILSAFE = "failsafe"
RECOVERING = "recovering"

_STATES = (HEALTHY, DEGRADED, FAILSAFE, RECOVERING)


class FallbackPolicy:
    """Degradation-tolerant saturation policy (see module docstring).

    Parameters
    ----------
    primary:
        A ``MonitorlessPolicy`` with ``streaming=True`` (the fallback
        chain tracks per-container stream health, which only exists on
        the streaming path), normally built over a
        :class:`~repro.reliability.telemetry.ResilientTelemetry` agent.
    secondary:
        A ``ThresholdPolicy`` used per-container while demoted.
    staleness_budget:
        Optional *tighter* bound than the telemetry layer's own budget:
        a container whose stream reports more than this many
        consecutive imputed ticks is demoted even though its stream is
        still serving rows.  ``None`` (default) trusts the telemetry
        layer to raise when its budget runs out.
    failsafe:
        ``"hold"`` or ``"scale-up"`` -- the verdict when primary *and*
        secondary are unavailable.
    recovery_ticks:
        Consecutive primary successes required to leave ``recovering``.
    """

    name = "fallback"

    def __init__(
        self,
        primary,
        secondary,
        *,
        staleness_budget: int | None = None,
        failsafe: str = "hold",
        recovery_ticks: int = 3,
    ):
        if not getattr(primary, "streaming", False):
            raise ValueError(
                "FallbackPolicy requires a streaming MonitorlessPolicy "
                "(streaming=True)."
            )
        if failsafe not in ("hold", "scale-up"):
            raise ValueError('failsafe must be "hold" or "scale-up".')
        if recovery_ticks < 1:
            raise ValueError("recovery_ticks must be >= 1.")
        if staleness_budget is not None and staleness_budget < 0:
            raise ValueError("staleness_budget must be >= 0.")
        self.primary = primary
        self.secondary = secondary
        self.staleness_budget = staleness_budget
        self.failsafe = failsafe
        self.recovery_ticks = recovery_ticks
        self.health: dict[str, str] = {}
        self.demotions = 0
        self.recoveries = 0
        self.failsafe_entries = 0
        self.failsafe_ticks = 0
        self.last_classifier_error: str | None = None
        self._streak: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Health bookkeeping
    # ------------------------------------------------------------------
    def _record_outcome(self, name: str, outcome: str) -> None:
        state = self.health.get(name, HEALTHY)
        if outcome == "primary":
            if state == HEALTHY:
                new = HEALTHY
            else:
                streak = self._streak.get(name, 0) + 1 if state == RECOVERING else 1
                if streak >= self.recovery_ticks:
                    new = HEALTHY
                    self.recoveries += 1
                    obs.inc("fallback.recoveries")
                    self._streak.pop(name, None)
                else:
                    new = RECOVERING
                    self._streak[name] = streak
        elif outcome == "secondary":
            if state in (HEALTHY, RECOVERING):
                self.demotions += 1
                obs.inc("fallback.demotions")
            new = DEGRADED
            self._streak.pop(name, None)
        else:  # fail-safe
            if state != FAILSAFE:
                self.failsafe_entries += 1
                obs.inc("fallback.failsafe_entries")
            self.failsafe_ticks += 1
            obs.inc("fallback.failsafe_ticks")
            new = FAILSAFE
            self._streak.pop(name, None)
        self.health[name] = new

    def _export_gauges(self) -> None:
        if not obs.enabled():
            return
        counts = dict.fromkeys(_STATES, 0)
        for state in self.health.values():
            counts[state] += 1
        for state, count in counts.items():
            obs.set_gauge(f"fallback.containers_{state}", float(count))

    # ------------------------------------------------------------------
    # The per-tick verdict
    # ------------------------------------------------------------------
    def saturated_services(self, simulation, application: str, t: int):
        with obs.trace("policy.fallback"):
            deployment = simulation.deployments[application]
            live: set[str] = set()
            # (service, container, features) for containers whose
            # primary data path delivered this tick.
            primary_items: list = []
            demoted: list = []  # (service, container)
            for service, replicas in deployment.instances.items():
                for instance in replicas:
                    container = instance.container
                    live.add(container.name)
                    end = container.created_at + len(container.history)
                    if end <= container.created_at:
                        continue  # no samples yet
                    stream = self.primary._stream_for(container, simulation)
                    try:
                        features = stream.catch_up(end)
                    except TelemetryFault:
                        demoted.append((service, container))
                        continue
                    if features is None:
                        continue
                    staleness = getattr(stream.telemetry, "staleness", 0)
                    if (
                        self.staleness_budget is not None
                        and staleness > self.staleness_budget
                    ):
                        demoted.append((service, container))
                        continue
                    primary_items.append(
                        (service, container, features, stream.last_complete)
                    )

            # Retired replicas (scale-in) never come back; drop state.
            # Membership rarely changes, so skip the sweeps unless some
            # tracked key is no longer live.
            if not self.primary._streams.keys() <= live:
                for name in [
                    n for n in self.primary._streams if n not in live
                ]:
                    del self.primary._streams[name]
            if not self.health.keys() <= live:
                for name in [n for n in self.health if n not in live]:
                    del self.health[name]
                    self._streak.pop(name, None)

            try:
                saturated = self.primary._classify(
                    [service for service, _, _, _ in primary_items],
                    [features for _, _, features, _ in primary_items],
                    t=t,
                    completeness=[
                        complete for _, _, _, complete in primary_items
                    ],
                )
            except Exception as error:
                # The classifier itself failed: every primary candidate
                # falls through to the secondary this tick.
                self.last_classifier_error = type(error).__name__
                obs.inc("fallback.classifier_errors")
                obs.inc(
                    "fallback.classifier_error"
                    f"{{type={type(error).__name__}}}"
                )
                saturated = set()
                demoted.extend(
                    (service, container)
                    for service, container, _, _ in primary_items
                )
            else:
                for service, container, _, _ in primary_items:
                    self._record_outcome(container.name, "primary")

            for service, container in demoted:
                try:
                    verdict = self.secondary.instance_saturated(
                        container, simulation
                    )
                except Exception:
                    self._record_outcome(container.name, "failsafe")
                    if self.failsafe == "scale-up":
                        saturated.add(service)
                else:
                    self._record_outcome(container.name, "secondary")
                    if verdict:
                        saturated.add(service)

            self._export_gauges()
        return saturated
