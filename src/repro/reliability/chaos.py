"""Seeded chaos harness for the degradation-tolerant closed loop.

Composes every fault family the repo knows -- node capacity faults
(:class:`~repro.cluster.faults.NodeSlowdown`,
:class:`~repro.cluster.faults.DiskDegradation`), lossy scrapes
(:class:`~repro.cluster.faults.MetricDropout`) and the new
telemetry-exception injectors defined here -- under one deterministic
schedule, runs the TeaStore closed loop through it with the full
resilience stack (``ResilientTelemetry`` + ``FallbackPolicy``), and
compares the outcome against a clean run of the same scenario.

The injection stack, innermost first::

    TelemetryAgent -> MetricDropout -> ChaosAgent -> ResilientTelemetry

``ChaosAgent`` decides per ``(stream, tick)`` from a keyed blake2b
hash (never process-salted ``hash()``), so a given seed produces the
same fault sequence in every process:

- **hard** failures raise on every read attempt of that tick -- the
  tick is lost and the resilience layer imputes or gives up;
- **transient** ("delayed reading") failures raise on the first
  attempt only, exercising the retry path;
- **nan** corruption delivers the row with a deterministic subset of
  entries NaN-ed, exercising masking.  Corruption happens on a *copy
  of the emitted row*, never on synthesis state: a NaN entering the
  counter accumulators would poison every later reading and make
  recovery impossible by construction.
- :class:`TelemetryBlackout` windows force hard failures for whole
  tick ranges (scope ``"stream"``, ``"state"`` or ``"both"``), which
  is what deterministically drives the fallback chain through demotion
  (budget exhaustion), fail-safe (both paths dark) and recovery.

:func:`run_chaos` returns a :class:`ChaosReport` asserting-material:
the SLO-violation delta versus the clean run and its documented bound
(``max_violation_delta_fraction * duration``), plus the demotion /
recovery / imputation counters read back from :mod:`repro.obs`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.reliability.fallback import FallbackPolicy
from repro.reliability.telemetry import ResilientTelemetry, TelemetryFault

__all__ = [
    "InjectedTelemetryError",
    "TelemetryBlackout",
    "ChaosConfig",
    "ChaosAgent",
    "ChaosReport",
    "run_chaos",
]


class InjectedTelemetryError(TelemetryFault):
    """A chaos-injected telemetry read failure."""


def _chaos_uniform(seed: int, stream: str, t: int) -> float:
    """Deterministic uniform in [0, 1) for one (stream, tick) cell."""
    digest = hashlib.blake2b(
        f"{seed}:{stream}:{t}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") / 2.0**64


@dataclass(frozen=True)
class TelemetryBlackout:
    """All matching telemetry reads fail during [start, end).

    ``scope`` selects which reads go dark: ``"stream"`` (per-tick
    instance emission -- the primary policy's data path), ``"state"``
    (the point reads the threshold fallback uses), or ``"both"``.
    """

    start: int
    end: int
    scope: str = "stream"

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError("end must exceed start.")
        if self.scope not in ("stream", "state", "both"):
            raise ValueError('scope must be "stream", "state" or "both".')

    def active(self, t: int) -> bool:
        return self.start <= t < self.end

    @property
    def hits_stream(self) -> bool:
        return self.scope in ("stream", "both")

    @property
    def hits_state(self) -> bool:
        return self.scope in ("state", "both")


@dataclass
class ChaosConfig:
    """Knobs of the seeded chaos schedule.

    ``blackouts`` / ``node_faults`` default to ``None`` meaning
    "derive a schedule from the run duration" (one stream-scoped
    blackout long enough to exhaust the staleness budget, one
    both-scoped blackout, one mild node slowdown).  Pass explicit
    tuples -- possibly empty -- to take full control.

    ``antagonist`` adds a noisy neighbour to the chaos run only: a
    single-resource stressor (:mod:`repro.apps.antagonist` kind
    ``"cpu"``, ``"membw"`` or ``"disk"``) co-located on
    ``antagonist_node``, idle until ``antagonist_start_fraction`` of
    the run and hammering at ``antagonist_rate`` after.  The clean
    reference run never sees it, so the violation delta includes the
    interference the resilience stack has to ride out.
    """

    dropout_probability: float = 0.15
    hard_failure_probability: float = 0.02
    transient_failure_probability: float = 0.05
    nan_probability: float = 0.02
    nan_fraction: float = 0.1
    state_failure_probability: float = 0.01
    blackouts: tuple | None = None
    node_faults: tuple | None = None
    staleness_budget: int = 5
    max_retries: int = 2
    failsafe: str = "hold"
    recovery_ticks: int = 3
    max_violation_delta_fraction: float = 0.15
    seed: int = 0
    antagonist: str | None = None  # noisy-neighbour kind, chaos run only
    antagonist_rate: float = 100.0  # requests/s once active
    antagonist_start_fraction: float = 0.4
    antagonist_node: str = "M2"  # where the TeaStore scale-outs land
    antagonist_intensity: float = 1.0


class ChaosAgent:
    """Telemetry wrapper that injects exceptions, delays and NaNs."""

    def __init__(self, agent, config: ChaosConfig):
        self.agent = agent
        self.config = config
        self.catalog = agent.catalog
        self.blackouts = tuple(
            config.blackouts if config.blackouts is not None else ()
        )

    # Pass-through batch surface (the clean comparisons use it).
    def instance_matrix(self, container, nodes, start=None, end=None):
        return self.agent.instance_matrix(container, nodes, start, end)

    def utilization_series(self, container, nodes):
        return self.agent.utilization_series(container, nodes)

    def host_state(self, node, start, end):
        return self.agent.host_state(node, start, end)

    def container_state(self, container, node, start, end):
        """The threshold fallback's point read; fails under state-scoped
        blackouts and with ``state_failure_probability`` otherwise."""
        t = end - 1
        for blackout in self.blackouts:
            if blackout.active(t) and blackout.hits_state:
                obs.inc("chaos.state_failures")
                raise InjectedTelemetryError(
                    f"chaos: state read blackout for {container.name} "
                    f"at tick {t}."
                )
        u = _chaos_uniform(self.config.seed, f"state:{container.name}", t)
        if u < self.config.state_failure_probability:
            obs.inc("chaos.state_failures")
            raise InjectedTelemetryError(
                f"chaos: state read failed for {container.name} at tick {t}."
            )
        return self.agent.container_state(container, node, start, end)

    def open_stream(self, container, nodes, start=None, history=16):
        inner = self.agent.open_stream(
            container, nodes, start=start, history=history
        )
        return _ChaosInstanceStream(inner, self)


class _ChaosInstanceStream:
    """Per-tick injection shell around one instance stream."""

    def __init__(self, inner, chaos: ChaosAgent):
        self.inner = inner
        self.chaos = chaos
        self.name = inner.container.name
        self._delayed_tick: int | None = None

    @property
    def container(self):
        return self.inner.container

    @property
    def tail(self):
        return self.inner.tail

    @property
    def clock(self) -> int:
        return self.inner.clock

    def _mode(self, t: int) -> str:
        for blackout in self.chaos.blackouts:
            if blackout.active(t) and blackout.hits_stream:
                return "hard"
        config = self.chaos.config
        u = _chaos_uniform(config.seed, self.name, t)
        edge = config.hard_failure_probability
        if u < edge:
            return "hard"
        edge += config.transient_failure_probability
        if u < edge:
            return "transient"
        edge += config.nan_probability
        if u < edge:
            return "nan"
        return "ok"

    def emit(self) -> np.ndarray:
        t = self.clock
        mode = self._mode(t)
        if mode == "hard":
            obs.inc("chaos.hard_failures")
            raise InjectedTelemetryError(
                f"chaos: telemetry read for {self.name} failed at tick {t}."
            )
        if mode == "transient" and self._delayed_tick != t:
            # Delayed reading: the first attempt times out, a retry of
            # the same tick succeeds.
            self._delayed_tick = t
            obs.inc("chaos.transient_failures")
            raise InjectedTelemetryError(
                f"chaos: telemetry read for {self.name} delayed at tick {t}."
            )
        row = self.inner.emit()
        if mode == "nan":
            config = self.chaos.config
            rng = np.random.default_rng(
                _chaos_seed(config.seed, f"nan:{self.name}", t)
            )
            count = max(1, int(round(row.size * config.nan_fraction)))
            columns = rng.choice(row.size, size=count, replace=False)
            row = row.copy()
            row[columns] = np.nan
            # Corrupt the delivered copy only -- synthesis state stays
            # clean, so later ticks can still be read.
            self.inner.tail.amend_last(row)
            obs.inc("chaos.nan_rows")
        return row

    def skip(self) -> None:
        self.inner.skip()


def _chaos_seed(seed: int, stream: str, t: int) -> int:
    digest = hashlib.blake2b(
        f"{seed}:{stream}:{t}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
@dataclass
class ChaosReport:
    """Clean-vs-chaos outcome of one seeded schedule."""

    duration: int
    seed: int
    clean_violations: int
    chaos_violations: int
    violation_delta: int
    bound_fraction: float
    violation_bound: float
    within_bound: bool
    clean_scale_outs: int
    chaos_scale_outs: int
    demotions: int
    recoveries: int
    failsafe_entries: int
    failsafe_ticks: int
    imputed_ticks: int
    ticks_lost: int
    retries: int
    nan_masked_values: int
    readings_dropped: int
    health_final: dict = field(default_factory=dict)
    obs_counters: dict = field(default_factory=dict)
    telemetry_summary: dict = field(default_factory=dict)
    antagonist: str | None = None
    antagonist_ticks: int = 0

    def rows(self) -> list[dict]:
        """Table rows for CLI / benchmark printing."""
        return [
            {"quantity": "SLO violations (clean)", "value": self.clean_violations},
            {"quantity": "SLO violations (chaos)", "value": self.chaos_violations},
            {
                "quantity": "violation delta / bound",
                "value": f"{self.violation_delta} / {self.violation_bound:.0f}",
            },
            {"quantity": "scale-outs clean/chaos",
             "value": f"{self.clean_scale_outs}/{self.chaos_scale_outs}"},
            {"quantity": "demotions", "value": self.demotions},
            {"quantity": "recoveries", "value": self.recoveries},
            {"quantity": "failsafe entries", "value": self.failsafe_entries},
            {"quantity": "imputed ticks", "value": self.imputed_ticks},
            {"quantity": "ticks lost", "value": self.ticks_lost},
            {"quantity": "retries", "value": self.retries},
            {"quantity": "NaN values masked", "value": self.nan_masked_values},
            {"quantity": "within bound", "value": self.within_bound},
        ] + (
            [
                {
                    "quantity": "antagonist (ticks active)",
                    "value": f"{self.antagonist} ({self.antagonist_ticks})",
                }
            ]
            if self.antagonist
            else []
        )

    def to_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


def _default_blackouts(duration: int, budget: int) -> tuple:
    """One demotion-driving and one failsafe-driving window."""
    stream_start = max(1, int(duration * 0.30))
    stream_len = budget + 5
    both_start = max(stream_start + stream_len + 5, int(duration * 0.62))
    both_len = budget + 4
    windows = []
    if stream_start + stream_len < duration:
        windows.append(
            TelemetryBlackout(stream_start, stream_start + stream_len, "stream")
        )
    if both_start + both_len < duration:
        windows.append(
            TelemetryBlackout(both_start, both_start + both_len, "both")
        )
    return tuple(windows)


def _default_node_faults(duration: int) -> tuple:
    from repro.cluster.faults import NodeSlowdown

    start = int(duration * 0.45)
    end = int(duration * 0.55)
    if end <= start:
        return ()
    return (NodeSlowdown(node="M2", factor=0.85, start=start, end=end),)


def _build_orchestrator(model, policy_factory, seed: int):
    from repro.apps.teastore import teastore_application
    from repro.cluster.simulation import ClusterSimulation, Placement
    from repro.datasets.experiments import evaluation_nodes, teastore_placements
    from repro.orchestrator.autoscaler import ScalingRules
    from repro.orchestrator.loop import Orchestrator

    simulation = ClusterSimulation(evaluation_nodes(), seed=seed)
    simulation.deploy(teastore_application(), teastore_placements())
    rules = ScalingRules(
        placements={
            "auth": Placement(node="M2", cpu_limit=2.0, memory_limit=4 * 2**30),
            "recommender": Placement(
                node="M2", cpu_limit=1.0, memory_limit=4 * 2**30
            ),
            "webui": Placement(node="M2", cpu_limit=1.0, memory_limit=4 * 2**30),
        },
        replica_lifespan=120,
        scale_groups=(("auth", "recommender"),),
    )
    policy = policy_factory(simulation)
    return Orchestrator(simulation, "teastore", policy, rules), simulation


def _counter(snapshot: dict, name: str) -> float:
    return float(snapshot.get("counters", {}).get(name, 0.0))


def run_chaos(
    model,
    *,
    duration: int = 240,
    seed: int = 0,
    config: ChaosConfig | None = None,
) -> ChaosReport:
    """Run the TeaStore closed loop clean and under chaos; compare.

    The clean run uses a plain agent and a streaming
    ``MonitorlessPolicy``; the chaos run layers dropout, injected
    exceptions and blackouts under ``ResilientTelemetry`` and judges
    saturation through the full ``FallbackPolicy`` chain, while the
    schedule's node faults degrade the cluster itself.  Both runs see
    the same workload ramp and simulation seed.
    """
    from repro.cluster.faults import FaultSchedule, MetricDropout
    from repro.cluster.simulation import Placement
    from repro.core.thresholds import ThresholdBaseline
    from repro.orchestrator.policies import MonitorlessPolicy, ThresholdPolicy
    from repro.telemetry.agent import TelemetryAgent
    from repro.workloads.patterns import linear_ramp

    if config is None:
        config = ChaosConfig()
    blackouts = (
        config.blackouts
        if config.blackouts is not None
        else _default_blackouts(duration, config.staleness_budget)
    )
    node_faults = (
        config.node_faults
        if config.node_faults is not None
        else _default_node_faults(duration)
    )
    workload = linear_ramp(duration, 10, 240)

    # --- Clean reference run (no injection, no resilience layer). ----
    def clean_policy(simulation):
        return MonitorlessPolicy(
            model, TelemetryAgent(seed=seed), window=16, streaming=True
        )

    clean_orchestrator, _ = _build_orchestrator(model, clean_policy, seed)
    clean_result = clean_orchestrator.run({"teastore": workload})

    # --- Chaos run: full injection stack + fallback chain. -----------
    effective = ChaosConfig(**{**config.__dict__, "blackouts": blackouts})
    fallback_holder: dict = {}
    resilient_holder: dict = {}

    def chaotic_policy(simulation):
        base = TelemetryAgent(seed=seed)
        lossy = MetricDropout(
            base, probability=config.dropout_probability, seed=config.seed
        )
        chaotic = ChaosAgent(lossy, effective)
        resilient = ResilientTelemetry(
            chaotic,
            staleness_budget=config.staleness_budget,
            max_retries=config.max_retries,
        )
        primary = MonitorlessPolicy(model, resilient, window=16, streaming=True)
        secondary = ThresholdPolicy(
            ThresholdBaseline(
                kind="cpu-or-mem", cpu_threshold=80.0, mem_threshold=80.0
            ),
            chaotic,
        )
        policy = FallbackPolicy(
            primary,
            secondary,
            failsafe=config.failsafe,
            recovery_ticks=config.recovery_ticks,
        )
        fallback_holder["policy"] = policy
        resilient_holder["primary"] = primary
        return policy

    orchestrator, simulation = _build_orchestrator(model, chaotic_policy, seed)
    antagonist_app = None
    antagonist_onset = duration
    if config.antagonist is not None:
        from repro.apps.antagonist import antagonist_application

        antagonist_app = antagonist_application(
            config.antagonist, config.antagonist_intensity
        )
        simulation.deploy(
            antagonist_app,
            {
                name: [Placement(node=config.antagonist_node)]
                for name in antagonist_app.services
            },
        )
        antagonist_onset = int(round(config.antagonist_start_fraction * duration))
    antagonist_ticks = 0
    schedule = FaultSchedule(list(node_faults)) if node_faults else None

    externally_enabled = obs.enabled()
    before = obs.snapshot() if externally_enabled else {}
    if not externally_enabled:
        obs.reset()
        obs.enable()
    try:
        orchestrator.start()
        pristine = (
            schedule.pristine_specs(simulation) if schedule is not None else None
        )
        try:
            for t in range(duration):
                if schedule is not None:
                    schedule.apply_tick(simulation, pristine, t)
                arrivals = {"teastore": float(workload[t])}
                if antagonist_app is not None and t >= antagonist_onset:
                    arrivals[antagonist_app.name] = config.antagonist_rate
                    antagonist_ticks += 1
                orchestrator.tick(arrivals)
        finally:
            if schedule is not None:
                schedule.restore(simulation, pristine)
        chaos_result = orchestrator.finish()
        after = obs.snapshot()
    finally:
        if not externally_enabled:
            obs.disable()
            obs.reset()

    def counter(name: str) -> int:
        return int(_counter(after, name) - _counter(before, name))

    policy = fallback_holder["policy"]
    # Safe-subset tail summary of one surviving stream: means of the
    # headline utilization metrics that exist, unknown names skipped.
    telemetry_summary: dict = {}
    for stream in policy.primary._streams.values():
        tail = stream.telemetry.tail
        if len(tail) == 0:
            continue
        frame = tail.frame().select_available(
            ["kernel.all.cpu.util", "mem.util.used_pct", "not.a.metric"]
        )
        telemetry_summary = {
            "container": stream.telemetry.container.name,
            "completeness_mean": float(tail.completeness_window().mean()),
            **{
                name: float(frame.column(name).mean())
                for name in frame.columns
                if frame.has_metric(name)
            },
        }
        break

    delta = chaos_result.slo_violation_count - clean_result.slo_violation_count
    bound = config.max_violation_delta_fraction * duration
    interesting = (
        "fallback.demotions",
        "fallback.recoveries",
        "fallback.failsafe_entries",
        "fallback.failsafe_ticks",
        "resilience.imputed_ticks",
        "resilience.ticks_lost",
        "resilience.retries",
        "resilience.nan_masked_values",
        "faults.readings_dropped",
        "chaos.hard_failures",
        "chaos.transient_failures",
        "chaos.state_failures",
        "chaos.nan_rows",
    )
    return ChaosReport(
        duration=duration,
        seed=seed,
        clean_violations=clean_result.slo_violation_count,
        chaos_violations=chaos_result.slo_violation_count,
        violation_delta=delta,
        bound_fraction=config.max_violation_delta_fraction,
        violation_bound=bound,
        within_bound=delta <= bound,
        clean_scale_outs=clean_result.total_scale_outs,
        chaos_scale_outs=chaos_result.total_scale_outs,
        demotions=counter("fallback.demotions"),
        recoveries=counter("fallback.recoveries"),
        failsafe_entries=counter("fallback.failsafe_entries"),
        failsafe_ticks=counter("fallback.failsafe_ticks"),
        imputed_ticks=counter("resilience.imputed_ticks"),
        ticks_lost=counter("resilience.ticks_lost"),
        retries=counter("resilience.retries"),
        nan_masked_values=counter("resilience.nan_masked_values"),
        readings_dropped=counter("faults.readings_dropped"),
        health_final=dict(policy.health),
        obs_counters={name: counter(name) for name in interesting},
        telemetry_summary=telemetry_summary,
        antagonist=config.antagonist,
        antagonist_ticks=antagonist_ticks,
    )
