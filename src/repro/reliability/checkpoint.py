"""Crash-safe checkpointing of a running closed-loop orchestrator.

A checkpoint is a single self-validating record file::

    REPRO-CKPT\\n
    {json header: format, kind, tick, application, policy, payload sha256}\\n
    <pickle payload>

The same container format (magic + JSON header + sha256-checksummed
pickle, atomic tmp+replace writes) is shared with the model registry
(:mod:`repro.lifecycle.registry`) through :func:`write_record` /
:func:`read_record`; the header's ``kind`` field tells record types
apart (``"checkpoint"`` for orchestrators, ``"model"`` for registry
entries).

For checkpoints the payload is one :mod:`pickle` of the whole
:class:`~repro.orchestrator.loop.Orchestrator` object graph.  One
pickle (rather than per-component state dicts) is load-bearing: the
simulation's containers are *shared* between the cluster state and the
policy's telemetry streams, and pickling the graph in one pass
preserves that aliasing exactly.  Everything that makes the loop
deterministic rides along -- ``TemporalState`` cumulative sums, metric
ring buffers, ``np.random.Generator`` bit-generator states, counter
accumulators, fallback health states and the orchestrator's own tick
accounting -- so a resumed run replays the remaining ticks bitwise
identically to an uninterrupted one.

The header also records the sha256 fingerprint of the serving model
(``model_fingerprint``) when the policy exposes one, so a resume can
refuse to continue a run with a model other than the one it was
checkpointed with (see ``Orchestrator.resume_from``).

Compatibility caveats (also documented in ``docs/api_overview.md``):
checkpoints are pickles, so they are **not** portable across repo
versions that change any participating class, and must only be loaded
from trusted files (pickle executes code by design).  The header's
sha256 catches truncation and bit rot, not malice.

Writes are atomic: the blob goes to a sibling temp file first and is
``os.replace``-d into place, so a crash *during* checkpointing can
never leave a half-written file at the target path.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
from pathlib import Path

from repro import obs

__all__ = [
    "CheckpointError",
    "model_fingerprint",
    "write_record",
    "read_record",
    "save_checkpoint",
    "load_checkpoint",
]

_MAGIC = b"REPRO-CKPT\n"
FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupt, or incompatible."""


class _CanonicalPickler(pickle._Pickler):
    """A pickler whose byte stream depends only on *values*, not on
    object identity.

    Raw ``pickle.dumps`` memoizes by ``id()``: when two attributes
    alias one interned string (or one cached numpy dtype) the second
    occurrence is a short memo reference, but after an unpickle those
    occurrences are distinct objects and get re-emitted in full.  The
    bytes then differ between a freshly-trained model and the same
    model rebuilt from a checkpoint, even though they are value-equal.
    Disabling the memo serializes every occurrence by value, so
    value-equal object graphs hash identically regardless of process
    history.  Only safe for acyclic graphs -- a cycle would recurse
    forever -- which holds for our model objects (plain attribute trees
    of arrays, tuples and scalars).
    """

    def memoize(self, obj):  # noqa: ARG002 - deliberate no-op
        pass


def model_fingerprint(model) -> str:
    """sha256 over the model's canonical (identity-free) pickled bytes.

    Two fingerprints agree iff the models are value-equal -- including
    a model that went through a checkpoint/resume or registry
    save/load cycle, where raw pickle bytes would differ because
    string/dtype sharing does not survive the round trip.
    """
    buffer = io.BytesIO()
    _CanonicalPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(model)
    return hashlib.sha256(buffer.getvalue()).hexdigest()


def _serving_model(policy):
    """The model a policy serves with, if it exposes one.

    Walks one level of wrapping (``FallbackPolicy.primary``) so chaos
    runs fingerprint the monitorless model, not the wrapper.
    """
    model = getattr(policy, "model", None)
    if model is not None:
        return model
    primary = getattr(policy, "primary", None)
    return getattr(primary, "model", None)


def write_record(path, payload, fields: dict, *, kind: str = "checkpoint") -> dict:
    """Atomically write one self-validating record file.

    ``payload`` is pickled unless already ``bytes``; ``fields`` are
    merged into the header next to the format/kind/checksum keys.
    Returns the header that was stored.
    """
    path = Path(path)
    if not isinstance(payload, bytes):
        payload = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = {
        "format": FORMAT_VERSION,
        "kind": kind,
        **fields,
        "payload_bytes": len(payload),
        "sha256": hashlib.sha256(payload).hexdigest(),
    }
    blob = _MAGIC + json.dumps(header, sort_keys=True).encode() + b"\n" + payload
    temp = path.with_name(path.name + ".tmp")
    temp.write_bytes(blob)
    os.replace(temp, path)
    return header


def read_record(path, *, kind: str | None = None) -> tuple[dict, bytes]:
    """Parse one record file; verifies the payload checksum.

    ``kind`` restricts which record types are accepted.  Headers
    written before the ``kind`` field existed are treated as
    checkpoints.
    """
    header, payload = _parse(Path(path))
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["sha256"]:
        raise CheckpointError(
            f"Record payload checksum mismatch in {path} "
            f"(expected {header['sha256'][:12]}..., got {digest[:12]}...)."
        )
    if kind is not None and header.get("kind", "checkpoint") != kind:
        raise CheckpointError(
            f"{path} holds a {header.get('kind', 'checkpoint')!r} record; "
            f"expected {kind!r}."
        )
    return header, payload


def save_checkpoint(orchestrator, path) -> dict:
    """Write ``orchestrator`` (mid-run or not) to ``path``; returns the
    header that was stored."""
    with obs.trace("checkpoint.save"):
        fields = {
            "tick": int(getattr(orchestrator, "_t", -1)),
            "application": orchestrator.application,
            "policy": getattr(
                orchestrator.policy, "name", type(orchestrator.policy).__name__
            ),
        }
        model = _serving_model(orchestrator.policy)
        if model is not None:
            fields["model_fingerprint"] = model_fingerprint(model)
        header = write_record(path, orchestrator, fields, kind="checkpoint")
    obs.inc("checkpoint.saves")
    return header


def read_header(path) -> dict:
    """Parse and validate a checkpoint's header without unpickling."""
    header, _ = _parse(Path(path))
    return header


def load_checkpoint(path):
    """Restore the orchestrator saved at ``path``.

    Only load checkpoints you wrote yourself: the payload is a pickle.
    """
    _, payload = read_record(path, kind="checkpoint")
    with obs.trace("checkpoint.load"):
        orchestrator = pickle.loads(payload)
    obs.inc("checkpoint.loads")
    return orchestrator


def _parse(path: Path) -> tuple[dict, bytes]:
    try:
        blob = path.read_bytes()
    except OSError as error:
        raise CheckpointError(f"Cannot read checkpoint {path}: {error}") from error
    if not blob.startswith(_MAGIC):
        raise CheckpointError(f"{path} is not a repro checkpoint (bad magic).")
    body = blob[len(_MAGIC):]
    newline = body.find(b"\n")
    if newline < 0:
        raise CheckpointError(f"{path} is truncated (no header).")
    try:
        header = json.loads(body[:newline].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointError(f"{path} has a corrupt header.") from error
    if header.get("format") != FORMAT_VERSION:
        raise CheckpointError(
            f"{path} has checkpoint format {header.get('format')!r}; "
            f"this build reads format {FORMAT_VERSION}."
        )
    payload = body[newline + 1:]
    if len(payload) != header.get("payload_bytes"):
        raise CheckpointError(
            f"{path} is truncated: header promises "
            f"{header.get('payload_bytes')} payload bytes, found "
            f"{len(payload)}."
        )
    return header, payload
