"""Crash-safe checkpointing of a running closed-loop orchestrator.

A checkpoint is a single self-validating file::

    REPRO-CKPT\\n
    {json header: format, tick, application, policy, payload sha256}\\n
    <pickle payload>

The payload is one :mod:`pickle` of the whole
:class:`~repro.orchestrator.loop.Orchestrator` object graph.  One
pickle (rather than per-component state dicts) is load-bearing: the
simulation's containers are *shared* between the cluster state and the
policy's telemetry streams, and pickling the graph in one pass
preserves that aliasing exactly.  Everything that makes the loop
deterministic rides along -- ``TemporalState`` cumulative sums, metric
ring buffers, ``np.random.Generator`` bit-generator states, counter
accumulators, fallback health states and the orchestrator's own tick
accounting -- so a resumed run replays the remaining ticks bitwise
identically to an uninterrupted one.

Compatibility caveats (also documented in ``docs/api_overview.md``):
checkpoints are pickles, so they are **not** portable across repo
versions that change any participating class, and must only be loaded
from trusted files (pickle executes code by design).  The header's
sha256 catches truncation and bit rot, not malice.

Writes are atomic: the blob goes to a sibling temp file first and is
``os.replace``-d into place, so a crash *during* checkpointing can
never leave a half-written file at the target path.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path

from repro import obs

__all__ = ["CheckpointError", "save_checkpoint", "load_checkpoint"]

_MAGIC = b"REPRO-CKPT\n"
FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupt, or incompatible."""


def save_checkpoint(orchestrator, path) -> dict:
    """Write ``orchestrator`` (mid-run or not) to ``path``; returns the
    header that was stored."""
    path = Path(path)
    with obs.trace("checkpoint.save"):
        payload = pickle.dumps(orchestrator, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "format": FORMAT_VERSION,
            "tick": int(getattr(orchestrator, "_t", -1)),
            "application": orchestrator.application,
            "policy": getattr(
                orchestrator.policy, "name", type(orchestrator.policy).__name__
            ),
            "payload_bytes": len(payload),
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        blob = _MAGIC + json.dumps(header, sort_keys=True).encode() + b"\n" + payload
        temp = path.with_name(path.name + ".tmp")
        temp.write_bytes(blob)
        os.replace(temp, path)
    obs.inc("checkpoint.saves")
    return header


def read_header(path) -> dict:
    """Parse and validate a checkpoint's header without unpickling."""
    header, _ = _parse(Path(path))
    return header


def load_checkpoint(path):
    """Restore the orchestrator saved at ``path``.

    Only load checkpoints you wrote yourself: the payload is a pickle.
    """
    header, payload = _parse(Path(path))
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["sha256"]:
        raise CheckpointError(
            f"Checkpoint payload checksum mismatch in {path} "
            f"(expected {header['sha256'][:12]}..., got {digest[:12]}...)."
        )
    with obs.trace("checkpoint.load"):
        orchestrator = pickle.loads(payload)
    obs.inc("checkpoint.loads")
    return orchestrator


def _parse(path: Path) -> tuple[dict, bytes]:
    try:
        blob = path.read_bytes()
    except OSError as error:
        raise CheckpointError(f"Cannot read checkpoint {path}: {error}") from error
    if not blob.startswith(_MAGIC):
        raise CheckpointError(f"{path} is not a repro checkpoint (bad magic).")
    body = blob[len(_MAGIC):]
    newline = body.find(b"\n")
    if newline < 0:
        raise CheckpointError(f"{path} is truncated (no header).")
    try:
        header = json.loads(body[:newline].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointError(f"{path} has a corrupt header.") from error
    if header.get("format") != FORMAT_VERSION:
        raise CheckpointError(
            f"{path} has checkpoint format {header.get('format')!r}; "
            f"this build reads format {FORMAT_VERSION}."
        )
    payload = body[newline + 1:]
    if len(payload) != header.get("payload_bytes"):
        raise CheckpointError(
            f"{path} is truncated: header promises "
            f"{header.get('payload_bytes')} payload bytes, found "
            f"{len(payload)}."
        )
    return header, payload
