"""Telemetry resilience: retries, gap imputation and NaN masking.

Real collectors are lossy: scrapes time out, exporters crash, rows
arrive with holes.  :class:`ResilientTelemetry` wraps any
telemetry-agent-shaped object and makes its *streams* degradation
tolerant:

- **Retry with deterministic backoff**: an agent read that raises a
  :class:`TelemetryFault` (or any configured exception type) is
  retried up to ``max_retries`` times; the backoff for attempt ``k``
  is the deterministic ``backoff_base * 2**k`` -- recorded via
  :mod:`repro.obs` and handed to an optional ``sleep`` hook, never
  slept implicitly, because simulated time must not depend on wall
  clocks.
- **Gap detection + LOCF imputation**: when every retry fails the
  tick is *lost*: the inner stream is told to :meth:`skip` it (the
  clock keeps tracking real time, exactly like a missed scrape) and
  the last fully observed row is carried forward, flagged with
  completeness 0.0 in the stream tail.  Consecutive lost ticks are
  the stream's *staleness*; once it exceeds ``staleness_budget`` the
  stream raises :class:`TelemetryUnavailable` instead of serving ever
  staler guesses -- the policy layer decides what to do next.  A
  budget of 0 disables imputation entirely.
- **NaN masking**: NaN entries in an otherwise delivered row are
  replaced with the last observed value for that metric (0.0 before
  one exists) and the row's completeness flag reflects the masked
  fraction.  NaNs must never reach
  :class:`~repro.core.features.temporal.TemporalState` -- a single
  NaN would poison its cumulative sums irrecoverably.
"""

from __future__ import annotations

import numpy as np

from repro import obs

__all__ = [
    "TelemetryFault",
    "TelemetryUnavailable",
    "ResilientTelemetry",
    "ResilientInstanceStream",
]


class TelemetryFault(RuntimeError):
    """A telemetry read failed (collector error, injected fault)."""


class TelemetryUnavailable(TelemetryFault):
    """A stream ran out of both real readings and imputation budget."""


class ResilientTelemetry:
    """Degradation-tolerant wrapper around a telemetry agent.

    Batch reads pass straight through; :meth:`open_stream` returns a
    :class:`ResilientInstanceStream` implementing the retry /
    imputation / masking contract described in the module docstring.

    Parameters
    ----------
    agent:
        Any telemetry-agent-shaped object (``TelemetryAgent``,
        ``MetricDropout``, a chaos injector, ...).
    staleness_budget:
        Maximum consecutive lost ticks a stream bridges via
        last-observation-carried-forward before raising
        :class:`TelemetryUnavailable`.  0 disables imputation.
    max_retries:
        Extra read attempts after the first failure of one tick.
    backoff_base:
        Seconds of (virtual) backoff before the first retry; attempt
        ``k`` backs off ``backoff_base * 2**k``.
    retry_on:
        Exception types that trigger the retry/imputation machinery.
        Anything else propagates unchanged (a programming error should
        crash, not be imputed over).
    sleep:
        Optional callable receiving each backoff delay, for real
        deployments that want actual waiting.  Default: record only.
    """

    def __init__(
        self,
        agent,
        *,
        staleness_budget: int = 5,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        retry_on: tuple = (TelemetryFault,),
        sleep=None,
    ):
        if staleness_budget < 0:
            raise ValueError("staleness_budget must be >= 0.")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0.")
        if backoff_base < 0:
            raise ValueError("backoff_base must be >= 0.")
        self.agent = agent
        self.catalog = agent.catalog
        self.staleness_budget = staleness_budget
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.retry_on = tuple(retry_on)
        self.sleep = sleep

    # Batch reads are not imputed: a missing whole-run matrix is a
    # caller bug, not a lossy scrape.
    def instance_matrix(self, container, nodes, start=None, end=None):
        return self.agent.instance_matrix(container, nodes, start, end)

    def utilization_series(self, container, nodes):
        return self.agent.utilization_series(container, nodes)

    def host_state(self, node, start, end):
        return self.agent.host_state(node, start, end)

    def container_state(self, container, node, start, end):
        return self.agent.container_state(container, node, start, end)

    def open_stream(self, container, nodes, start=None, history=16):
        inner = self.agent.open_stream(
            container, nodes, start=start, history=history
        )
        return ResilientInstanceStream(
            inner,
            staleness_budget=self.staleness_budget,
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            retry_on=self.retry_on,
            sleep=self.sleep,
        )


class ResilientInstanceStream:
    """Retry / LOCF-imputation / NaN-masking shell around one stream.

    Attributes
    ----------
    staleness:
        Consecutive ticks without a real reading (0 while healthy).
    imputed_ticks / masked_values / retries / lost_ticks:
        Monotonic per-stream counters, also mirrored as ``obs``
        counters under ``resilience.*``.
    """

    def __init__(
        self,
        inner,
        *,
        staleness_budget: int = 5,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        retry_on: tuple = (TelemetryFault,),
        sleep=None,
    ):
        self.inner = inner
        self.staleness_budget = staleness_budget
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.retry_on = tuple(retry_on)
        self.sleep = sleep
        self.staleness = 0
        self.imputed_ticks = 0
        self.masked_values = 0
        self.retries = 0
        self.lost_ticks = 0
        self._last_real: np.ndarray | None = None

    @property
    def container(self):
        return self.inner.container

    @property
    def tail(self):
        return self.inner.tail

    @property
    def clock(self) -> int:
        return self.inner.clock

    def emit(self) -> np.ndarray:
        """The next tick's row: real if possible, imputed if allowed.

        Raises :class:`TelemetryUnavailable` when the reading is lost
        and imputation cannot cover it (no prior observation, or the
        staleness budget is exhausted).  Either way the stream clock
        advances, so one bad tick can never wedge the stream: the next
        call serves the next tick.
        """
        attempt = 0
        while True:
            try:
                row = self.inner.emit()
                break
            except self.retry_on as error:
                if attempt >= self.max_retries:
                    return self._lost_tick(error)
                delay = self.backoff_base * (2.0 ** attempt)
                self.retries += 1
                attempt += 1
                obs.inc("resilience.retries")
                obs.observe("resilience.retry_backoff_seconds", delay)
                if self.sleep is not None:
                    self.sleep(delay)
        row = self._mask_nans(row)
        self.staleness = 0
        self._last_real = row
        return row

    def _mask_nans(self, row: np.ndarray) -> np.ndarray:
        mask = np.isnan(row)
        if not mask.any():
            return row
        row = row.copy()
        row[mask] = (
            0.0 if self._last_real is None else self._last_real[mask]
        )
        self.masked_values += int(mask.sum())
        obs.inc("resilience.nan_masked_values", float(mask.sum()))
        self.inner.tail.amend_last(
            row, completeness=1.0 - float(mask.mean())
        )
        return row

    def _lost_tick(self, error: BaseException) -> np.ndarray:
        # The reading for this tick is gone for good; skip it so the
        # clock keeps tracking real time and recovery is possible the
        # moment the fault clears.
        tick = self.inner.clock
        self.inner.skip()
        self.lost_ticks += 1
        self.staleness += 1
        obs.inc("resilience.ticks_lost")
        name = getattr(self.container, "name", "?")
        if self._last_real is None:
            obs.inc("resilience.unavailable")
            raise TelemetryUnavailable(
                f"Telemetry for {name} lost at tick {tick} with no prior "
                f"observation to impute from."
            ) from error
        if self.staleness > self.staleness_budget:
            obs.inc("resilience.unavailable")
            raise TelemetryUnavailable(
                f"Telemetry for {name} stale for {self.staleness} "
                f"consecutive ticks (budget {self.staleness_budget})."
            ) from error
        imputed = self._last_real.copy()
        self.inner.tail.push(imputed, completeness=0.0)
        self.imputed_ticks += 1
        obs.inc("resilience.imputed_ticks")
        obs.set_gauge("resilience.staleness", float(self.staleness))
        return imputed
