"""Chunked process-pool mapping with a transparent serial fallback.

``parallel_map(func, items)`` is the single execution primitive behind
forest training, grid search and corpus generation.  Guarantees:

- **Order**: results come back in item order, never completion order.
- **Determinism**: the function sees identical inputs at every
  ``n_jobs``; tasks carry pre-spawned seeds (:mod:`repro.parallel.seeding`)
  instead of drawing from shared RNGs, so outputs are bitwise equal
  for ``n_jobs=1`` and ``n_jobs=8``.
- **Serial fallback**: one worker (or one item, or a call made from
  inside another pool's worker) runs in-process with the caller's
  arrays -- no fork, no shared memory, fully debuggable and covered.
- **Failure surfacing**: an exception raised by ``func`` propagates
  unchanged; a worker that *dies* (segfault, ``os._exit``, OOM kill)
  raises :class:`WorkerCrashError` instead of hanging the parent.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro import obs
from repro.parallel.jobs import _WORKER_ENV, in_worker, resolve_n_jobs
from repro.parallel.shm import ArraySpec, SharedArrays, attach_arrays

__all__ = ["parallel_map", "WorkerCrashError"]


class WorkerCrashError(RuntimeError):
    """A pool worker terminated abnormally (it did not raise -- it died)."""


# ---------------------------------------------------------------------------
# Worker side.  Module-level state is per worker process: the initializer
# runs once per worker and maps the parent's shared segments.
# ---------------------------------------------------------------------------
_worker_arrays: dict[str, np.ndarray] = {}
_worker_blocks: list = []


def _worker_init(specs: list[ArraySpec], untrack: bool) -> None:
    os.environ[_WORKER_ENV] = "1"
    arrays, blocks = attach_arrays(specs, untrack=untrack)
    _worker_arrays.update(arrays)
    _worker_blocks.extend(blocks)


def _run_chunk(func: Callable[[Any, dict], Any], chunk: Sequence[Any]) -> list:
    return [func(item, _worker_arrays) for item in chunk]


def _run_chunk_timed(
    func: Callable[[Any, dict], Any], chunk: Sequence[Any], submitted: float
) -> tuple[list, float, float]:
    """Observability variant of :func:`_run_chunk`.

    Returns the results plus the chunk's queue wait (submit in the
    parent until a worker picks it up; ``perf_counter`` is the
    system-wide CLOCK_MONOTONIC under the fork start method, so the
    parent/worker timestamps are comparable) and its execute time.
    The parent records both -- worker-side registries are process-local
    and die with the pool.
    """
    started = time.perf_counter()
    results = [func(item, _worker_arrays) for item in chunk]
    return results, max(0.0, started - submitted), time.perf_counter() - started


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------
def _pool_context():
    # fork is markedly cheaper and inherits the warmed-up interpreter;
    # fall back to spawn where fork does not exist (Windows, macOS
    # guarded builds).
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def parallel_map(
    func: Callable[[Any, dict[str, np.ndarray]], Any],
    items: Iterable[Any],
    *,
    n_jobs: int | None = None,
    shared: dict[str, np.ndarray] | None = None,
    chunk_size: int | None = None,
    on_crash: str = "raise",
) -> list:
    """Apply ``func(item, arrays)`` to every item; results in item order.

    Parameters
    ----------
    func:
        A *module-level* callable (it is pickled by name).  Receives the
        item and the dict of shared arrays; must treat the arrays as
        read-only and take all randomness from seeds carried by the item.
    items:
        Task payloads.  Keep them small; put large read-only arrays in
        ``shared`` instead.
    n_jobs:
        Worker count per the :func:`repro.parallel.jobs.resolve_n_jobs`
        convention.  ``None``/1 executes in-process.
    shared:
        Named ndarrays passed to every call.  Serial execution hands
        them to ``func`` as-is; parallel execution copies each once
        into shared memory and maps it zero-copy in every worker.
    chunk_size:
        Items per dispatched task.  Defaults to roughly four chunks per
        worker, which amortizes IPC while keeping heterogeneous task
        durations balanced.  Chunking never affects results, only
        scheduling.
    on_crash:
        What to do when a *worker dies* (it did not raise -- it was
        killed, segfaulted, or exited).  ``"raise"`` (the default,
        historical behavior) raises :class:`WorkerCrashError`;
        ``"serial"`` re-runs every chunk the broken pool failed to
        deliver in the parent process, against the caller's original
        arrays, so the call still returns the complete, deterministic
        result list.  Exceptions *raised by* ``func`` propagate
        unchanged in both modes.
    """
    if on_crash not in ("raise", "serial"):
        raise ValueError('on_crash must be "raise" or "serial".')
    items = list(items)
    shared = dict(shared or {})
    jobs = min(resolve_n_jobs(n_jobs), len(items)) if items else 1
    if jobs <= 1 or in_worker():
        if not obs.enabled():
            return [func(item, shared) for item in items]
        with obs.trace("parallel.serial"):
            started = time.perf_counter()
            results = [func(item, shared) for item in items]
        obs.inc("parallel.items", len(items))
        obs.observe("parallel.execute_seconds", time.perf_counter() - started)
        return results

    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(items) / (jobs * 4)))
    chunks = [
        items[start:start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]

    context = _pool_context()
    # Timed dispatch only swaps the chunk wrapper; items, chunking and
    # result order are identical, so outputs never depend on whether
    # observability is on.
    timed = obs.enabled()
    if timed:
        obs.set_gauge("parallel.workers", jobs)
        obs.inc("parallel.pool_runs")
        obs.inc("parallel.items", len(items))
    with SharedArrays(shared) as segments:
        executor = ProcessPoolExecutor(
            max_workers=jobs,
            mp_context=context,
            initializer=_worker_init,
            initargs=(segments.specs, context.get_start_method() != "fork"),
        )
        try:
            if timed:
                futures = [
                    executor.submit(
                        _run_chunk_timed, func, chunk, time.perf_counter()
                    )
                    for chunk in chunks
                ]
            else:
                futures = [
                    executor.submit(_run_chunk, func, chunk) for chunk in chunks
                ]
            results: list = []
            try:
                for index, future in enumerate(futures):
                    try:
                        if timed:
                            chunk_results, queue_wait, execute = future.result()
                            obs.inc("parallel.chunks")
                            obs.observe(
                                "parallel.queue_wait_seconds", queue_wait
                            )
                            obs.observe("parallel.execute_seconds", execute)
                        else:
                            chunk_results = future.result()
                    except BrokenProcessPool as error:
                        if on_crash != "serial":
                            raise WorkerCrashError(
                                "A parallel worker died without raising "
                                "(killed, segfaulted, or exited); the pool "
                                "has been torn down.  Re-run with n_jobs=1 "
                                "to debug the failing task in-process, or "
                                'pass on_crash="serial" to fall back.'
                            ) from error
                        # Once the pool breaks every undelivered chunk
                        # lands here; re-run each in the parent against
                        # the caller's original arrays.  Same items,
                        # same order -> same results.
                        obs.inc("parallel.chunks_rescued")
                        chunk_results = [
                            func(item, shared) for item in chunks[index]
                        ]
                    results.extend(chunk_results)
            finally:
                for future in futures:
                    future.cancel()
        finally:
            executor.shutdown(wait=True, cancel_futures=True)
    return results
