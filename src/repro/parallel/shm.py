"""Shared-memory ndarray passing between the parent and pool workers.

Large read-only inputs (the training corpus ``X``/``y``, per-fold
sample weights) are copied once into POSIX shared memory; workers map
them zero-copy instead of receiving a pickled copy per task.  The
worker-side views are marked read-only -- task functions must treat
shared arrays as immutable, which is also what the determinism
contract requires.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArrays", "attach_arrays"]

#: (key, shm_name, shape, dtype_str) -- everything a worker needs to map
#: one shared array.
ArraySpec = tuple[str, str, tuple[int, ...], str]


class SharedArrays:
    """Owner of a set of named shared-memory array copies.

    Use as a context manager in the parent::

        with SharedArrays({"X": X, "y": y}) as shared:
            specs = shared.specs   # picklable; pass to worker initializer

    On exit the segments are closed and unlinked; workers must have
    finished by then (the pool is always shut down inside the block).
    """

    def __init__(self, arrays: dict[str, np.ndarray]):
        self._blocks: list[shared_memory.SharedMemory] = []
        self.specs: list[ArraySpec] = []
        try:
            for key, array in arrays.items():
                array = np.ascontiguousarray(array)
                block = shared_memory.SharedMemory(
                    create=True, size=max(1, array.nbytes)
                )
                view = np.ndarray(array.shape, array.dtype, buffer=block.buf)
                view[...] = array
                self._blocks.append(block)
                self.specs.append(
                    (key, block.name, array.shape, array.dtype.str)
                )
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        for block in self._blocks:
            try:
                block.close()
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._blocks = []

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach_arrays(
    specs: list[ArraySpec],
    *,
    untrack: bool = False,
) -> tuple[dict[str, np.ndarray], list[shared_memory.SharedMemory]]:
    """Worker side: map the parent's segments into read-only ndarrays.

    Returns the array dict and the attached blocks; the blocks must be
    kept alive as long as the arrays are in use (the pool worker holds
    them for its lifetime).  Pass ``untrack=True`` in spawn-started
    workers, whose private resource tracker would otherwise claim the
    parent-owned segments and warn about them at exit.
    """
    arrays: dict[str, np.ndarray] = {}
    blocks: list[shared_memory.SharedMemory] = []
    for key, name, shape, dtype in specs:
        block = shared_memory.SharedMemory(name=name)
        if untrack:
            _untrack(block)
        blocks.append(block)
        view = np.ndarray(shape, np.dtype(dtype), buffer=block.buf)
        view.setflags(write=False)
        arrays[key] = view
    return arrays, blocks


def _untrack(block: shared_memory.SharedMemory) -> None:
    """Stop a spawn-started worker's private resource tracker from also
    unlinking the segment.

    The parent owns the segment's lifetime; without this, every
    spawn-started worker registers it with its own tracker, which warns
    about "leaked" segments at shutdown (cpython#82300).  Fork-started
    workers share the parent's tracker -- a set-keyed cache where the
    duplicate registration is harmless -- and must *not* unregister, or
    they would strip the parent's own entry.  Python 3.13 exposes
    ``track=False`` for the same purpose; this supports older
    interpreters.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(block._name, "shared_memory")
    except Exception:
        pass
