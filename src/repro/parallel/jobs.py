"""``n_jobs`` resolution: one convention for every parallel entry point.

The convention matches scikit-learn's so the paper's grids and scripts
translate directly:

- ``None`` -> 1 (serial; the default everywhere, keeps debugging and
  coverage trivial),
- positive ``k`` -> ``k`` worker processes,
- ``-1`` -> every available core,
- other negatives -> ``cores + 1 + n_jobs`` (``-2`` = all but one),
- ``0`` -> ``ValueError`` (meaningless).
"""

from __future__ import annotations

import os

__all__ = ["resolve_n_jobs", "available_cores", "in_worker"]

#: Environment flag set inside pool workers so nested ``parallel_map``
#: calls degrade to serial instead of forking pools within pools.
_WORKER_ENV = "_REPRO_POOL_WORKER"


def available_cores() -> int:
    """Cores usable by this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def in_worker() -> bool:
    """True when executing inside a :func:`parallel_map` worker."""
    return os.environ.get(_WORKER_ENV) == "1"


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Turn an ``n_jobs`` request into a concrete worker count (>= 1)."""
    if n_jobs is None:
        return 1
    if not isinstance(n_jobs, int) or isinstance(n_jobs, bool):
        raise ValueError(f"n_jobs must be an int or None, got {n_jobs!r}.")
    if n_jobs == 0:
        raise ValueError("n_jobs == 0 has no meaning; use None or 1 for serial.")
    cores = available_cores()
    if n_jobs < 0:
        return max(1, cores + 1 + n_jobs)
    return n_jobs
