"""Deterministic per-task seed spawning.

The bitwise-determinism contract of the parallel layer is enforced
here: every parallel task (tree, fold x candidate, session) receives a
:class:`numpy.random.SeedSequence` spawned *up front* in the parent,
so no worker ever draws from a shared RNG.  Results are then
independent of the number of workers, of chunking, and of completion
order.

``spawn_seeds`` accepts everything :func:`repro.ml.base.check_random_state`
does.  A ``Generator`` is consumed for exactly one draw (its entropy
root) regardless of ``n``, so serial and parallel callers advance the
caller-visible RNG state identically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_seeds"]


def spawn_seeds(random_state, n: int) -> list[np.random.SeedSequence]:
    """Spawn ``n`` independent child seed sequences from ``random_state``.

    Accepts ``None`` (OS entropy), an ``int``, a ``SeedSequence`` or a
    ``Generator``.  The spawned children are statistically independent
    and deterministic given the input, which makes them safe to hand to
    concurrently-executing workers.
    """
    if n < 0:
        raise ValueError("Cannot spawn a negative number of seeds.")
    if isinstance(random_state, np.random.SeedSequence):
        root = random_state
    elif isinstance(random_state, np.random.Generator):
        # One draw fixes the root; the count n must not influence how
        # much caller RNG state is consumed.
        root = np.random.SeedSequence(
            int(random_state.integers(0, 2**63 - 1))
        )
    elif random_state is None or isinstance(random_state, (int, np.integer)):
        root = np.random.SeedSequence(
            None if random_state is None else int(random_state)
        )
    else:
        raise ValueError(
            f"Unsupported random_state for seed spawning: {random_state!r}."
        )
    return root.spawn(n)
