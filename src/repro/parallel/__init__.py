"""Deterministic process-level parallelism for the hot training paths.

The paper's winning configuration -- a 250-tree random forest tuned by
grid search over 25 simulated Table-1 sessions -- is embarrassingly
parallel at three granularities: trees, fold x candidate evaluations,
and sessions.  This package provides the one execution layer all of
them share:

- :func:`resolve_n_jobs` -- the ``n_jobs`` convention (``None`` -> 1,
  ``-1`` -> all cores, negative -> ``cores + 1 + n_jobs``).
- :func:`spawn_seeds` -- per-task :class:`numpy.random.SeedSequence`
  spawning, the mechanism behind the bitwise-determinism contract: for
  a fixed ``random_state`` every task owns a pre-spawned seed, so
  results are identical for ``n_jobs=1`` and ``n_jobs=8``.
- :func:`parallel_map` -- chunked process-pool mapping with
  shared-memory ndarray passing for large read-only inputs and a
  transparent in-process fallback when one worker is requested.

See ``docs/api_overview.md`` ("Parallelism & determinism") for the
seeding contract every caller follows.
"""

from repro.parallel.jobs import in_worker, resolve_n_jobs
from repro.parallel.pool import WorkerCrashError, parallel_map
from repro.parallel.seeding import spawn_seeds
from repro.parallel.shm import SharedArrays

__all__ = [
    "resolve_n_jobs",
    "in_worker",
    "spawn_seeds",
    "parallel_map",
    "WorkerCrashError",
    "SharedArrays",
]
