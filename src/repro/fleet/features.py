"""Batched feature engineering: the fleet counterpart of
:class:`~repro.core.features.pipeline.PipelineStream`.

One :class:`FleetPipelineStream` replaces N per-container stream
objects.  All rolling/lag/rate state lives in preallocated
``(n_rows, ...)`` arrays updated with numpy ops; each matrix row is an
independent series, so every per-row output is bitwise identical to
what a dedicated ``PipelineStream`` would produce for that container
(the documented exception stays: PCA-based reductions may differ from
the per-tick path in the last bits, within the 1e-9 streaming
tolerance).

Row independence is what makes this work: the stateless steps (binary
levels, log scaling, normalization, filters, interactions) apply the
*batch* ``transform`` of the fitted pipeline directly to the fleet
matrix -- elementwise per row, so a fleet tick is arithmetically the
same as N single-row transforms.  Only the temporal step is stateful;
:class:`FleetTemporalState` re-implements
:meth:`~repro.core.features.temporal.TemporalFeatures.transform_tick`
over per-row tick counters and ``(ring, n_rows, k)`` ring buffers with
the exact cumulative-difference + window-extremes-clamp arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.features.meta import FeatureMeta
from repro.core.features.pipeline import MonitorlessPipeline
from repro.ml.preprocessing import StandardScaler

__all__ = ["FleetTemporalState", "FleetPipelineStream"]


class FleetTemporalState:
    """Per-row :class:`~repro.core.features.temporal.TemporalState`
    arrays: one fleet-wide struct of rings instead of N objects."""

    def __init__(self, n_columns: int, windows: tuple[int, ...],
                 capacity: int):
        self.windows = tuple(windows)
        self.n_columns = n_columns
        max_window = max(windows) if windows else 1
        self._ring_cum = max_window + 2
        self._ring_raw = max_window + 1
        self.t = np.zeros(capacity, dtype=np.int64)
        self.cumulative = np.zeros((capacity, n_columns))
        self._cum_ring = np.zeros((self._ring_cum, capacity, n_columns))
        self._raw_ring = np.zeros((self._ring_raw, capacity, n_columns))
        self._first = np.zeros((capacity, n_columns))

    @property
    def capacity(self) -> int:
        return self.t.shape[0]

    def grow(self, capacity: int) -> None:
        if capacity <= self.capacity:
            return
        old = self.capacity
        for name in ("cumulative", "_first"):
            fresh = np.zeros((capacity, self.n_columns))
            fresh[:old] = getattr(self, name)
            setattr(self, name, fresh)
        for name, rings in (("_cum_ring", self._ring_cum),
                            ("_raw_ring", self._ring_raw)):
            fresh = np.zeros((rings, capacity, self.n_columns))
            fresh[:, :old] = getattr(self, name)
            setattr(self, name, fresh)
        t = np.zeros(capacity, dtype=np.int64)
        t[:old] = self.t
        self.t = t

    def reset_rows(self, rows: np.ndarray) -> None:
        self.t[rows] = 0
        self.cumulative[rows] = 0.0
        self._cum_ring[:, rows] = 0.0
        self._raw_ring[:, rows] = 0.0
        self._first[rows] = 0.0

    def push_blocks(self, rows: np.ndarray,
                    source: np.ndarray) -> list[np.ndarray]:
        """Advance ``rows`` by one tick each and return the AVG/LAG
        blocks, ordered exactly like ``transform_tick`` concatenates
        them (``avg_x, lag_x`` per window)."""
        t = self.t[rows]  # 0-based tick index of the rows being pushed
        cum = self.cumulative[rows] + source
        self.cumulative[rows] = cum
        self._cum_ring[t % self._ring_cum, rows] = cum
        self._raw_ring[t % self._ring_raw, rows] = source
        first = t == 0
        if first.any():
            self._first[rows[first]] = source[first]
        self.t[rows] = t + 1

        blocks: list[np.ndarray] = []
        warm = cum / (t + 1)[:, None]
        for x_value in self.windows:
            before = self._cum_ring[(t - x_value - 1) % self._ring_cum, rows]
            averaged = np.where(
                (t > x_value)[:, None], (cum - before) / (x_value + 1), warm
            )
            # The same window-extremes clamp as the per-tick path: min
            # and max are exact, so gathering ring rows one offset at a
            # time (masked to the warm-up length) matches the stacked
            # reduction bit for bit.
            lo = source.copy()
            hi = source.copy()
            for offset in range(1, x_value + 1):
                gathered = self._raw_ring[(t - offset) % self._ring_raw, rows]
                mask = (offset <= t)[:, None]
                np.minimum(lo, gathered, out=lo, where=mask)
                np.maximum(hi, gathered, out=hi, where=mask)
            blocks.append(np.clip(averaged, lo, hi))
            lag = self._raw_ring[(t - x_value) % self._ring_raw, rows]
            blocks.append(
                np.where((t >= x_value)[:, None], lag, self._first[rows])
            )
        return blocks


class FleetPipelineStream:
    """Incremental fleet-matrix execution of a fitted pipeline.

    Feeds ``(m, n_raw)`` row batches (one tick per row per push)
    through the fitted steps and stores the engineered rows in
    :attr:`features`.  NaN inputs are masked to each row's last clean
    input (0.0 before one exists) *before* the temporal step, exactly
    like ``PipelineStream.push``.
    """

    def __init__(
        self,
        pipeline: MonitorlessPipeline,
        input_meta: list[FeatureMeta],
        capacity: int = 64,
        chunk_rows: int = 1024,
    ):
        if not hasattr(pipeline, "variance_"):
            raise RuntimeError("Pipeline must be fit_transform-ed first.")
        self.pipeline = pipeline
        self.n_raw = len(input_meta)
        self.chunk_rows = int(chunk_rows)
        # The batch step transforms take (and return) meta lists; the
        # per-step input metas are a pure function of the catalog meta,
        # so capture them once with a dummy row and reuse them on every
        # push (LogScaler reads meta content, the filters index it).
        self._meta: dict[str, list[FeatureMeta]] = {}
        X = np.zeros((1, self.n_raw))
        meta = list(input_meta)
        self._meta["binary"] = meta
        X, meta = pipeline.binary_.transform(X, meta)
        self._meta["log"] = meta
        X, meta = pipeline.log_.transform(X, meta)
        if pipeline.reduction1_ is not None:
            self._meta["reduction1"] = meta
            X, meta = pipeline.reduction1_.transform(X, meta)
        if pipeline.temporal_ is not None:
            X, meta = pipeline.temporal_.transform(X, meta, None)
        if pipeline.interactions_ is not None:
            self._meta["interactions"] = meta
            X, meta = pipeline.interactions_.transform(X, meta)
        if pipeline.reduction2_ is not None:
            self._meta["reduction2"] = meta
            X, meta = pipeline.reduction2_.transform(X, meta)
        self._meta["variance"] = meta
        X, meta = pipeline.variance_.transform(X, meta)
        self.n_features = X.shape[1]

        # The compiled plan computes only the columns that survive the
        # final selections (possible whenever every reduction is a pure
        # column subset); pipelines it cannot express -- e.g. PCA
        # reductions -- keep the full-width reference walk.
        self._compiled = self._compile()
        if self._compiled is not None:
            tsub = self._compiled["tsub"]
            self.temporal = (
                FleetTemporalState(
                    len(tsub), pipeline.temporal_.windows, capacity
                )
                if len(tsub)
                else None
            )
            self._last_clean = np.zeros(
                (capacity, self._compiled["needed_raw"].size)
            )
        else:
            self.temporal = (
                FleetTemporalState(
                    len(pipeline.temporal_.columns_),
                    pipeline.temporal_.windows,
                    capacity,
                )
                if pipeline.temporal_ is not None
                else None
            )
            self._last_clean = np.zeros((capacity, self.n_raw))
        self._has_clean = np.zeros(capacity, dtype=bool)
        self.imputed_ticks = np.zeros(capacity, dtype=np.int64)
        self.ticks = np.zeros(capacity, dtype=np.int64)
        self.features = np.zeros((capacity, self.n_features))
        self.has_features = np.zeros(capacity, dtype=bool)

    @property
    def capacity(self) -> int:
        return self._has_clean.shape[0]

    def grow(self, capacity: int) -> None:
        if capacity <= self.capacity:
            return
        old = self.capacity
        for name, width in (("_last_clean", self._last_clean.shape[1]),
                            ("features", self.n_features)):
            fresh = np.zeros((capacity, width))
            fresh[:old] = getattr(self, name)
            setattr(self, name, fresh)
        for name, dtype in (("_has_clean", bool), ("has_features", bool),
                            ("imputed_ticks", np.int64), ("ticks", np.int64)):
            fresh = np.zeros(capacity, dtype=dtype)
            fresh[:old] = getattr(self, name)
            setattr(self, name, fresh)
        if self.temporal is not None:
            self.temporal.grow(capacity)

    def reset_rows(self, rows) -> None:
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size == 0:
            return
        self._last_clean[rows] = 0.0
        self._has_clean[rows] = False
        self.imputed_ticks[rows] = 0
        self.ticks[rows] = 0
        self.features[rows] = 0.0
        self.has_features[rows] = False
        if self.temporal is not None:
            self.temporal.reset_rows(rows)

    def push_rows(self, rows: np.ndarray, raw: np.ndarray,
                  completeness: np.ndarray) -> None:
        """One tick for ``rows``: raw metric rows -> engineered rows.

        ``raw`` and ``completeness`` are the emitted slices aligned
        with ``rows``.  Batches are processed in bounded chunks so the
        transient interaction-product matrix stays small at fleet
        scale.
        """
        if rows.size == 0:
            return
        # The compiled plan's transients are O(rows x final columns), so
        # the whole batch fits in one chunk; the reference walk bounds
        # the full-width interaction matrix instead.  Chunking is a row
        # partition over row-independent math, so the split never
        # changes a single bit of the output.
        chunk_rows = rows.size if self._compiled is not None else self.chunk_rows
        with obs.trace("fleet.push_rows"):
            for lo in range(0, rows.size, chunk_rows):
                chunk = slice(lo, lo + chunk_rows)
                self._push_chunk(
                    rows[chunk], raw[chunk], completeness[chunk]
                )
        obs.inc("fleet.rows_pushed", float(rows.size))

    # ------------------------------------------------------------------
    # Compiled final-column plan
    # ------------------------------------------------------------------
    def _compile(self) -> dict | None:
        """Build the final-column execution plan, or ``None``.

        The default pipeline's reductions are pure column selections,
        so each of the ~1e2 surviving output columns traces back
        through the interaction pairs, the temporal blocks and the
        post-reduction matrix to a handful of raw/level source columns
        -- and each tick only those are computed.  Every retained
        operation (threshold compare, ``log1p``, standardization,
        windowed temporal math, pair products, column copies) is
        elementwise per column, so compiled outputs are bitwise
        identical to the reference full-width walk.  Pipelines the plan
        cannot express (PCA reductions, custom scalers) return ``None``
        and keep the reference walk.
        """
        p = self.pipeline
        n_raw = self.n_raw
        if not hasattr(p.binary_, "source_columns_"):
            return None
        log_cols = getattr(p.log_, "columns_", None)
        if log_cols is None or any(c >= n_raw for c in log_cols):
            return None
        scaler = p.scaler_
        if scaler is not None and type(scaler) is not StandardScaler:
            return None
        for reducer in (p.reduction1_, p.reduction2_):
            if reducer is not None and not hasattr(reducer, "selected_"):
                return None
        if not hasattr(p.variance_, "selected_"):
            return None

        level_defs = [
            (index, low, high)
            for index, levels in p.binary_.source_columns_
            for (_suffix, low, high) in levels
        ]
        w1 = n_raw + len(level_defs)
        sel1 = (
            np.asarray(p.reduction1_.selected_, dtype=np.intp)
            if p.reduction1_ is not None
            else np.arange(w1, dtype=np.intp)
        )
        k1 = sel1.size
        temporal = p.temporal_
        t_cols = (
            np.asarray(temporal.columns_, dtype=np.intp)
            if temporal is not None
            else np.zeros(0, dtype=np.intp)
        )
        k_t = t_cols.size
        n_blocks = 2 * len(temporal.windows) if temporal is not None else 0
        w_t = k1 + n_blocks * k_t
        inter = p.interactions_
        if inter is not None and inter.pairs_:
            left = np.asarray([i for i, _ in inter.pairs_], dtype=np.intp)
            right = np.asarray([j for _, j in inter.pairs_], dtype=np.intp)
        else:
            left = right = np.zeros(0, dtype=np.intp)
        w_inter = w_t + left.size
        sel2 = (
            np.asarray(p.reduction2_.selected_, dtype=np.intp)
            if p.reduction2_ is not None
            else np.arange(w_inter, dtype=np.intp)
        )
        final_cols = sel2[np.asarray(p.variance_.selected_, dtype=np.intp)]
        if final_cols.size != self.n_features:
            return None  # inconsistent fit state; keep the reference walk

        # Output coordinates: plain copies vs pair products, and the
        # union of plain coordinates any output depends on.
        is_plain = final_cols < w_t
        pair_final = final_cols[~is_plain] - w_t
        needed_plain = sorted(
            set(final_cols[is_plain].tolist())
            | set(left[pair_final].tolist())
            | set(right[pair_final].tolist())
        )
        plain_pos = {c: i for i, c in enumerate(needed_plain)}

        # Each plain coordinate lives in the post-reduction matrix
        # (c < k1) or in temporal block b = (c - k1) // k_t.
        tsub = sorted({(c - k1) % k_t for c in needed_plain if c >= k1})
        tpos = {j: i for i, j in enumerate(tsub)}
        direct_cols = [c for c in needed_plain if c < k1]
        needed_q = sorted(
            {int(sel1[c]) for c in direct_cols}
            | {int(sel1[t_cols[j]]) for j in tsub}
        )
        qpos = {q: i for i, q in enumerate(needed_q)}

        value_pos, value_src, levels = [], [], []
        log_set = set(log_cols)
        for q in needed_q:
            if q < n_raw:
                value_pos.append(qpos[q])
                value_src.append(q)
            else:
                src, low, high = level_defs[q - n_raw]
                levels.append((qpos[q], src, low, high))
        needed_raw = np.asarray(
            sorted(set(value_src) | {src for _, src, _, _ in levels}),
            dtype=np.intp,
        )
        raw_pos = {int(q): i for i, q in enumerate(needed_raw)}
        block_maps = [
            (
                np.asarray(
                    [plain_pos[c] for c in needed_plain
                     if c >= k1 and (c - k1) // k_t == b],
                    dtype=np.intp,
                ),
                np.asarray(
                    [tpos[(c - k1) % k_t] for c in needed_plain
                     if c >= k1 and (c - k1) // k_t == b],
                    dtype=np.intp,
                ),
            )
            for b in range(n_blocks)
        ]
        return {
            "needed_raw": needed_raw,
            "n_q": len(needed_q),
            "value_pos": np.asarray(value_pos, dtype=np.intp),
            "value_raw": np.asarray(
                [raw_pos[q] for q in value_src], dtype=np.intp
            ),
            "log_pos": np.asarray(
                [qpos[q] for q in value_src if q in log_set], dtype=np.intp
            ),
            "levels": [
                (pos, raw_pos[src], low, high)
                for pos, src, low, high in levels
            ],
            "mean_q": scaler.mean_[needed_q] if scaler is not None else None,
            "std_q": scaler.std_[needed_q] if scaler is not None else None,
            "tsub": tsub,
            "tsrc_pos": np.asarray(
                [qpos[int(sel1[t_cols[j]])] for j in tsub], dtype=np.intp
            ),
            "n_plain": len(needed_plain),
            "direct_P": np.asarray(
                [plain_pos[c] for c in direct_cols], dtype=np.intp
            ),
            "direct_X": np.asarray(
                [qpos[int(sel1[c])] for c in direct_cols], dtype=np.intp
            ),
            "block_maps": block_maps,
            "plain_out": np.flatnonzero(is_plain),
            "plain_src": np.asarray(
                [plain_pos[c] for c in final_cols[is_plain]], dtype=np.intp
            ),
            "pair_out": np.flatnonzero(~is_plain),
            "pair_L": np.asarray(
                [plain_pos[int(c)] for c in left[pair_final]], dtype=np.intp
            ),
            "pair_R": np.asarray(
                [plain_pos[int(c)] for c in right[pair_final]], dtype=np.intp
            ),
        }

    def _push_chunk_compiled(self, rows, raw, completeness) -> None:
        plan = self._compiled
        sub = raw[:, plan["needed_raw"]].astype(np.float64, copy=True)
        # One reduction instead of a full-width isnan: a non-finite row
        # sum flags every row that *might* contain NaN (NaN propagates;
        # inf/overflow rows are also flagged), then the exact per-row
        # isnan runs only on the flagged rows.
        suspect = ~np.isfinite(raw.sum(axis=1))
        nan_rows = np.zeros(raw.shape[0], dtype=bool)
        if suspect.any():
            nan_rows[suspect] = np.isnan(raw[suspect]).any(axis=1)
        if nan_rows.any():
            sub_nan = np.isnan(sub)
            fill = np.where(
                self._has_clean[rows][:, None], self._last_clean[rows], 0.0
            )
            sub[sub_nan] = fill[sub_nan]
        self._last_clean[rows] = sub
        self._has_clean[rows] = True
        imputed = (np.asarray(completeness) < 1.0) | nan_rows
        self.imputed_ticks[rows] += imputed
        self.ticks[rows] += 1

        m = sub.shape[0]
        Xq = np.empty((m, plan["n_q"]))
        Xq[:, plan["value_pos"]] = sub[:, plan["value_raw"]]
        log_pos = plan["log_pos"]
        if log_pos.size:
            Xq[:, log_pos] = np.log1p(np.maximum(Xq[:, log_pos], 0.0))
        for pos, src, low, high in plan["levels"]:
            values = sub[:, src]
            mask = np.ones(m, dtype=bool)
            if low is not None:
                mask &= values > low
            if high is not None:
                mask &= values <= high
            Xq[:, pos] = mask.astype(np.float64)
        if plan["mean_q"] is not None:
            Xq = (Xq - plan["mean_q"]) / plan["std_q"]
        P = np.empty((m, plan["n_plain"]))
        P[:, plan["direct_P"]] = Xq[:, plan["direct_X"]]
        if self.temporal is not None:
            blocks = self.temporal.push_blocks(rows, Xq[:, plan["tsrc_pos"]])
            for b, (p_pos, b_cols) in enumerate(plan["block_maps"]):
                if p_pos.size:
                    P[:, p_pos] = blocks[b][:, b_cols]
        out = np.empty((m, self.n_features))
        out[:, plan["plain_out"]] = P[:, plan["plain_src"]]
        if plan["pair_out"].size:
            out[:, plan["pair_out"]] = (
                P[:, plan["pair_L"]] * P[:, plan["pair_R"]]
            )
        self.features[rows] = out
        self.has_features[rows] = True

    def _push_chunk(self, rows, raw, completeness) -> None:
        if self._compiled is not None:
            self._push_chunk_compiled(rows, raw, completeness)
            return
        pipeline = self.pipeline
        X = np.array(raw, dtype=np.float64, copy=True)
        nan_mask = np.isnan(X)
        nan_rows = nan_mask.any(axis=1)
        if nan_rows.any():
            fill = np.where(
                self._has_clean[rows][:, None], self._last_clean[rows], 0.0
            )
            X[nan_mask] = fill[nan_mask]
        self._last_clean[rows] = X
        self._has_clean[rows] = True
        imputed = (np.asarray(completeness) < 1.0) | nan_rows
        self.imputed_ticks[rows] += imputed
        self.ticks[rows] += 1

        X, _ = pipeline.binary_.transform(X, self._meta["binary"])
        X, _ = pipeline.log_.transform(X, self._meta["log"])
        if pipeline.scaler_ is not None:
            X = pipeline.scaler_.transform(X)
        if pipeline.reduction1_ is not None:
            X, _ = pipeline.reduction1_.transform(X, self._meta["reduction1"])
        if pipeline.temporal_ is not None:
            source = X[:, pipeline.temporal_.columns_]
            blocks = self.temporal.push_blocks(rows, source)
            X = np.hstack([X, *blocks])
        if pipeline.interactions_ is not None:
            X, _ = pipeline.interactions_.transform(
                X, self._meta["interactions"]
            )
        if pipeline.reduction2_ is not None:
            X, _ = pipeline.reduction2_.transform(X, self._meta["reduction2"])
        X, _ = pipeline.variance_.transform(X, self._meta["variance"])
        self.features[rows] = X
        self.has_features[rows] = True
