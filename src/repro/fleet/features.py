"""Batched feature engineering: the fleet counterpart of
:class:`~repro.core.features.pipeline.PipelineStream`.

One :class:`FleetPipelineStream` replaces N per-container stream
objects.  All rolling/lag/rate state lives in preallocated
``(n_rows, ...)`` arrays updated with numpy ops; each matrix row is an
independent series, so every per-row output is bitwise identical to
what a dedicated ``PipelineStream`` would produce for that container
(the documented exception stays: PCA-based reductions may differ from
the per-tick path in the last bits, within the 1e-9 streaming
tolerance).

Row independence is what makes this work: the stateless steps (binary
levels, log scaling, normalization, filters, interactions) apply the
*batch* ``transform`` of the fitted pipeline directly to the fleet
matrix -- elementwise per row, so a fleet tick is arithmetically the
same as N single-row transforms.  Only the temporal step is stateful;
:class:`FleetTemporalState` re-implements
:meth:`~repro.core.features.temporal.TemporalFeatures.transform_tick`
over per-row tick counters and ``(ring, n_rows, k)`` ring buffers with
the exact cumulative-difference + window-extremes-clamp arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.features.meta import FeatureMeta
from repro.core.features.pipeline import MonitorlessPipeline

__all__ = ["FleetTemporalState", "FleetPipelineStream"]


class FleetTemporalState:
    """Per-row :class:`~repro.core.features.temporal.TemporalState`
    arrays: one fleet-wide struct of rings instead of N objects."""

    def __init__(self, n_columns: int, windows: tuple[int, ...],
                 capacity: int):
        self.windows = tuple(windows)
        self.n_columns = n_columns
        max_window = max(windows) if windows else 1
        self._ring_cum = max_window + 2
        self._ring_raw = max_window + 1
        self.t = np.zeros(capacity, dtype=np.int64)
        self.cumulative = np.zeros((capacity, n_columns))
        self._cum_ring = np.zeros((self._ring_cum, capacity, n_columns))
        self._raw_ring = np.zeros((self._ring_raw, capacity, n_columns))
        self._first = np.zeros((capacity, n_columns))

    @property
    def capacity(self) -> int:
        return self.t.shape[0]

    def grow(self, capacity: int) -> None:
        if capacity <= self.capacity:
            return
        old = self.capacity
        for name in ("cumulative", "_first"):
            fresh = np.zeros((capacity, self.n_columns))
            fresh[:old] = getattr(self, name)
            setattr(self, name, fresh)
        for name, rings in (("_cum_ring", self._ring_cum),
                            ("_raw_ring", self._ring_raw)):
            fresh = np.zeros((rings, capacity, self.n_columns))
            fresh[:, :old] = getattr(self, name)
            setattr(self, name, fresh)
        t = np.zeros(capacity, dtype=np.int64)
        t[:old] = self.t
        self.t = t

    def reset_rows(self, rows: np.ndarray) -> None:
        self.t[rows] = 0
        self.cumulative[rows] = 0.0
        self._cum_ring[:, rows] = 0.0
        self._raw_ring[:, rows] = 0.0
        self._first[rows] = 0.0

    def push_blocks(self, rows: np.ndarray,
                    source: np.ndarray) -> list[np.ndarray]:
        """Advance ``rows`` by one tick each and return the AVG/LAG
        blocks, ordered exactly like ``transform_tick`` concatenates
        them (``avg_x, lag_x`` per window)."""
        t = self.t[rows]  # 0-based tick index of the rows being pushed
        cum = self.cumulative[rows] + source
        self.cumulative[rows] = cum
        self._cum_ring[t % self._ring_cum, rows] = cum
        self._raw_ring[t % self._ring_raw, rows] = source
        first = t == 0
        if first.any():
            self._first[rows[first]] = source[first]
        self.t[rows] = t + 1

        blocks: list[np.ndarray] = []
        warm = cum / (t + 1)[:, None]
        for x_value in self.windows:
            before = self._cum_ring[(t - x_value - 1) % self._ring_cum, rows]
            averaged = np.where(
                (t > x_value)[:, None], (cum - before) / (x_value + 1), warm
            )
            # The same window-extremes clamp as the per-tick path: min
            # and max are exact, so gathering ring rows one offset at a
            # time (masked to the warm-up length) matches the stacked
            # reduction bit for bit.
            lo = source.copy()
            hi = source.copy()
            for offset in range(1, x_value + 1):
                gathered = self._raw_ring[(t - offset) % self._ring_raw, rows]
                mask = (offset <= t)[:, None]
                np.minimum(lo, gathered, out=lo, where=mask)
                np.maximum(hi, gathered, out=hi, where=mask)
            blocks.append(np.clip(averaged, lo, hi))
            lag = self._raw_ring[(t - x_value) % self._ring_raw, rows]
            blocks.append(
                np.where((t >= x_value)[:, None], lag, self._first[rows])
            )
        return blocks


class FleetPipelineStream:
    """Incremental fleet-matrix execution of a fitted pipeline.

    Feeds ``(m, n_raw)`` row batches (one tick per row per push)
    through the fitted steps and stores the engineered rows in
    :attr:`features`.  NaN inputs are masked to each row's last clean
    input (0.0 before one exists) *before* the temporal step, exactly
    like ``PipelineStream.push``.
    """

    def __init__(
        self,
        pipeline: MonitorlessPipeline,
        input_meta: list[FeatureMeta],
        capacity: int = 64,
        chunk_rows: int = 1024,
    ):
        if not hasattr(pipeline, "variance_"):
            raise RuntimeError("Pipeline must be fit_transform-ed first.")
        self.pipeline = pipeline
        self.n_raw = len(input_meta)
        self.chunk_rows = int(chunk_rows)
        # The batch step transforms take (and return) meta lists; the
        # per-step input metas are a pure function of the catalog meta,
        # so capture them once with a dummy row and reuse them on every
        # push (LogScaler reads meta content, the filters index it).
        self._meta: dict[str, list[FeatureMeta]] = {}
        X = np.zeros((1, self.n_raw))
        meta = list(input_meta)
        self._meta["binary"] = meta
        X, meta = pipeline.binary_.transform(X, meta)
        self._meta["log"] = meta
        X, meta = pipeline.log_.transform(X, meta)
        if pipeline.reduction1_ is not None:
            self._meta["reduction1"] = meta
            X, meta = pipeline.reduction1_.transform(X, meta)
        if pipeline.temporal_ is not None:
            X, meta = pipeline.temporal_.transform(X, meta, None)
        if pipeline.interactions_ is not None:
            self._meta["interactions"] = meta
            X, meta = pipeline.interactions_.transform(X, meta)
        if pipeline.reduction2_ is not None:
            self._meta["reduction2"] = meta
            X, meta = pipeline.reduction2_.transform(X, meta)
        self._meta["variance"] = meta
        X, meta = pipeline.variance_.transform(X, meta)
        self.n_features = X.shape[1]

        self.temporal = (
            FleetTemporalState(
                len(pipeline.temporal_.columns_),
                pipeline.temporal_.windows,
                capacity,
            )
            if pipeline.temporal_ is not None
            else None
        )
        self._last_clean = np.zeros((capacity, self.n_raw))
        self._has_clean = np.zeros(capacity, dtype=bool)
        self.imputed_ticks = np.zeros(capacity, dtype=np.int64)
        self.ticks = np.zeros(capacity, dtype=np.int64)
        self.features = np.zeros((capacity, self.n_features))
        self.has_features = np.zeros(capacity, dtype=bool)

    @property
    def capacity(self) -> int:
        return self._has_clean.shape[0]

    def grow(self, capacity: int) -> None:
        if capacity <= self.capacity:
            return
        old = self.capacity
        for name, width in (("_last_clean", self.n_raw),
                            ("features", self.n_features)):
            fresh = np.zeros((capacity, width))
            fresh[:old] = getattr(self, name)
            setattr(self, name, fresh)
        for name, dtype in (("_has_clean", bool), ("has_features", bool),
                            ("imputed_ticks", np.int64), ("ticks", np.int64)):
            fresh = np.zeros(capacity, dtype=dtype)
            fresh[:old] = getattr(self, name)
            setattr(self, name, fresh)
        if self.temporal is not None:
            self.temporal.grow(capacity)

    def reset_rows(self, rows) -> None:
        rows = np.asarray(rows, dtype=np.intp)
        if rows.size == 0:
            return
        self._last_clean[rows] = 0.0
        self._has_clean[rows] = False
        self.imputed_ticks[rows] = 0
        self.ticks[rows] = 0
        self.features[rows] = 0.0
        self.has_features[rows] = False
        if self.temporal is not None:
            self.temporal.reset_rows(rows)

    def push_rows(self, rows: np.ndarray, raw: np.ndarray,
                  completeness: np.ndarray) -> None:
        """One tick for ``rows``: raw metric rows -> engineered rows.

        ``raw`` and ``completeness`` are the emitted slices aligned
        with ``rows``.  Batches are processed in bounded chunks so the
        transient interaction-product matrix stays small at fleet
        scale.
        """
        if rows.size == 0:
            return
        with obs.trace("fleet.push_rows"):
            for lo in range(0, rows.size, self.chunk_rows):
                chunk = slice(lo, lo + self.chunk_rows)
                self._push_chunk(
                    rows[chunk], raw[chunk], completeness[chunk]
                )
        obs.inc("fleet.rows_pushed", float(rows.size))

    def _push_chunk(self, rows, raw, completeness) -> None:
        pipeline = self.pipeline
        X = np.array(raw, dtype=np.float64, copy=True)
        nan_mask = np.isnan(X)
        nan_rows = nan_mask.any(axis=1)
        if nan_rows.any():
            fill = np.where(
                self._has_clean[rows][:, None], self._last_clean[rows], 0.0
            )
            X[nan_mask] = fill[nan_mask]
        self._last_clean[rows] = X
        self._has_clean[rows] = True
        imputed = (np.asarray(completeness) < 1.0) | nan_rows
        self.imputed_ticks[rows] += imputed
        self.ticks[rows] += 1

        X, _ = pipeline.binary_.transform(X, self._meta["binary"])
        X, _ = pipeline.log_.transform(X, self._meta["log"])
        if pipeline.scaler_ is not None:
            X = pipeline.scaler_.transform(X)
        if pipeline.reduction1_ is not None:
            X, _ = pipeline.reduction1_.transform(X, self._meta["reduction1"])
        if pipeline.temporal_ is not None:
            source = X[:, pipeline.temporal_.columns_]
            blocks = self.temporal.push_blocks(rows, source)
            X = np.hstack([X, *blocks])
        if pipeline.interactions_ is not None:
            X, _ = pipeline.interactions_.transform(
                X, self._meta["interactions"]
            )
        if pipeline.reduction2_ is not None:
            X, _ = pipeline.reduction2_.transform(X, self._meta["reduction2"])
        X, _ = pipeline.variance_.transform(X, self._meta["variance"])
        self.features[rows] = X
        self.has_features[rows] = True
