"""Fleet-wide saturation policy: one ``predict_proba`` per tick.

:class:`FleetPolicy` is the struct-of-arrays counterpart of the
per-container chain ``MonitorlessPolicy(streaming=True)`` (clean
cells) and ``FallbackPolicy`` (cells with a secondary threshold
policy).  Every registered cell's containers occupy rows of one
telemetry matrix and one feature matrix; each tick the policy

1. syncs membership (scale-out/scale-in -> row insertion/retirement),
2. advances telemetry in rounds (see
   :class:`~repro.fleet.telemetry.FleetTelemetryStream`) and pushes
   each round through the batched pipeline,
3. classifies the *whole fleet* with a single ``predict_proba`` call
   on the feature matrix -- per-row results are independent of batch
   composition, so the verdicts equal the per-cell reference's,
4. runs the healthy/degraded/failsafe/recovering state machine as
   vectorized int8 state + streak arrays whose transitions replicate
   ``FallbackPolicy._record_outcome`` exactly.

The return value is the set of saturated ``(namespace, deployment)``
rollup keys; a deployment is saturated when any replica row flags.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.model import predict_proba_trusted
from repro.fleet.features import FleetPipelineStream
from repro.fleet.membership import FleetIndex, FleetMember
from repro.fleet.telemetry import FleetTelemetryStream
from repro.reliability.fallback import DEGRADED, FAILSAFE, HEALTHY, RECOVERING

__all__ = ["FleetPolicy"]

# int8 encoding of the FallbackPolicy health states.
_HEALTHY, _DEGRADED, _FAILSAFE, _RECOVERING = 0, 1, 2, 3
_STATE_NAMES = {
    _HEALTHY: HEALTHY,
    _DEGRADED: DEGRADED,
    _FAILSAFE: FAILSAFE,
    _RECOVERING: RECOVERING,
}


@dataclass
class _Cell:
    """One application cell (namespace) registered with the policy."""

    namespace: str
    simulation: object
    application: str
    agent: object
    secondary: object | None = None
    pods: set[str] = field(default_factory=set)
    #: ``simulation.membership_version`` at the last reconciliation;
    #: lets :meth:`FleetPolicy._sync_cell` skip untouched cells.
    synced_version: int = -1


class FleetPolicy:
    """Saturation verdicts for many cells from one matrix walk."""

    name = "fleet"

    def __init__(
        self,
        model,
        *,
        catalog=None,
        capacity: int = 64,
        history: int = 16,
        staleness_budget: int | None = None,
        failsafe: str = "hold",
        recovery_ticks: int = 3,
        lifecycle=None,
    ):
        if failsafe not in ("hold", "scale-up"):
            raise ValueError('failsafe must be "hold" or "scale-up".')
        if recovery_ticks < 1:
            raise ValueError("recovery_ticks must be >= 1.")
        if staleness_budget is not None and staleness_budget < 0:
            raise ValueError("staleness_budget must be >= 0.")
        self.model = model
        self.history = history
        self.staleness_budget = staleness_budget
        self.failsafe = failsafe
        self.recovery_ticks = recovery_ticks
        #: Optional :class:`~repro.lifecycle.manager.LifecycleManager`;
        #: when attached the fleet follows its champion and reports
        #: every classified batch (the challenger shadow-scores the
        #: identical feature rows but never flips a verdict).
        self.lifecycle = lifecycle
        self.index = FleetIndex()
        self._cells: dict[str, _Cell] = {}
        if catalog is None:
            from repro.telemetry.catalog import default_catalog

            catalog = default_catalog()
        self.telemetry = FleetTelemetryStream(
            catalog, capacity=capacity, history=history
        )
        self.features = FleetPipelineStream(
            model.pipeline_, catalog.feature_meta(), capacity=capacity
        )
        self._capacity = self.features.capacity
        self._state = np.full(self._capacity, _HEALTHY, dtype=np.int8)
        self._streak = np.zeros(self._capacity, dtype=np.int32)
        # Rows with at least one recorded outcome; the reference health
        # mapping only contains containers that were ever judged.
        self._judged = np.zeros(self._capacity, dtype=bool)
        self.demotions = 0
        self.recoveries = 0
        self.failsafe_entries = 0
        self.failsafe_ticks = 0
        self.classifier_errors = 0
        self.last_classifier_error: str | None = None
        #: Cumulative wall-clock seconds per serving phase (simulation
        #: stepping -- filled by the shard runner -- telemetry
        #: synthesis, feature-pipeline pushes, classifier prediction,
        #: and the remaining policy bookkeeping).  A ``shadow`` phase
        #: appears only when a lifecycle manager is attached, so
        #: lifecycle-free runs keep the exact historical shape.
        self.phase_seconds = {
            "simulate": 0.0,
            "telemetry": 0.0,
            "features": 0.0,
            "predict": 0.0,
            "policy": 0.0,
        }
        if lifecycle is not None:
            self.phase_seconds["shadow"] = 0.0

    # ------------------------------------------------------------------
    # Cells and membership
    # ------------------------------------------------------------------
    def add_cell(self, namespace: str, simulation, application: str,
                 agent, secondary=None) -> None:
        """Register one application cell under ``namespace``."""
        if namespace in self._cells:
            raise ValueError(f"Cell {namespace!r} is already registered.")
        self._cells[namespace] = _Cell(
            namespace, simulation, application, agent, secondary
        )
        self._sync_cell(self._cells[namespace])

    def sync(self) -> None:
        """Reconcile matrix rows with every cell's live replica set."""
        for cell in self._cells.values():
            self._sync_cell(cell)

    def _sync_cell(self, cell: _Cell) -> None:
        version = getattr(cell.simulation, "membership_version", None)
        if version is not None and version == cell.synced_version:
            return
        deployment = cell.simulation.deployments[cell.application]
        live = {
            instance.container.name
            for replicas in deployment.instances.values()
            for instance in replicas
        }
        if live == cell.pods:
            return  # membership unchanged: skip the sweep entirely
        for service, replicas in deployment.instances.items():
            for instance in replicas:
                container = instance.container
                if container.name in cell.pods:
                    continue
                row = self.index.add(
                    FleetMember(
                        namespace=cell.namespace,
                        pod=container.name,
                        container=service,
                        deployment=service,
                    )
                )
                if row >= self._capacity:
                    self._grow(max(2 * self._capacity, row + 1))
                self.telemetry.add_row(
                    row, cell.namespace, cell.agent, container,
                    cell.simulation.nodes,
                )
                self.features.reset_rows([row])
                self._state[row] = _HEALTHY
                self._streak[row] = 0
                self._judged[row] = False
        for pod in cell.pods - live:
            row = self.index.retire(cell.namespace, pod)
            self.telemetry.retire_row(row)
            self.features.reset_rows([row])
            self._state[row] = _HEALTHY
            self._streak[row] = 0
            self._judged[row] = False
        cell.pods = live
        if version is not None:
            cell.synced_version = version

    def _grow(self, capacity: int) -> None:
        self.telemetry.grow(capacity)
        self.features.grow(capacity)
        for name, fill in (("_state", _HEALTHY), ("_streak", 0),
                           ("_judged", False)):
            old = getattr(self, name)
            fresh = np.full(capacity, fill, dtype=old.dtype)
            fresh[: self._capacity] = old
            setattr(self, name, fresh)
        self._capacity = capacity

    # ------------------------------------------------------------------
    # Vectorized FallbackPolicy._record_outcome
    # ------------------------------------------------------------------
    def _record_primary(self, rows: np.ndarray) -> None:
        if rows.size == 0:
            return
        state = self._state[rows]
        unhealthy = state != _HEALTHY
        if unhealthy.any():
            sub = rows[unhealthy]
            streak = np.where(
                self._state[sub] == _RECOVERING, self._streak[sub] + 1, 1
            )
            recovered = streak >= self.recovery_ticks
            self.recoveries += int(recovered.sum())
            self._state[sub] = np.where(recovered, _HEALTHY, _RECOVERING)
            self._streak[sub] = np.where(recovered, 0, streak)
        self._judged[rows] = True

    def _record_secondary(self, rows: np.ndarray) -> None:
        if rows.size == 0:
            return
        state = self._state[rows]
        self.demotions += int(
            ((state == _HEALTHY) | (state == _RECOVERING)).sum()
        )
        self._state[rows] = _DEGRADED
        self._streak[rows] = 0
        self._judged[rows] = True

    def _record_failsafe(self, rows: np.ndarray) -> None:
        if rows.size == 0:
            return
        self.failsafe_entries += int((self._state[rows] != _FAILSAFE).sum())
        self.failsafe_ticks += int(rows.size)
        self._state[rows] = _FAILSAFE
        self._streak[rows] = 0
        self._judged[rows] = True

    # ------------------------------------------------------------------
    # The per-tick verdict
    # ------------------------------------------------------------------
    def saturated_services(self, t: int) -> set[tuple[str, str]]:
        """Saturated ``(namespace, deployment)`` keys at tick ``t``."""
        with obs.trace("policy.fleet"):
            tick_started = time.perf_counter()
            telemetry_s = features_s = predict_s = shadow_s = 0.0
            if (
                self.lifecycle is not None
                and self.lifecycle.champion is not self.model
            ):
                # A promotion happened since the last tick; the pipeline
                # is frozen within a lineage, so the fleet feature
                # matrix stays valid.
                self.model = self.lifecycle.champion
            self.sync()
            telemetry = self.telemetry
            telemetry.begin_tick()
            while True:
                started = time.perf_counter()
                emitted = telemetry.advance_round()
                telemetry_s += time.perf_counter() - started
                if emitted.size == 0:
                    break
                started = time.perf_counter()
                # ``emitted`` is sorted; when it is also dense (the
                # steady state: every live row emits each round) a slice
                # view of the fleet matrix replaces the fancy-index copy.
                lo, hi = int(emitted[0]), int(emitted[-1]) + 1
                if hi - lo == emitted.size:
                    raw_block = telemetry.raw[lo:hi]
                    completeness_block = telemetry.completeness[lo:hi]
                else:
                    raw_block = telemetry.raw[emitted]
                    completeness_block = telemetry.completeness[emitted]
                self.features.push_rows(emitted, raw_block, completeness_block)
                features_s += time.perf_counter() - started

            # Rows that just emitted a *recorded* tick on the fast path
            # satisfy every per-row precondition by construction (they
            # have samples, never fault, staleness 0), so the whole
            # partition reduces to mask arithmetic; anything else --
            # compat rows, caught-up rows, placeholder emissions --
            # walks the reference checks row by row.
            live = np.asarray(self.index.live_rows(), dtype=np.intp)
            fast_ok = (
                telemetry.emitted_mask[live] & telemetry.recorded_mask[live]
            )
            demoted: list[int] = []
            slow_primary: list[int] = []
            for row in live[~fast_ok]:
                row = int(row)
                container = telemetry.container_at(row)
                if telemetry.row_end(row) <= container.created_at:
                    continue  # no samples yet
                if row in telemetry.faulted:
                    demoted.append(row)
                    continue
                if not self.features.has_features[row]:
                    continue
                if (
                    self.staleness_budget is not None
                    and telemetry.staleness(row) > self.staleness_budget
                ):
                    demoted.append(row)
                    continue
                slow_primary.append(row)

            primary_rows = np.concatenate([
                live[fast_ok & self.features.has_features[live]],
                np.asarray(slow_primary, dtype=np.intp),
            ])
            primary_rows.sort()
            saturated: set[tuple[str, str]] = set()
            flags = None
            if primary_rows.size:
                started = time.perf_counter()
                try:
                    flags = self._classify(primary_rows)
                except Exception as error:
                    # The classifier itself failed: every primary
                    # candidate falls through to the secondary.
                    self.classifier_errors += 1
                    self.last_classifier_error = type(error).__name__
                    obs.inc("fleet.classifier_errors")
                    obs.inc(
                        "fleet.classifier_error"
                        f"{{type={type(error).__name__}}}"
                    )
                    demoted.extend(int(row) for row in primary_rows)
                else:
                    self._record_primary(primary_rows)
                predict_s += time.perf_counter() - started
                if flags is not None and self.lifecycle is not None:
                    started = time.perf_counter()
                    self.lifecycle.observe(
                        t,
                        self.features.features[primary_rows],
                        flags,
                        telemetry.completeness[primary_rows],
                    )
                    shadow_s += time.perf_counter() - started
            if flags is not None:
                member_at = self.index.member_at
                for row, flag in zip(primary_rows, flags):
                    if flag:
                        saturated.add(member_at(int(row)).rollup_key)

            secondary_rows: list[int] = []
            failsafe_rows: list[int] = []
            for row in demoted:
                member = self.index.member_at(row)
                cell = self._cells[member.namespace]
                container = telemetry.container_at(row)
                if cell.secondary is None:
                    failsafe_rows.append(row)
                    if self.failsafe == "scale-up":
                        saturated.add(member.rollup_key)
                    continue
                try:
                    verdict = cell.secondary.instance_saturated(
                        container, cell.simulation
                    )
                except Exception:
                    failsafe_rows.append(row)
                    if self.failsafe == "scale-up":
                        saturated.add(member.rollup_key)
                else:
                    secondary_rows.append(row)
                    if verdict:
                        saturated.add(member.rollup_key)
            self._record_secondary(np.asarray(secondary_rows, dtype=np.intp))
            self._record_failsafe(np.asarray(failsafe_rows, dtype=np.intp))
            self._export_gauges()
            phase = self.phase_seconds
            phase["telemetry"] += telemetry_s
            phase["features"] += features_s
            phase["predict"] += predict_s
            if self.lifecycle is not None:
                phase["shadow"] += shadow_s
            phase["policy"] += (
                time.perf_counter() - tick_started
                - telemetry_s - features_s - predict_s - shadow_s
            )
        return saturated

    def _classify(self, rows: np.ndarray) -> np.ndarray:
        """Per-row saturation flags from one fleet-matrix prediction."""
        with obs.trace("policy.classify"):
            batch = self.features.features[rows]
            classifier = self.model.classifier_
            if hasattr(classifier, "predict_proba"):
                # The fleet feature matrix is already validated float64;
                # skip the per-tick check_array re-validation.
                positive = predict_proba_trusted(classifier, batch)[:, 1]
                flags = positive >= self.model.prediction_threshold
            else:
                flags = np.asarray(classifier.predict(batch)) == 1
        if obs.enabled():
            obs.inc("policy.classified_instances", float(rows.size))
            obs.inc("policy.saturation_verdicts", float(flags.sum()))
        return flags

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self, namespace: str | None = None) -> dict:
        """Pod -> state-name mapping, mirroring ``FallbackPolicy.health``.

        With ``namespace`` the keys are pods of that cell; without, the
        keys are ``(namespace, pod)`` tuples for the whole fleet.  Only
        pods with at least one recorded outcome appear.
        """
        result: dict = {}
        for row in self.index.live_rows():
            if not self._judged[row]:
                continue
            member = self.index.member_at(row)
            state = _STATE_NAMES[int(self._state[row])]
            if namespace is None:
                result[(member.namespace, member.pod)] = state
            elif member.namespace == namespace:
                result[member.pod] = state
        return result

    def _export_gauges(self) -> None:
        if not obs.enabled():
            return
        counts = dict.fromkeys(_STATE_NAMES.values(), 0)
        for row in self.index.live_rows():
            if self._judged[row]:
                counts[_STATE_NAMES[int(self._state[row])]] += 1
        for state, count in counts.items():
            obs.set_gauge(f"fleet.containers_{state}", float(count))
