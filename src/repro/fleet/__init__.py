"""Fleet-scale vectorized serving: struct-of-arrays streaming from
telemetry to policy, sharded over workers.

The per-container path (one ``InstanceTelemetryStream`` +
``PipelineStream`` + policy object per container) stays the reference
implementation; this package carries one ``(n_containers, n_features)``
float64 matrix per tick end to end and must match the reference
container-for-container -- bitwise for filter-based pipeline configs,
within the documented 1e-9 streaming tolerance for PCA.

- :mod:`repro.fleet.membership` -- namespace/pod/container ->
  deployment rollup keys mapped onto matrix rows;
- :mod:`repro.fleet.telemetry` -- :class:`FleetTelemetryStream`, the
  whole fleet's raw metric rows in one array per tick;
- :mod:`repro.fleet.features` -- :class:`FleetPipelineStream` /
  :class:`FleetTemporalState`, batched feature engineering with
  preallocated per-row rolling state;
- :mod:`repro.fleet.policy` -- :class:`FleetPolicy`, one
  ``predict_proba`` per tick plus the vectorized fallback health
  state machine;
- :mod:`repro.fleet.orchestrator` -- :class:`FleetOrchestrator` /
  :class:`FleetShardRunner`, the container axis sharded across
  ``parallel_map`` workers with per-shard checkpoint/resume.
"""

from repro.fleet.features import FleetPipelineStream, FleetTemporalState
from repro.fleet.membership import FleetIndex, FleetMember
from repro.fleet.orchestrator import (
    CELL_BUILDERS,
    FleetCell,
    FleetCellSpec,
    FleetOrchestrator,
    FleetResult,
    FleetShardResult,
    FleetShardRunner,
    build_cell,
    default_fleet_workloads,
    make_fleet_specs,
)
from repro.fleet.policy import FleetPolicy
from repro.fleet.telemetry import FleetTelemetryStream

__all__ = [
    "FleetMember",
    "FleetIndex",
    "FleetTelemetryStream",
    "FleetTemporalState",
    "FleetPipelineStream",
    "FleetPolicy",
    "FleetCellSpec",
    "FleetCell",
    "FleetShardRunner",
    "FleetShardResult",
    "FleetOrchestrator",
    "FleetResult",
    "build_cell",
    "make_fleet_specs",
    "default_fleet_workloads",
    "CELL_BUILDERS",
]
