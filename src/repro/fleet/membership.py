"""Fleet membership: namespace/pod/container -> deployment rollup keys
mapped onto matrix rows.

The fleet path stores the whole fleet's telemetry and feature state in
struct-of-arrays matrices with one row per live container.  Membership
is modeled on the Kubernetes metric schema used by agents such as
nops-k8s-agent: every sample is keyed by ``(namespace, pod,
container)`` and rolled up to a ``deployment`` for scaling decisions.
In the reproduction a *namespace* is one application cell (its own
:class:`~repro.cluster.simulation.ClusterSimulation`), a *pod* is the
simulator's container name (``teastore.auth.3``), the *container* and
*deployment* are the service -- replicas of a service roll up to the
same deployment key, and a service is saturated when any replica flags.

Scale-out/scale-in becomes row insertion/retirement: retiring a pod
frees its row for reuse (smallest free slot first, so row assignment
is deterministic for a deterministic event order), and adding a pod
beyond capacity doubles the matrices via the owner's ``grow`` hooks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

__all__ = ["FleetMember", "FleetIndex"]


@dataclass(frozen=True)
class FleetMember:
    """One live container's rollup identity.

    ``namespace`` is the cell, ``pod`` the unique simulator container
    name, ``container`` the service-level container name and
    ``deployment`` the scaling rollup target (both equal the service
    for single-container pods, as in the teastore application).
    """

    namespace: str
    pod: str
    container: str
    deployment: str

    @property
    def rollup_key(self) -> tuple[str, str]:
        """The ``(namespace, deployment)`` key scaling decisions use."""
        return (self.namespace, self.deployment)


class FleetIndex:
    """Bidirectional ``(namespace, pod)`` <-> matrix-row mapping."""

    def __init__(self):
        self._members: list[FleetMember | None] = []
        self._rows: dict[tuple[str, str], int] = {}
        self._pods_by_namespace: dict[str, set[str]] = {}
        self._free: list[int] = []  # min-heap of retired rows

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._rows

    @property
    def capacity(self) -> int:
        """Highest row index ever assigned, plus one."""
        return len(self._members)

    def add(self, member: FleetMember) -> int:
        """Assign ``member`` the smallest available row and return it."""
        key = (member.namespace, member.pod)
        if key in self._rows:
            raise ValueError(f"Member {key} is already registered.")
        if self._free:
            row = heapq.heappop(self._free)
            self._members[row] = member
        else:
            row = len(self._members)
            self._members.append(member)
        self._rows[key] = row
        self._pods_by_namespace.setdefault(member.namespace, set()).add(
            member.pod
        )
        return row

    def retire(self, namespace: str, pod: str) -> int:
        """Release the member's row for reuse and return it."""
        row = self._rows.pop((namespace, pod))
        member = self._members[row]
        self._members[row] = None
        self._pods_by_namespace[namespace].discard(pod)
        heapq.heappush(self._free, row)
        assert member is not None
        return row

    def row_of(self, namespace: str, pod: str) -> int:
        return self._rows[(namespace, pod)]

    def member_at(self, row: int) -> FleetMember:
        member = self._members[row]
        if member is None:
            raise KeyError(f"Row {row} is not occupied.")
        return member

    def pods_in(self, namespace: str) -> set[str]:
        """Live pods currently registered under ``namespace``."""
        return set(self._pods_by_namespace.get(namespace, ()))

    def live_rows(self) -> list[int]:
        """Occupied rows in ascending order."""
        return sorted(self._rows.values())
