"""Struct-of-arrays telemetry for a whole fleet.

:class:`FleetTelemetryStream` replaces N per-container
:class:`~repro.telemetry.stream.InstanceTelemetryStream` objects with
one ``(n_rows, n_metrics)`` float64 matrix written in place each tick,
plus a per-row completeness vector in place of per-stream flags.  Two
row kinds coexist:

- **fast rows** (plain :class:`~repro.telemetry.agent.TelemetryAgent`):
  synthesis state is held directly as ``_ScopeStream`` objects, and
  rows that share ``(namespace, node, start)`` share one *host* scope
  stream.  This is bitwise-exact: the reference per-container streams
  seed their host RNG with ``(node.name, start)`` only, so containers
  on the same node opened at the same tick draw identical host rows --
  the fleet path synthesizes that row once per group instead of once
  per container.
- **compat rows** (wrapped agents -- ``MetricDropout``, ``ChaosAgent``,
  ``ResilientTelemetry``): the wrapper's own stream object is kept and
  stepped row-wise, so fault injection, retry/LOCF imputation and
  staleness accounting behave identically to the per-container path.

Emission is *rounds-based* to mirror ``_ContainerStream.catch_up``:
each :meth:`advance_round` advances every behind, unfaulted row by
exactly one tick (normally the only round per policy tick); a
:class:`~repro.reliability.telemetry.TelemetryFault` marks the row
faulted for the remainder of the tick, exactly like ``catch_up``
aborting.  Per-row pipeline state is independent, so pushing rounds
through the feature pipeline preserves each row's tick order, which is
all the reference semantics require.
"""

from __future__ import annotations

import numpy as np

from repro.reliability.telemetry import TelemetryFault
from repro.telemetry.agent import TelemetryAgent, _stream_seed
from repro.telemetry.catalog import MetricCatalog
from repro.telemetry.stream import _ScopeStream

__all__ = ["FleetTelemetryStream"]


class _HostGroup:
    """Shared host-scope synthesis for rows with equal (namespace,
    node, start) -- they draw bitwise-identical host sequences."""

    __slots__ = ("agent", "node", "host", "clock", "members")

    def __init__(self, agent, node, start: int):
        self.agent = agent
        self.node = node
        self.host = _ScopeStream(
            agent.catalog,
            agent.catalog.host,
            np.random.default_rng(
                _stream_seed(agent.seed, f"host:{node.name}:{start}")
            ),
            agent.convert_counters,
        )
        self.clock = start
        self.members: set[int] = set()


class _FastRow:
    __slots__ = ("scope", "group_key")

    def __init__(self, scope, group_key):
        self.scope = scope
        self.group_key = group_key


class FleetTelemetryStream:
    """One raw-metric matrix per tick for the whole fleet."""

    def __init__(self, catalog: MetricCatalog, capacity: int = 64,
                 history: int = 16):
        self.catalog = catalog
        self.history = history
        self.n_host = catalog.n_host
        self.n_metrics = catalog.n_metrics
        self.raw = np.zeros((capacity, self.n_metrics))
        self.completeness = np.ones(capacity)
        self._containers: dict[int, object] = {}
        self._fast: dict[int, _FastRow] = {}
        self._compat: dict[int, object] = {}
        self._groups: dict[tuple[str, str, int], _HostGroup] = {}
        #: Rows whose emission faulted during the current tick, mapped
        #: to the fault (cleared by :meth:`begin_tick`).
        self.faulted: dict[int, TelemetryFault] = {}

    @property
    def capacity(self) -> int:
        return self.raw.shape[0]

    def grow(self, capacity: int) -> None:
        if capacity <= self.capacity:
            return
        raw = np.zeros((capacity, self.n_metrics))
        raw[: self.capacity] = self.raw
        completeness = np.ones(capacity)
        completeness[: self.capacity] = self.completeness
        self.raw = raw
        self.completeness = completeness

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_row(self, row: int, namespace: str, agent, container,
                nodes: dict) -> None:
        """Attach synthesis state for ``container`` to matrix ``row``.

        Plain :class:`TelemetryAgent` instances take the grouped fast
        path; any wrapper keeps its own per-row stream object so its
        fault/imputation semantics are preserved bit for bit.
        """
        if row in self._containers:
            raise ValueError(f"Row {row} is already occupied.")
        self._containers[row] = container
        if type(agent) is TelemetryAgent:
            start = container.created_at
            node = nodes[container.node]
            key = (namespace, node.name, start)
            group = self._groups.get(key)
            if group is None:
                group = self._groups[key] = _HostGroup(agent, node, start)
            group.members.add(row)
            scope = _ScopeStream(
                agent.catalog,
                agent.catalog.container,
                np.random.default_rng(
                    _stream_seed(
                        agent.seed, f"container:{container.name}:{start}"
                    )
                ),
                agent.convert_counters,
            )
            self._fast[row] = _FastRow(scope, key)
        else:
            self._compat[row] = agent.open_stream(
                container, nodes, history=self.history
            )
        self.completeness[row] = 1.0

    def retire_row(self, row: int) -> None:
        self._containers.pop(row)
        fast = self._fast.pop(row, None)
        if fast is not None:
            group = self._groups[fast.group_key]
            group.members.discard(row)
            if not group.members:
                del self._groups[fast.group_key]
        else:
            self._compat.pop(row, None)
        self.faulted.pop(row, None)

    # ------------------------------------------------------------------
    # Per-row introspection (used by the fleet policy)
    # ------------------------------------------------------------------
    def container_at(self, row: int):
        return self._containers[row]

    def clock(self, row: int) -> int:
        """Next tick the row will emit."""
        stream = self._compat.get(row)
        if stream is not None:
            return stream.clock
        return self._groups[self._fast[row].group_key].clock

    def row_end(self, row: int) -> int:
        """One past the last recorded simulation tick for the row."""
        container = self._containers[row]
        return container.created_at + len(container.history)

    def staleness(self, row: int) -> int:
        stream = self._compat.get(row)
        if stream is None:
            return 0
        return int(getattr(stream, "staleness", 0))

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def begin_tick(self) -> None:
        """Reset per-tick fault state before the first round."""
        self.faulted.clear()

    def advance_round(self) -> np.ndarray:
        """Advance every behind, unfaulted row by exactly one tick.

        Writes the emitted rows into :attr:`raw` / :attr:`completeness`
        and returns their indices (ascending).  An empty result means
        the whole fleet is caught up for this tick.
        """
        emitted: list[int] = []
        host_state_cache: dict[tuple[str, str, int], np.ndarray] = {}
        for key in sorted(self._groups):
            group = self._groups[key]
            rows = sorted(group.members)
            anchor = self._containers[rows[0]]
            end = anchor.created_at + len(anchor.history)
            if group.clock >= end:
                continue
            t = group.clock
            if anchor.tick_at(t) is None:
                raise ValueError(
                    f"Container {anchor.name} has no recorded tick {t}; "
                    "advance the simulation before emitting."
                )
            state_key = (key[0], key[1], t)
            host_state = host_state_cache.get(state_key)
            if host_state is None:
                host_state = group.agent.host_state(group.node, t, t + 1)[0]
                host_state_cache[state_key] = host_state
            host_row = group.host.step(host_state)
            for row in rows:
                container = self._containers[row]
                container_state = group.agent.container_state(
                    container, group.node, t, t + 1
                )[0]
                self.raw[row, : self.n_host] = host_row
                self.raw[row, self.n_host:] = self._fast[row].scope.step(
                    container_state
                )
                self.completeness[row] = 1.0
                emitted.append(row)
            group.clock = t + 1
        for row in sorted(self._compat):
            if row in self.faulted:
                continue
            stream = self._compat[row]
            container = self._containers[row]
            if stream.clock >= container.created_at + len(container.history):
                continue
            try:
                values = stream.emit()
            except TelemetryFault as fault:
                self.faulted[row] = fault
                continue
            self.raw[row] = values
            self.completeness[row] = stream.tail.last_completeness()
            emitted.append(row)
        emitted.sort()
        return np.asarray(emitted, dtype=np.intp)
