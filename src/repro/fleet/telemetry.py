"""Struct-of-arrays telemetry for a whole fleet.

:class:`FleetTelemetryStream` replaces N per-container
:class:`~repro.telemetry.stream.InstanceTelemetryStream` objects with
one ``(n_rows, n_metrics)`` float64 matrix written in place each tick,
plus a per-row completeness vector in place of per-stream flags.  Two
row kinds coexist:

- **fast rows** (plain :class:`~repro.telemetry.agent.TelemetryAgent`
  sharing this stream's catalog): synthesis state lives in
  struct-of-arrays buffers -- per-row RNG streams, counter
  accumulators and previous-cumulative rows aligned with the matrix
  row axis, and per *host group* (rows sharing ``(namespace, node,
  start)``) the shared host stream state.  Every tick a single batched
  kernel gathers each group's container tick fields once, computes all
  host states with segment-ordered vector accumulation, synthesizes
  every stream's metrics through
  :meth:`~repro.telemetry.catalog.MetricCatalog.synthesize_rows`, and
  converts counters to rates across the whole row axis.  This is
  bitwise-exact against the per-container reference streams: the state
  math replicates the scalar arithmetic op for op
  (:mod:`repro.telemetry.synthesis`), each stream's RNG draws happen
  in its own generator in the exact per-tick order, and the
  counter/rate recurrences are elementwise per stream.
- **compat rows** (wrapped agents -- ``MetricDropout``, ``ChaosAgent``,
  ``ResilientTelemetry`` -- or agents with a foreign catalog): the
  wrapper's own stream object is kept and stepped row-wise, so fault
  injection, retry/LOCF imputation and staleness accounting behave
  identically to the per-container path.

Emission is *rounds-based* to mirror ``_ContainerStream.catch_up``:
each :meth:`advance_round` advances every behind, unfaulted row by
exactly one tick (normally the only round per policy tick); a
:class:`~repro.reliability.telemetry.TelemetryFault` marks the row
faulted for the remainder of the tick, exactly like ``catch_up``
aborting.  Per-row pipeline state is independent, so pushing rounds
through the feature pipeline preserves each row's tick order, which is
all the reference semantics require.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np
from numpy.random import PCG64, Generator

from repro import obs
from repro.reliability.telemetry import TelemetryFault
from repro.telemetry import synthesis
from repro.telemetry.agent import TelemetryAgent, _stream_seed
from repro.telemetry.catalog import MetricCatalog

__all__ = ["FleetTelemetryStream"]


class FleetTelemetryStream:
    """One raw-metric matrix per tick for the whole fleet."""

    def __init__(self, catalog: MetricCatalog, capacity: int = 64,
                 history: int = 16):
        self.catalog = catalog
        self.history = history
        self.n_host = catalog.n_host
        self.n_metrics = catalog.n_metrics
        self.raw = np.zeros((capacity, self.n_metrics))
        self.completeness = np.ones(capacity)
        self._containers: dict[int, object] = {}
        self._compat: dict[int, object] = {}
        #: Rows whose emission faulted during the current tick, mapped
        #: to the fault (cleared by :meth:`begin_tick`).
        self.faulted: dict[int, TelemetryFault] = {}
        #: Rows on the batched fast path (vs compat stream objects).
        self.fast_mask = np.zeros(capacity, dtype=bool)
        #: Rows emitted during the current tick (any round).
        self.emitted_mask = np.zeros(capacity, dtype=bool)
        #: Fast rows whose latest emission came from a *recorded*
        #: simulation tick (vs the all-zero placeholder for a member
        #: whose own history does not cover the group clock).  Lets the
        #: policy's vectorized partition prove ``row_end > created_at``
        #: without touching container objects.
        self.recorded_mask = np.zeros(capacity, dtype=bool)

        # --- fast-path row axis (aligned with ``raw``) -----------------
        n_ctr_c = catalog.spec_arrays(catalog.container).counter_idx.size
        self._n_ctr_container = n_ctr_c
        self._row_group = np.full(capacity, -1, dtype=np.int64)
        self._row_rng: dict[int, np.random.Generator] = {}
        self._row_accum = np.zeros((capacity, n_ctr_c))
        self._row_prev = np.zeros((capacity, n_ctr_c))
        self._row_has_prev = np.zeros(capacity, dtype=bool)
        self._row_convert = np.zeros(capacity, dtype=bool)
        # Effective cpu allocation (quota or node cores); quotas are
        # immutable after construction, so caching is exact.
        self._row_alloc = np.zeros(capacity)

        # --- fast-path host-group axis (slot-indexed) ------------------
        n_ctr_h = catalog.spec_arrays(catalog.host).counter_idx.size
        self._n_ctr_host = n_ctr_h
        self._group_slots: dict[tuple[str, str, int], int] = {}
        self._grp_key: list[tuple | None] = []
        self._grp_node: list[object | None] = []
        self._grp_rng: list[np.random.Generator | None] = []
        self._grp_members: list[list[int]] = []
        self._grp_containers: list[list] = []
        self._grp_clock: list[int] = []
        self._grp_convert: list[bool] = []
        self._grp_accum = np.zeros((0, n_ctr_h))
        self._grp_prev = np.zeros((0, n_ctr_h))
        self._grp_has_prev = np.zeros(0, dtype=bool)
        self._grp_free: list[int] = []
        # Sorted (key, slot) scan order, rebuilt lazily after group
        # creation/retirement (key order fixes the cross-group RNG-free
        # iteration order deterministically).
        self._scan: list[tuple] | None = None

        # Reused per-tick scratch buffers (reallocated only when the
        # active batch size changes).
        self._scratch: dict[str, np.ndarray] = {}

    @property
    def capacity(self) -> int:
        return self.raw.shape[0]

    def grow(self, capacity: int) -> None:
        if capacity <= self.capacity:
            return
        old = self.capacity
        for name, fill, dtype in (
            ("completeness", 1.0, np.float64),
            ("fast_mask", False, bool),
            ("emitted_mask", False, bool),
            ("recorded_mask", False, bool),
            ("_row_has_prev", False, bool),
            ("_row_convert", False, bool),
        ):
            fresh = np.full(capacity, fill, dtype=dtype)
            fresh[:old] = getattr(self, name)
            setattr(self, name, fresh)
        fresh_alloc = np.zeros(capacity)
        fresh_alloc[:old] = self._row_alloc
        self._row_alloc = fresh_alloc
        for name, width in (
            ("raw", self.n_metrics),
            ("_row_accum", self._n_ctr_container),
            ("_row_prev", self._n_ctr_container),
        ):
            fresh = np.zeros((capacity, width))
            fresh[:old] = getattr(self, name)
            setattr(self, name, fresh)
        row_group = np.full(capacity, -1, dtype=np.int64)
        row_group[:old] = self._row_group
        self._row_group = row_group

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_row(self, row: int, namespace: str, agent, container,
                nodes: dict) -> None:
        """Attach synthesis state for ``container`` to matrix ``row``.

        Plain :class:`TelemetryAgent` instances sharing this stream's
        catalog take the grouped fast path; anything else keeps its own
        per-row stream object so its fault/imputation semantics are
        preserved bit for bit.
        """
        if row in self._containers:
            raise ValueError(f"Row {row} is already occupied.")
        self._containers[row] = container
        if type(agent) is TelemetryAgent and agent.catalog is self.catalog:
            start = container.created_at
            node = nodes[container.node]
            key = (namespace, node.name, start)
            slot = self._group_slots.get(key)
            if slot is None:
                slot = self._new_group(key, agent, node, start)
            members = self._grp_members[slot]
            position = bisect_left(members, row)
            members.insert(position, row)
            self._grp_containers[slot].insert(position, container)
            self._row_group[row] = slot
            # Generator(PCG64(seed)) is the same construction
            # default_rng(seed) performs, minus dispatch overhead; the
            # bit streams are identical.
            self._row_rng[row] = Generator(PCG64(
                _stream_seed(agent.seed, f"container:{container.name}:{start}")
            ))
            self._row_accum[row] = 0.0
            self._row_prev[row] = 0.0
            self._row_has_prev[row] = False
            self._row_convert[row] = agent.convert_counters
            quota = container.cpu_cgroup.quota_cores
            self._row_alloc[row] = (
                quota if quota is not None else float(node.spec.cores)
            )
            self.fast_mask[row] = True
        else:
            self._compat[row] = agent.open_stream(
                container, nodes, history=self.history
            )
        self.completeness[row] = 1.0
        self.emitted_mask[row] = False

    def _new_group(self, key, agent, node, start: int) -> int:
        rng = Generator(PCG64(
            _stream_seed(agent.seed, f"host:{node.name}:{start}")
        ))
        if self._grp_free:
            slot = self._grp_free.pop()
            self._grp_key[slot] = key
            self._grp_node[slot] = node
            self._grp_rng[slot] = rng
            self._grp_members[slot] = []
            self._grp_containers[slot] = []
            self._grp_clock[slot] = start
            self._grp_convert[slot] = agent.convert_counters
        else:
            slot = len(self._grp_key)
            self._grp_key.append(key)
            self._grp_node.append(node)
            self._grp_rng.append(rng)
            self._grp_members.append([])
            self._grp_containers.append([])
            self._grp_clock.append(start)
            self._grp_convert.append(agent.convert_counters)
            if slot >= self._grp_accum.shape[0]:
                cap = max(16, 2 * self._grp_accum.shape[0])
                for name in ("_grp_accum", "_grp_prev"):
                    fresh = np.zeros((cap, self._n_ctr_host))
                    fresh[: getattr(self, name).shape[0]] = getattr(self, name)
                    setattr(self, name, fresh)
                has_prev = np.zeros(cap, dtype=bool)
                has_prev[: self._grp_has_prev.shape[0]] = self._grp_has_prev
                self._grp_has_prev = has_prev
        self._grp_accum[slot] = 0.0
        self._grp_prev[slot] = 0.0
        self._grp_has_prev[slot] = False
        self._group_slots[key] = slot
        self._scan = None
        return slot

    def retire_row(self, row: int) -> None:
        self._containers.pop(row)
        slot = int(self._row_group[row])
        if slot >= 0:
            self._row_group[row] = -1
            self._row_rng.pop(row, None)
            self.fast_mask[row] = False
            members = self._grp_members[slot]
            position = members.index(row)
            members.pop(position)
            self._grp_containers[slot].pop(position)
            if not members:
                del self._group_slots[self._grp_key[slot]]
                self._grp_key[slot] = None
                self._grp_node[slot] = None
                self._grp_rng[slot] = None
                self._grp_free.append(slot)
                self._scan = None
        else:
            self._compat.pop(row, None)
        self.faulted.pop(row, None)
        self.emitted_mask[row] = False
        self.recorded_mask[row] = False

    # ------------------------------------------------------------------
    # Per-row introspection (used by the fleet policy)
    # ------------------------------------------------------------------
    def container_at(self, row: int):
        return self._containers[row]

    def clock(self, row: int) -> int:
        """Next tick the row will emit."""
        stream = self._compat.get(row)
        if stream is not None:
            return stream.clock
        return self._grp_clock[int(self._row_group[row])]

    def row_end(self, row: int) -> int:
        """One past the last recorded simulation tick for the row."""
        container = self._containers[row]
        return container.created_at + len(container.history)

    def staleness(self, row: int) -> int:
        stream = self._compat.get(row)
        if stream is None:
            return 0
        return int(getattr(stream, "staleness", 0))

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def begin_tick(self) -> None:
        """Reset per-tick fault/emission state before the first round."""
        self.faulted.clear()
        self.emitted_mask[:] = False
        self.recorded_mask[:] = False

    def advance_round(self) -> np.ndarray:
        """Advance every behind, unfaulted row by exactly one tick.

        Writes the emitted rows into :attr:`raw` / :attr:`completeness`
        and returns their indices (ascending).  An empty result means
        the whole fleet is caught up for this tick.
        """
        emitted = self._advance_fast()
        for row in sorted(self._compat):
            if row in self.faulted:
                continue
            stream = self._compat[row]
            container = self._containers[row]
            if stream.clock >= container.created_at + len(container.history):
                continue
            try:
                values = stream.emit()
            except TelemetryFault as fault:
                self.faulted[row] = fault
                continue
            self.raw[row] = values
            self.completeness[row] = stream.tail.last_completeness()
            emitted.append(row)
        emitted.sort()
        rows = np.asarray(emitted, dtype=np.intp)
        self.emitted_mask[rows] = True
        return rows

    def _advance_fast(self) -> list[int]:
        """One batched synthesis pass over every behind fast group."""
        scan = self._scan
        if scan is None:
            scan = self._scan = sorted(self._group_slots.items())
        active: list[int] = []
        clocks = self._grp_clock
        grp_containers = self._grp_containers
        for _key, slot in scan:
            anchor = grp_containers[slot][0]
            t = clocks[slot]
            if t >= anchor.created_at + len(anchor.history):
                continue
            if t < anchor.created_at:
                raise ValueError(
                    f"Container {anchor.name} has no recorded tick {t}; "
                    "advance the simulation before emitting."
                )
            active.append(slot)
        if not active:
            return []
        with obs.trace("fleet.synthesize"):
            rows = self._synthesize_groups(active)
        obs.inc("telemetry.rows_emitted", float(len(rows)))
        return rows

    def _synthesize_groups(self, active: list[int]) -> list[int]:
        catalog = self.catalog

        # --- gather: one pass over each unique (namespace, node, tick) -
        # Rows of different groups can share a node's host *state* (not
        # its host RNG stream) when their namespaces and clocks match;
        # the reference path deduplicates identically.
        entries: dict[tuple[str, str, int], int] = {}
        entry_nodes: list[object] = []
        entry_pairs: list[list[int]] = []
        pair_fields: list[tuple] = []
        pair_map: dict[tuple[int, int], int] = {}
        entry_of_group: list[int] = []
        for slot in active:
            key = self._grp_key[slot]
            t = self._grp_clock[slot]
            state_key = (key[0], key[1], t)
            ei = entries.get(state_key)
            if ei is None:
                ei = entries[state_key] = len(entry_nodes)
                node = self._grp_node[slot]
                entry_nodes.append(node)
                pairs: list[int] = []
                for container in node.containers:
                    f = synthesis.tick_fields(container, t)
                    if f is None:
                        continue
                    index = len(pair_fields)
                    pair_fields.append(f)
                    pair_map[(ei, id(container))] = index
                    pairs.append(index)
                entry_pairs.append(pairs)
            entry_of_group.append(ei)

        # --- row collection (group-member order; globally re-sorted by
        # the caller) ---------------------------------------------------
        row_list: list[int] = []
        row_pair: list[int] = []
        row_group: list[int] = []
        rows_append = row_list.append
        pairs_append = row_pair.append
        groups_append = row_group.append
        pair_get = pair_map.get
        clocks = self._grp_clock
        for gi, slot in enumerate(active):
            t = clocks[slot]
            ei = entry_of_group[gi]
            for row, container in zip(
                self._grp_members[slot], self._grp_containers[slot]
            ):
                index = pair_get((ei, id(container)))
                if index is None:
                    f = synthesis.tick_fields(container, t)
                    if f is not None:
                        index = len(pair_fields)
                        pair_fields.append(f)
                    else:
                        index = -1  # unrecorded tick -> zero sentinel row
                rows_append(row)
                pairs_append(index)
                groups_append(gi)
            clocks[slot] = t + 1

        pair_fields.append(synthesis.ZERO_FIELDS)  # index -1
        fields = np.array(pair_fields, dtype=np.float64)

        # --- host states: baseline + ordered segment accumulation ------
        n_entries = len(entry_nodes)
        cores_e = np.array([float(n.spec.cores) for n in entry_nodes])
        memory_e = np.array([float(n.spec.memory_bytes) for n in entry_nodes])
        diskbw_e = np.array([float(n.spec.disk_bandwidth) for n in entry_nodes])
        netbw_e = np.array(
            [float(n.spec.network_bandwidth) for n in entry_nodes]
        )
        drb_e = np.array(
            [float(n.spec.disk_random_bandwidth) for n in entry_nodes]
        )
        membw_e = np.array(
            [float(n.spec.memory_bandwidth) for n in entry_nodes]
        )
        host_states = synthesis.host_baseline(n_entries, memory_e)
        max_members = max((len(p) for p in entry_pairs), default=0)
        for position in range(max_members):
            sel = [e for e in range(n_entries) if len(entry_pairs[e]) > position]
            pairs_k = [entry_pairs[e][position] for e in sel]
            contrib = synthesis.host_additive_contributions(
                fields[pairs_k], cores_e[sel], memory_e[sel],
                diskbw_e[sel], netbw_e[sel], membw_e[sel],
            )
            host_states[sel] += contrib
        synthesis.host_derived(host_states, cores_e, memory_e, drb_e)

        # --- host metric rows: one per active group --------------------
        entry_of_group_arr = np.asarray(entry_of_group, dtype=np.intp)
        host_rngs = [self._grp_rng[slot] for slot in active]
        host_values = catalog.synthesize_rows(
            catalog.host,
            host_states[entry_of_group_arr],
            host_rngs,
            self._tick_scratch("host_noise", len(active),
                               catalog.spec_arrays(catalog.host).noisy_idx.size),
        )
        slots_arr = np.asarray(active, dtype=np.intp)
        conv_groups = np.array(
            [self._grp_convert[slot] for slot in active], dtype=bool
        )
        self._counters_and_rates(
            host_values, catalog.spec_arrays(catalog.host).counter_idx,
            slots_arr, conv_groups,
            self._grp_accum, self._grp_prev, self._grp_has_prev,
        )

        # --- container metric rows -------------------------------------
        rows_arr = np.asarray(row_list, dtype=np.intp)
        row_group_arr = np.asarray(row_group, dtype=np.intp)
        row_pair_arr = np.asarray(row_pair, dtype=np.intp)
        container_states = synthesis.container_state_from_fields(
            fields[row_pair_arr],
            self._row_alloc[rows_arr],
            cores_e[entry_of_group_arr[row_group_arr]],
        )
        row_rngs = [self._row_rng[row] for row in row_list]
        container_values = catalog.synthesize_rows(
            catalog.container,
            container_states,
            row_rngs,
            self._tick_scratch(
                "container_noise", len(row_list),
                catalog.spec_arrays(catalog.container).noisy_idx.size,
            ),
        )
        self._counters_and_rates(
            container_values,
            catalog.spec_arrays(catalog.container).counter_idx,
            rows_arr, self._row_convert[rows_arr],
            self._row_accum, self._row_prev, self._row_has_prev,
        )

        # --- scatter into the fleet matrix -----------------------------
        # Host rows broadcast per group: each group's single host vector
        # lands in all of its member rows without first materializing
        # the (n_rows, n_host) expansion the flat scatter would need.
        raw_host = self.raw[:, : self.n_host]
        grp_members = self._grp_members
        for gi, slot in enumerate(active):
            raw_host[grp_members[slot]] = host_values[gi]
        self.raw[rows_arr, self.n_host:] = container_values
        self.completeness[rows_arr] = 1.0
        self.recorded_mask[rows_arr] = row_pair_arr >= 0
        return row_list

    def _tick_scratch(self, name: str, n: int, k: int) -> np.ndarray:
        buffer = self._scratch.get(name)
        if buffer is None or buffer.shape != (n, k):
            buffer = self._scratch[name] = np.empty((n, k))
        return buffer

    @staticmethod
    def _counters_and_rates(values, counter_idx, state_rows, convert,
                            accum, prev, has_prev) -> None:
        """Counter accumulation + rate conversion across the row axis.

        Replicates ``synthesize_step``'s running accumulator and
        ``_ScopeStream.step``'s rate recurrence per stream: row *i*'s
        accumulator/prev live in ``accum[state_rows[i]]`` /
        ``prev[state_rows[i]]``.  ``convert`` masks rows whose agent
        converts counters to rates; unconverted rows keep the raw
        cumulative values, exactly like a ``convert_counters=False``
        reference stream.
        """
        if counter_idx.size == 0:
            return
        increments = np.maximum(values[:, counter_idx], 0.0)
        cumulative = accum[state_rows] + increments
        accum[state_rows] = cumulative
        values[:, counter_idx] = cumulative
        if not convert.any():
            return
        conv_rows = np.flatnonzero(convert)
        state_conv = state_rows[conv_rows]
        cum_conv = cumulative[conv_rows]
        deltas = cum_conv - prev[state_conv]
        np.maximum(deltas, 0.0, out=deltas)
        first = ~has_prev[state_conv]
        if first.any():
            deltas[first] = 0.0
        values[conv_rows[:, None], counter_idx] = deltas
        prev[state_conv] = cum_conv
        has_prev[state_conv] = True
