"""The fleet closed loop: many application cells, sharded over workers.

A *fleet* is a set of independent application cells -- each one a full
:class:`~repro.cluster.simulation.ClusterSimulation` with its deployed
application, telemetry agent, scaling rules and workload column.  A
*shard* is a contiguous block of cells driven by one
:class:`FleetShardRunner`: per tick it steps every cell's simulation,
asks its shard-wide :class:`~repro.fleet.policy.FleetPolicy` for
saturated ``(namespace, deployment)`` keys (one matrix walk, one
``predict_proba``), and lets each cell's autoscaler act.

:class:`FleetOrchestrator` fans the shards out over
:func:`~repro.parallel.pool.parallel_map` workers.  Cells are
data-independent and seeded by stable cell keys, so results are
deterministic at every ``n_jobs`` (PR 2's contract); the workload
matrix travels once through shared memory.  Each shard checkpoints its
whole runner (``REPRO-CKPT`` format) every ``checkpoint_interval``
ticks; with ``on_crash="serial"`` a shard whose worker dies mid-run is
resumed *from its checkpoint* in the parent and the fleet result is
still complete and bitwise deterministic.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.fleet.policy import FleetPolicy
from repro.orchestrator.loop import OrchestratorResult
from repro.orchestrator.slo import SloPolicy, slo_violations
from repro.parallel.jobs import in_worker, resolve_n_jobs
from repro.parallel.pool import parallel_map
from repro.telemetry.agent import TelemetryAgent, _stream_seed

__all__ = [
    "FleetCellSpec",
    "FleetCell",
    "FleetShardRunner",
    "FleetShardResult",
    "FleetOrchestrator",
    "FleetResult",
    "build_cell",
    "make_fleet_specs",
    "default_fleet_workloads",
    "CELL_BUILDERS",
]


@dataclass(frozen=True)
class FleetCellSpec:
    """Deterministic recipe for one cell; picklable and tiny."""

    namespace: str
    seed: int = 0
    kind: str = "teastore"


@dataclass
class FleetCell:
    """One built cell: simulation, telemetry, scaling mechanics."""

    namespace: str
    simulation: object
    application: str
    agent: object
    autoscaler: object
    secondary: object = None


def _teastore_rules():
    from repro.cluster.simulation import Placement
    from repro.orchestrator.autoscaler import ScalingRules

    gib4 = 4 * 2**30
    return ScalingRules(
        placements={
            "auth": Placement(node="M2", cpu_limit=2.0, memory_limit=gib4),
            "recommender": Placement(
                node="M2", cpu_limit=1.0, memory_limit=gib4
            ),
            "webui": Placement(node="M2", cpu_limit=1.0, memory_limit=gib4),
        },
        replica_lifespan=120,
        scale_groups=(("auth", "recommender"),),
    )


def _teastore_simulation(spec: FleetCellSpec):
    from repro.apps.teastore import teastore_application
    from repro.cluster.simulation import ClusterSimulation
    from repro.datasets.experiments import evaluation_nodes, teastore_placements

    simulation = ClusterSimulation(evaluation_nodes(), seed=spec.seed)
    simulation.deploy(teastore_application(), teastore_placements())
    return simulation


def _build_teastore_cell(spec: FleetCellSpec) -> FleetCell:
    """Plain cell: exact-type agent, grouped fast-path telemetry."""
    from repro.orchestrator.autoscaler import Autoscaler

    simulation = _teastore_simulation(spec)
    return FleetCell(
        namespace=spec.namespace,
        simulation=simulation,
        application="teastore",
        agent=TelemetryAgent(seed=spec.seed),
        autoscaler=Autoscaler(
            simulation=simulation, application="teastore",
            rules=_teastore_rules(),
        ),
    )


def _build_dropout_cell(spec: FleetCellSpec) -> FleetCell:
    """Lossy-scrape cell: ``MetricDropout`` over the plain agent."""
    from repro.cluster.faults import MetricDropout
    from repro.orchestrator.autoscaler import Autoscaler

    simulation = _teastore_simulation(spec)
    agent = MetricDropout(
        TelemetryAgent(seed=spec.seed), probability=0.1, seed=spec.seed + 1
    )
    return FleetCell(
        namespace=spec.namespace,
        simulation=simulation,
        application="teastore",
        agent=agent,
        autoscaler=Autoscaler(
            simulation=simulation, application="teastore",
            rules=_teastore_rules(),
        ),
    )


def _build_chaos_cell(spec: FleetCellSpec) -> FleetCell:
    """Full chaos stack with a threshold secondary, mirroring the
    reliability tests' fallback configuration."""
    from repro.cluster.faults import MetricDropout
    from repro.core.thresholds import ThresholdBaseline
    from repro.orchestrator.autoscaler import Autoscaler
    from repro.orchestrator.policies import ThresholdPolicy
    from repro.reliability.chaos import ChaosAgent, ChaosConfig, TelemetryBlackout
    from repro.reliability.telemetry import ResilientTelemetry

    simulation = _teastore_simulation(spec)
    config = ChaosConfig(
        dropout_probability=0.1,
        hard_failure_probability=0.02,
        transient_failure_probability=0.03,
        nan_probability=0.02,
        state_failure_probability=0.0,
        blackouts=(TelemetryBlackout(20, 28, scope="stream"),),
        node_faults=(),
        staleness_budget=3,
    )
    chaotic = ChaosAgent(
        MetricDropout(
            TelemetryAgent(seed=spec.seed), probability=0.1,
            seed=spec.seed + 1,
        ),
        config,
    )
    resilient = ResilientTelemetry(chaotic, staleness_budget=3)
    secondary = ThresholdPolicy(
        ThresholdBaseline(
            kind="cpu-or-mem", cpu_threshold=80.0, mem_threshold=80.0
        ),
        chaotic,
    )
    return FleetCell(
        namespace=spec.namespace,
        simulation=simulation,
        application="teastore",
        agent=resilient,
        autoscaler=Autoscaler(
            simulation=simulation, application="teastore",
            rules=_teastore_rules(),
        ),
        secondary=secondary,
    )


CELL_BUILDERS = {
    "teastore": _build_teastore_cell,
    "teastore-dropout": _build_dropout_cell,
    "teastore-chaos": _build_chaos_cell,
}


def build_cell(spec: FleetCellSpec) -> FleetCell:
    try:
        builder = CELL_BUILDERS[spec.kind]
    except KeyError:
        raise ValueError(
            f"Unknown cell kind {spec.kind!r}; "
            f"known: {sorted(CELL_BUILDERS)}."
        ) from None
    return builder(spec)


def make_fleet_specs(
    n_cells: int, base_seed: int = 0, kind: str = "teastore",
    prefix: str = "cell",
) -> list[FleetCellSpec]:
    """Specs with stable per-cell seeds derived from the cell key."""
    return [
        FleetCellSpec(
            namespace=f"{prefix}-{index:04d}",
            seed=_stream_seed(base_seed, f"fleet-cell:{prefix}-{index:04d}")
            % 2**31,
            kind=kind,
        )
        for index in range(n_cells)
    ]


def default_fleet_workloads(
    n_cells: int, duration: int, seed: int = 0,
    low: float = 10.0, high: float = 260.0,
) -> np.ndarray:
    """A ``(n_cells, duration)`` arrival matrix: per-cell scaled ramps."""
    from repro.workloads.patterns import linear_ramp

    base = linear_ramp(duration, low, high)
    rng = np.random.default_rng(_stream_seed(seed, "fleet-workloads"))
    scales = rng.uniform(0.7, 1.3, n_cells)
    return np.ascontiguousarray(scales[:, None] * base[None, :])


# ---------------------------------------------------------------------------
# Shard runner
# ---------------------------------------------------------------------------
@dataclass
class FleetShardResult:
    shard_index: int
    decisions: list  # per tick: sorted tuple of (namespace, deployment)
    cells: dict[str, OrchestratorResult]
    health: dict
    counters: dict[str, int]
    #: Tick the shard was resumed from after a worker loss (None when
    #: the shard ran start-to-finish in one process).
    resumed_from_tick: int | None = None
    #: Cumulative wall-clock seconds per serving phase (simulate /
    #: telemetry / features / predict / policy) for this shard.
    phase_seconds: dict = field(default_factory=dict)


class FleetShardRunner:
    """Closed loop over one shard's cells with a shared fleet policy.

    Exposes ``application`` / ``policy`` / ``_t`` so
    :func:`repro.reliability.checkpoint.save_checkpoint` can snapshot
    it exactly like a per-container :class:`Orchestrator`.
    """

    def __init__(self, shard_index: int, specs, model, *,
                 policy_options: dict | None = None,
                 slo: SloPolicy | None = None):
        self.shard_index = shard_index
        self.application = f"fleet-shard-{shard_index}"
        self.specs = list(specs)
        self.cells = [build_cell(spec) for spec in self.specs]
        self.policy = FleetPolicy(model, **dict(policy_options or {}))
        for cell in self.cells:
            self.policy.add_cell(
                cell.namespace, cell.simulation, cell.application,
                cell.agent, secondary=cell.secondary,
            )
        self.slo = slo or SloPolicy()
        self.checkpoints_saved = 0
        self.resumed_from_tick: int | None = None

    def start(self) -> None:
        self._baselines = [
            sum(cell.simulation.replica_counts(cell.application).values())
            for cell in self.cells
        ]
        self._extra: list[list[int]] = [[] for _ in self.cells]
        self._t = 0
        self.decisions: list[tuple] = []

    def tick(self, rates) -> None:
        """One fleet second: step all cells, decide once, scale each."""
        started = time.perf_counter()
        for cell, rate in zip(self.cells, rates):
            cell.simulation.step({cell.application: float(rate)})
        self.policy.phase_seconds["simulate"] += (
            time.perf_counter() - started
        )
        saturated = self.policy.saturated_services(self._t)
        by_namespace: dict[str, set] = {}
        for namespace, service in saturated:
            by_namespace.setdefault(namespace, set()).add(service)
        empty: set = set()
        for index, cell in enumerate(self.cells):
            cell_saturated = by_namespace.get(cell.namespace, empty)
            cell.autoscaler.act(cell_saturated, self._t)
            self._extra[index].append(cell.autoscaler.extra_replicas)
        self.decisions.append(tuple(sorted(saturated)))
        lifecycle = self.policy.lifecycle
        if lifecycle is not None:
            violated = False
            for cell in self.cells:
                kpis = cell.simulation._kpis[cell.application]
                if kpis["response_time"] and slo_violations(
                    np.asarray(kpis["response_time"][-1:]),
                    np.asarray(kpis["dropped"][-1:]),
                    np.asarray(kpis["offered"][-1:]),
                    self.slo,
                ).any():
                    violated = True
                    break
            lifecycle.outcome(self._t, violated)
            lifecycle.step(self._t)
        self._t += 1

    def finish(self) -> FleetShardResult:
        duration = self._t
        cells: dict[str, OrchestratorResult] = {}
        for index, cell in enumerate(self.cells):
            kpis = cell.simulation._kpis[cell.application]
            response_time = np.asarray(kpis["response_time"][-duration:])
            offered = np.asarray(kpis["offered"][-duration:])
            dropped = np.asarray(kpis["dropped"][-duration:])
            throughput = np.asarray(kpis["throughput"][-duration:])
            cells[cell.namespace] = OrchestratorResult(
                policy_name=self.policy.name,
                duration=duration,
                baseline_containers=self._baselines[index],
                extra_replicas=np.asarray(self._extra[index], dtype=np.float64),
                violations=slo_violations(
                    response_time, dropped, offered, self.slo
                ),
                response_time=response_time,
                throughput=throughput,
                offered=offered,
                dropped=dropped,
                total_scale_outs=cell.autoscaler.total_scale_outs,
            )
        return FleetShardResult(
            shard_index=self.shard_index,
            decisions=list(self.decisions),
            cells=cells,
            health=self.policy.health(),
            counters={
                "demotions": self.policy.demotions,
                "recoveries": self.policy.recoveries,
                "failsafe_entries": self.policy.failsafe_entries,
                "failsafe_ticks": self.policy.failsafe_ticks,
                "classifier_errors": self.policy.classifier_errors,
            },
            resumed_from_tick=self.resumed_from_tick,
            phase_seconds=dict(self.policy.phase_seconds),
        )


def _run_shard(item: dict, arrays: dict) -> FleetShardResult:
    """Worker entry point: run (or resume) one shard to the end.

    Picklable by name for :func:`parallel_map`.  ``die_at_tick`` is a
    test/bench knob: once at least one checkpoint exists, a *worker*
    process exits hard at that tick to exercise the crash-rescue path;
    the parent-side rescue (not ``in_worker``) resumes from the
    checkpoint and completes the shard.
    """
    workloads = arrays["fleet_workloads"]
    lo, hi = item["cell_rows"]
    ticks = int(item["ticks"])
    path = item.get("checkpoint_path")
    interval = int(item.get("checkpoint_interval") or 0)
    die_at = item.get("die_at_tick")

    runner = None
    if path and os.path.exists(path):
        from repro.reliability.checkpoint import CheckpointError, load_checkpoint

        try:
            runner = load_checkpoint(path)
            runner.resumed_from_tick = runner._t
        except CheckpointError:
            runner = None
    if runner is None:
        runner = FleetShardRunner(
            item["shard"], item["specs"], item["model"],
            policy_options=item.get("policy_options"),
        )
        runner.start()

    while runner._t < ticks:
        if (
            die_at is not None
            and runner._t >= int(die_at)
            and runner.checkpoints_saved > 0
            and in_worker()
        ):
            os._exit(23)
        runner.tick(workloads[lo:hi, runner._t])
        if path and interval and runner._t % interval == 0:
            from repro.reliability.checkpoint import save_checkpoint

            runner.checkpoints_saved += 1
            save_checkpoint(runner, path)
    return runner.finish()


# ---------------------------------------------------------------------------
# Fleet orchestrator
# ---------------------------------------------------------------------------
@dataclass
class FleetResult:
    """Merged outcome of all shards, in shard order."""

    decisions: list  # per tick: sorted tuple of (namespace, deployment)
    cells: dict[str, OrchestratorResult]
    health: dict
    counters: dict[str, int]
    n_shards: int
    shard_results: list = field(repr=False, default_factory=list)

    @property
    def total_scale_outs(self) -> int:
        return sum(result.total_scale_outs for result in self.cells.values())


class FleetOrchestrator:
    """Shards the container axis of a fleet across pool workers."""

    def __init__(
        self,
        specs,
        model,
        *,
        n_shards: int | None = None,
        n_jobs: int | None = None,
        checkpoint_dir=None,
        checkpoint_interval: int = 25,
        policy_options: dict | None = None,
        die_at_tick: dict | None = None,
    ):
        self.specs = list(specs)
        if not self.specs:
            raise ValueError("A fleet needs at least one cell spec.")
        namespaces = [spec.namespace for spec in self.specs]
        if len(set(namespaces)) != len(namespaces):
            raise ValueError("Cell namespaces must be unique.")
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1.")
        self.model = model
        self.n_jobs = n_jobs
        jobs = resolve_n_jobs(n_jobs)
        self.n_shards = (
            n_shards if n_shards is not None
            else max(1, min(len(self.specs), jobs))
        )
        if not 1 <= self.n_shards <= len(self.specs):
            raise ValueError("n_shards must be in [1, n_cells].")
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_interval = checkpoint_interval
        self.policy_options = dict(policy_options or {})
        # Test/bench knob: {shard_index: tick} hard-exits that shard's
        # worker mid-run to exercise checkpointed crash rescue.
        self.die_at_tick = dict(die_at_tick or {})

    def run(self, workloads: np.ndarray) -> FleetResult:
        """Drive every cell through its workload row; merge shard order."""
        workloads = np.ascontiguousarray(workloads, dtype=np.float64)
        if workloads.ndim != 2 or workloads.shape[0] != len(self.specs):
            raise ValueError(
                "workloads must be a (n_cells, duration) matrix aligned "
                "with the cell specs."
            )
        ticks = workloads.shape[1]
        if self.checkpoint_dir is not None:
            os.makedirs(str(self.checkpoint_dir), exist_ok=True)
        bounds = np.linspace(0, len(self.specs), self.n_shards + 1).astype(int)
        items = []
        for shard in range(self.n_shards):
            lo, hi = int(bounds[shard]), int(bounds[shard + 1])
            path = None
            if self.checkpoint_dir is not None:
                path = str(
                    os.path.join(
                        str(self.checkpoint_dir), f"shard-{shard:03d}.ckpt"
                    )
                )
            items.append(
                {
                    "shard": shard,
                    "specs": self.specs[lo:hi],
                    "cell_rows": (lo, hi),
                    "ticks": ticks,
                    "model": self.model,
                    "policy_options": self.policy_options,
                    "checkpoint_path": path,
                    "checkpoint_interval": self.checkpoint_interval,
                    "die_at_tick": self.die_at_tick.get(shard),
                }
            )
        shard_results = parallel_map(
            _run_shard,
            items,
            n_jobs=self.n_jobs,
            shared={"fleet_workloads": workloads},
            chunk_size=1,
            on_crash="serial",
        )

        decisions = [
            tuple(
                sorted(
                    key
                    for result in shard_results
                    for key in result.decisions[t]
                )
            )
            for t in range(ticks)
        ]
        cells: dict[str, OrchestratorResult] = {}
        health: dict = {}
        counters = {
            "demotions": 0, "recoveries": 0, "failsafe_entries": 0,
            "failsafe_ticks": 0, "classifier_errors": 0,
        }
        for result in shard_results:
            cells.update(result.cells)
            health.update(result.health)
            for key in counters:
                counters[key] += result.counters[key]
        return FleetResult(
            decisions=decisions,
            cells=cells,
            health=health,
            counters=counters,
            n_shards=self.n_shards,
            shard_results=shard_results,
        )
