"""Agent-side prediction offloading (paper section 5, "Refine the
architecture").

In the baseline architecture every agent ships its full metric vector
(1040 float64 values per container per second) to the orchestrator,
which predicts centrally.  The paper's proposed refinement offloads
the saturation prediction to the agents: each agent runs the model
locally and ships a single verdict bit, trading orchestrator-side
visibility and agent CPU for network traffic.

:class:`EdgeDeployment` models both modes over a simulation run and
accounts the traffic, quantifying the reduction the paper predicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.simulation import ClusterSimulation
from repro.core.model import MonitorlessModel
from repro.orchestrator.policies import MonitorlessPolicy
from repro.telemetry.agent import TelemetryAgent

__all__ = ["TrafficAccount", "EdgeDeployment"]

_FLOAT_BYTES = 8
_METRIC_NAME_OVERHEAD = 4  # compact metric-id encoding per value
_MESSAGE_HEADER_BYTES = 64  # transport + timestamp + container id
_VERDICT_BYTES = 1


@dataclass(frozen=True)
class TrafficAccount:
    """Bytes moved from agents to the orchestrator over one run."""

    centralized_bytes: float
    edge_bytes: float
    samples: int

    @property
    def reduction_factor(self) -> float:
        if self.edge_bytes <= 0:
            return float("inf")
        return self.centralized_bytes / self.edge_bytes

    def summary(self) -> dict:
        return {
            "centralized_MB": round(self.centralized_bytes / 1e6, 2),
            "edge_MB": round(self.edge_bytes / 1e6, 3),
            "reduction": f"{self.reduction_factor:.0f}x",
        }


class EdgeDeployment:
    """Run the monitorless detector in edge (agent-side) mode.

    The predictions are identical to the centralized mode -- the same
    model runs on the same metrics, just on the other side of the
    network -- so this class reuses :class:`MonitorlessPolicy` for
    inference and layers traffic accounting on top.  Pass
    ``streaming=True`` to run the agents on the incremental per-tick
    data path (the natural fit for edge inference, which sees each
    sample exactly once).
    """

    def __init__(
        self,
        model: MonitorlessModel,
        agent: TelemetryAgent,
        window: int = 16,
        streaming: bool = False,
    ):
        self.policy = MonitorlessPolicy(
            model, agent, window=window, streaming=streaming
        )
        self.agent = agent

    def n_metrics(self) -> int:
        return self.agent.catalog.n_metrics

    def per_sample_bytes(self, *, edge: bool) -> float:
        """Agent-to-orchestrator bytes for one container-second."""
        if edge:
            return _MESSAGE_HEADER_BYTES + _VERDICT_BYTES
        return _MESSAGE_HEADER_BYTES + self.n_metrics() * (
            _FLOAT_BYTES + _METRIC_NAME_OVERHEAD
        )

    def account(
        self, simulation: ClusterSimulation, application: str, duration: int
    ) -> TrafficAccount:
        """Traffic accounting for ``duration`` seconds of one application.

        Uses the deployment's *current* replica counts (call after a
        run, or per-tick for time-varying deployments).
        """
        replica_count = sum(
            simulation.replica_counts(application).values()
        )
        samples = replica_count * duration
        return TrafficAccount(
            centralized_bytes=samples * self.per_sample_bytes(edge=False),
            edge_bytes=samples * self.per_sample_bytes(edge=True),
            samples=samples,
        )

    def saturated_services(
        self, simulation: ClusterSimulation, application: str, t: int
    ) -> set[str]:
        """Policy-compatible entry point (edge mode predicts locally)."""
        return self.policy.saturated_services(simulation, application, t)

    @staticmethod
    def agent_cpu_overhead_estimate(
        prediction_seconds: float, containers_per_node: int
    ) -> float:
        """Cores consumed by agent-side inference on one node.

        The paper's trade-off: one prediction per container per second,
        each costing ``prediction_seconds`` of CPU.
        """
        if prediction_seconds < 0 or containers_per_node < 0:
            raise ValueError("Inputs must be non-negative.")
        return prediction_seconds * containers_per_node
