"""Per-tick saturation-detection policies for the closed loop.

A policy inspects the live cluster at tick ``t`` and returns the set
of *service names* it considers saturated.  Four families mirror the
paper's Table-7 comparison:

- :class:`MonitorlessPolicy` -- the trained model applied to a short
  window of live platform metrics per container (application
  knowledge: none);
- :class:`ThresholdPolicy` -- static CPU/MEM utilization thresholds
  (the optimally-tuned baselines);
- :class:`ResponseTimePolicy` -- the "optimal" RT-based scaler that
  watches the end-to-end application KPI directly (requires exactly
  the application-level monitoring monitorless is designed to avoid);
- :class:`NoScalingPolicy` -- the static worst-case baseline.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.cluster.simulation import ClusterSimulation
from repro.core.model import MonitorlessModel, predict_proba_trusted
from repro.core.thresholds import ThresholdBaseline
from repro.telemetry.agent import TelemetryAgent
from repro.telemetry.catalog import CONTAINER_CHANNELS

__all__ = [
    "MonitorlessPolicy",
    "ThresholdPolicy",
    "ResponseTimePolicy",
    "NoScalingPolicy",
]


class NoScalingPolicy:
    """Never reports saturation (the paper's static baseline)."""

    name = "no-scaling"

    def saturated_services(
        self, simulation: ClusterSimulation, application: str, t: int
    ) -> set[str]:
        return set()


class _ContainerStream:
    """One container's live data path: telemetry stream + pipeline stream."""

    __slots__ = ("telemetry", "features", "last_features", "last_complete")

    def __init__(self, telemetry, features):
        self.telemetry = telemetry
        self.features = features
        self.last_features: np.ndarray | None = None
        self.last_complete: float = 1.0

    def catch_up(self, end: int) -> np.ndarray | None:
        """Consume every unseen tick up to ``end``; O(new ticks).

        Rows flagged incomplete by the telemetry layer (imputed or
        masked readings) are pushed with ``imputed=True`` so the
        pipeline can account for them; fully observed rows take the
        identical code path as before.
        """
        telemetry = self.telemetry
        while telemetry.clock < end:
            row = telemetry.emit()
            self.last_complete = telemetry.tail.last_completeness()
            self.last_features = self.features.push(
                row, imputed=self.last_complete < 1.0
            )
        return self.last_features


class MonitorlessPolicy:
    """The monitorless detector over live platform metrics.

    Two data paths produce the per-container verdicts:

    - **batch** (``streaming=False``, the historical default): each
      tick, every container's last ``window`` seconds of metrics are
      re-synthesized and re-transformed from scratch -- O(window) work
      per container per tick;
    - **streaming** (``streaming=True``): each container holds a
      persistent telemetry stream and pipeline stream; each tick only
      the *new* rows are synthesized and pushed -- O(1) per container
      per tick.  Replicas created mid-run are caught up from their
      creation tick, so their temporal features warm up exactly as the
      batch path's shortened windows do.

    The classifier is invoked once per tick on all containers' current
    feature rows (per-call overhead dominates at per-tick batch sizes).

    Parameters
    ----------
    model:
        A fitted :class:`MonitorlessModel`.
    agent:
        Telemetry agent (must use the catalog the model was trained on).
    window:
        Batch mode: seconds of history per prediction; must cover the
        model's longest temporal feature (the paper uses 15 s + the
        current sample).  Streaming mode keeps that much telemetry tail
        for inspection but does not recompute from it.
    streaming:
        Select the incremental data path.
    lifecycle:
        Optional :class:`~repro.lifecycle.manager.LifecycleManager`.
        When attached, the policy follows its champion (promotions swap
        the serving model between ticks) and reports every classified
        batch to it; the manager's challenger shadow-scores the same
        batch but never influences the returned verdicts.  ``None``
        (default) leaves the serving path byte-identical to a
        lifecycle-free policy.
    """

    name = "monitorless"

    def __init__(
        self,
        model: MonitorlessModel,
        agent: TelemetryAgent,
        window: int = 16,
        streaming: bool = False,
        lifecycle=None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1.")
        self.model = model
        self.agent = agent
        self.window = window
        self.streaming = streaming
        self.lifecycle = lifecycle
        self.meta = agent.catalog.feature_meta()
        self._streams: dict[str, _ContainerStream] = {}

    def _classify(
        self,
        services: list[str],
        current_rows: list[np.ndarray],
        t: int | None = None,
        completeness=None,
    ) -> set[str]:
        if not current_rows:
            return set()
        if (
            self.lifecycle is not None
            and self.lifecycle.champion is not self.model
        ):
            # A promotion happened since the last tick; the pipeline is
            # frozen within a lineage, so live streams stay valid.
            self.model = self.lifecycle.champion
        with obs.trace("policy.classify"):
            batch = np.vstack(current_rows)
            classifier = self.model.classifier_
            if hasattr(classifier, "predict_proba"):
                # Rows come straight from the fitted pipeline; skip the
                # per-call check_array re-validation.
                positive = predict_proba_trusted(classifier, batch)[:, 1]
                flags = positive >= self.model.prediction_threshold
            else:
                flags = np.asarray(classifier.predict(batch)) == 1
        if self.lifecycle is not None and t is not None:
            self.lifecycle.observe(t, batch, flags, completeness)
        saturated = {
            service for service, flag in zip(services, flags) if flag
        }
        if obs.enabled():
            obs.inc("policy.classified_instances", len(services))
            obs.inc("policy.saturation_verdicts", len(saturated))
        return saturated

    def _stream_for(self, container, simulation) -> _ContainerStream:
        stream = self._streams.get(container.name)
        if stream is None:
            stream = _ContainerStream(
                self.agent.open_stream(
                    container, simulation.nodes, history=self.window
                ),
                self.model.pipeline_.stream(),
            )
            self._streams[container.name] = stream
        return stream

    def saturated_services(
        self, simulation: ClusterSimulation, application: str, t: int
    ) -> set[str]:
        deployment = simulation.deployments[application]
        services: list[str] = []
        current_rows: list[np.ndarray] = []
        if self.streaming:
            completeness: list[float] = []
            live: set[str] = set()
            for service, replicas in deployment.instances.items():
                for instance in replicas:
                    container = instance.container
                    live.add(container.name)
                    end = container.created_at + len(container.history)
                    if end <= container.created_at:
                        continue  # no samples yet
                    stream = self._stream_for(container, simulation)
                    features = stream.catch_up(end)
                    if features is not None:
                        services.append(service)
                        current_rows.append(features)
                        completeness.append(stream.last_complete)
            # Retired replicas (scale-in) never come back; drop their
            # state.  Membership rarely changes, so skip the sweep
            # entirely unless some stream key is no longer live.
            if not self._streams.keys() <= live:
                for name in [n for n in self._streams if n not in live]:
                    del self._streams[name]
            return self._classify(
                services, current_rows, t=t, completeness=completeness
            )

        for service, replicas in deployment.instances.items():
            for instance in replicas:
                container = instance.container
                end = container.created_at + len(container.history)
                if end <= container.created_at:
                    continue  # no samples yet
                start = max(container.created_at, end - self.window)
                window_matrix = self.agent.instance_matrix(
                    container, simulation.nodes, start=start, end=end
                )
                features = self.model.transform(window_matrix, self.meta)
                services.append(service)
                current_rows.append(features[-1])
        return self._classify(services, current_rows, t=t)


class ThresholdPolicy:
    """Static-threshold detector over live container utilizations."""

    def __init__(self, baseline: ThresholdBaseline, agent: TelemetryAgent):
        self.baseline = baseline
        self.agent = agent
        self.name = baseline.label()

    def instance_saturated(
        self, container, simulation: ClusterSimulation
    ) -> bool:
        """Threshold verdict for one container's latest recorded tick.

        The per-instance unit of :meth:`saturated_services`, exposed so
        a fallback chain can consult the threshold baseline for exactly
        the containers whose primary data path is degraded.  Containers
        with no recorded ticks yet are never saturated.
        """
        end = container.created_at + len(container.history)
        if end <= container.created_at:
            return False
        node = simulation.nodes[container.node]
        state = self.agent.container_state(container, node, end - 1, end)
        cpu = state[0, CONTAINER_CHANNELS["cpu_rel_util"]]
        mem = state[0, CONTAINER_CHANNELS["mem_limit_util"]]
        return bool(
            self.baseline.predict_instance(
                np.asarray([cpu]), np.asarray([mem])
            )[0]
        )

    def saturated_services(
        self, simulation: ClusterSimulation, application: str, t: int
    ) -> set[str]:
        deployment = simulation.deployments[application]
        saturated: set[str] = set()
        for service, replicas in deployment.instances.items():
            for instance in replicas:
                if self.instance_saturated(instance.container, simulation):
                    saturated.add(service)
                    break
        return saturated


class ResponseTimePolicy:
    """The a-posteriori "optimal" scaler: watches the application KPI.

    Fires on the services in ``target_services`` whenever the measured
    end-to-end response time exceeds ``rt_threshold`` (the paper scales
    Recommender and Auth together, chosen with application knowledge).
    """

    name = "rt-based"

    def __init__(self, target_services: list[str], rt_threshold: float = 0.5):
        if not target_services:
            raise ValueError("target_services must not be empty.")
        if rt_threshold <= 0:
            raise ValueError("rt_threshold must be positive.")
        self.target_services = list(target_services)
        self.rt_threshold = rt_threshold

    def saturated_services(
        self, simulation: ClusterSimulation, application: str, t: int
    ) -> set[str]:
        kpis = simulation._kpis[application]
        if not kpis["response_time"]:
            return set()
        if kpis["response_time"][-1] > self.rt_threshold:
            return set(self.target_services)
        return set()
