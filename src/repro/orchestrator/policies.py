"""Per-tick saturation-detection policies for the closed loop.

A policy inspects the live cluster at tick ``t`` and returns the set
of *service names* it considers saturated.  Four families mirror the
paper's Table-7 comparison:

- :class:`MonitorlessPolicy` -- the trained model applied to a short
  window of live platform metrics per container (application
  knowledge: none);
- :class:`ThresholdPolicy` -- static CPU/MEM utilization thresholds
  (the optimally-tuned baselines);
- :class:`ResponseTimePolicy` -- the "optimal" RT-based scaler that
  watches the end-to-end application KPI directly (requires exactly
  the application-level monitoring monitorless is designed to avoid);
- :class:`NoScalingPolicy` -- the static worst-case baseline.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.simulation import ClusterSimulation
from repro.core.model import MonitorlessModel
from repro.core.thresholds import ThresholdBaseline
from repro.telemetry.agent import TelemetryAgent
from repro.telemetry.catalog import CONTAINER_CHANNELS

__all__ = [
    "MonitorlessPolicy",
    "ThresholdPolicy",
    "ResponseTimePolicy",
    "NoScalingPolicy",
]


class NoScalingPolicy:
    """Never reports saturation (the paper's static baseline)."""

    name = "no-scaling"

    def saturated_services(
        self, simulation: ClusterSimulation, application: str, t: int
    ) -> set[str]:
        return set()


class MonitorlessPolicy:
    """The monitorless detector: model + telemetry window per container.

    Each tick, every container's last ``window`` seconds of platform
    metrics are collected and pushed through the model; a container
    predicted saturated marks its service.

    Parameters
    ----------
    model:
        A fitted :class:`MonitorlessModel`.
    agent:
        Telemetry agent (must use the catalog the model was trained on).
    window:
        Seconds of history per prediction; must cover the model's
        longest temporal feature (the paper uses 15 s + the current
        sample).
    """

    name = "monitorless"

    def __init__(
        self,
        model: MonitorlessModel,
        agent: TelemetryAgent,
        window: int = 16,
    ):
        if window < 1:
            raise ValueError("window must be >= 1.")
        self.model = model
        self.agent = agent
        self.window = window
        self.meta = agent.catalog.feature_meta()

    def saturated_services(
        self, simulation: ClusterSimulation, application: str, t: int
    ) -> set[str]:
        deployment = simulation.deployments[application]
        # Transform every replica's window, then classify all current
        # rows in ONE forest call -- per-call overhead dominates at
        # per-tick batch sizes.
        services: list[str] = []
        current_rows: list[np.ndarray] = []
        for service, replicas in deployment.instances.items():
            for instance in replicas:
                container = instance.container
                end = container.created_at + len(container.history)
                if end <= container.created_at:
                    continue  # no samples yet
                start = max(container.created_at, end - self.window)
                window_matrix = self.agent.instance_matrix(
                    container, simulation.nodes, start=start, end=end
                )
                features = self.model.transform(window_matrix, self.meta)
                services.append(service)
                current_rows.append(features[-1])
        if not current_rows:
            return set()
        batch = np.vstack(current_rows)
        classifier = self.model.classifier_
        if hasattr(classifier, "predict_proba"):
            positive = classifier.predict_proba(batch)[:, 1]
            flags = positive >= self.model.prediction_threshold
        else:
            flags = np.asarray(classifier.predict(batch)) == 1
        return {service for service, flag in zip(services, flags) if flag}


class ThresholdPolicy:
    """Static-threshold detector over live container utilizations."""

    def __init__(self, baseline: ThresholdBaseline, agent: TelemetryAgent):
        self.baseline = baseline
        self.agent = agent
        self.name = baseline.label()

    def saturated_services(
        self, simulation: ClusterSimulation, application: str, t: int
    ) -> set[str]:
        deployment = simulation.deployments[application]
        saturated: set[str] = set()
        channels = CONTAINER_CHANNELS
        for service, replicas in deployment.instances.items():
            for instance in replicas:
                container = instance.container
                end = container.created_at + len(container.history)
                if end <= container.created_at:
                    continue
                node = simulation.nodes[container.node]
                state = self.agent.container_state(container, node, end - 1, end)
                cpu = state[0, channels["cpu_rel_util"]]
                mem = state[0, channels["mem_limit_util"]]
                if self.baseline.predict_instance(
                    np.asarray([cpu]), np.asarray([mem])
                )[0]:
                    saturated.add(service)
                    break
        return saturated


class ResponseTimePolicy:
    """The a-posteriori "optimal" scaler: watches the application KPI.

    Fires on the services in ``target_services`` whenever the measured
    end-to-end response time exceeds ``rt_threshold`` (the paper scales
    Recommender and Auth together, chosen with application knowledge).
    """

    name = "rt-based"

    def __init__(self, target_services: list[str], rt_threshold: float = 0.5):
        if not target_services:
            raise ValueError("target_services must not be empty.")
        if rt_threshold <= 0:
            raise ValueError("rt_threshold must be positive.")
        self.target_services = list(target_services)
        self.rt_threshold = rt_threshold

    def saturated_services(
        self, simulation: ClusterSimulation, application: str, t: int
    ) -> set[str]:
        kpis = simulation._kpis[application]
        if not kpis["response_time"]:
            return set()
        if kpis["response_time"][-1] > self.rt_threshold:
            return set(self.target_services)
        return set()
