"""The orchestrator loop: monitor -> predict -> scale, once per second.

Runs one application's workload trace through the simulation while a
policy watches for saturation and an autoscaler acts on it; reports
the paper's Table-7 quantities -- average extra provisioning relative
to the baseline deployment and the number of SLO violations -- plus
the full KPI timeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.cluster.simulation import ClusterSimulation
from repro.orchestrator.autoscaler import Autoscaler, ScalingRules
from repro.orchestrator.slo import SloPolicy, slo_violations

__all__ = ["Orchestrator", "OrchestratorResult"]


@dataclass
class OrchestratorResult:
    """Outcome of one closed-loop run."""

    policy_name: str
    duration: int
    baseline_containers: int
    extra_replicas: np.ndarray  # per-tick count of scale-out replicas
    violations: np.ndarray  # per-tick SLO violation flags
    response_time: np.ndarray
    throughput: np.ndarray
    offered: np.ndarray
    dropped: np.ndarray
    total_scale_outs: int

    @property
    def average_provisioning(self) -> float:
        """Average extra containers relative to the baseline (Table 7).

        Degenerate runs (no baseline replicas recorded, e.g. a policy
        evaluated against an empty deployment snapshot) report 0.0
        when nothing was ever scaled out and ``inf`` otherwise, instead
        of dividing by zero.
        """
        mean_extra = (
            float(np.mean(self.extra_replicas))
            if self.extra_replicas.size
            else 0.0
        )
        if self.baseline_containers <= 0:
            return 0.0 if mean_extra == 0.0 else float("inf")
        return mean_extra / self.baseline_containers

    @property
    def slo_violation_count(self) -> int:
        return int(np.sum(self.violations))

    def as_row(self) -> dict:
        """Row in the shape of the paper's Table 7."""
        return {
            "algorithm": self.policy_name,
            "provisioning": f"+{100 * self.average_provisioning:.0f}%",
            "slo_violations": self.slo_violation_count,
        }


class Orchestrator:
    """Drives one closed-loop experiment.

    Parameters
    ----------
    simulation:
        A cluster with the target application (and any interfering
        tenants) already deployed.
    application:
        Name of the application being scaled and SLO-scored.
    policy:
        A saturation-detection policy (see
        :mod:`repro.orchestrator.policies`).
    rules:
        Scaling mechanics; ``None`` disables scaling (the no-scaling
        baseline).
    slo:
        SLO thresholds (defaults to the paper's).
    decision_interval:
        Seconds between policy evaluations (1 = every tick).
    """

    def __init__(
        self,
        simulation: ClusterSimulation,
        application: str,
        policy,
        rules: ScalingRules | None = None,
        slo: SloPolicy | None = None,
        decision_interval: int = 1,
    ):
        if application not in simulation.deployments:
            raise ValueError(f"Application {application} is not deployed.")
        if decision_interval < 1:
            raise ValueError("decision_interval must be >= 1.")
        self.simulation = simulation
        self.application = application
        self.policy = policy
        self.rules = rules
        self.slo = slo or SloPolicy()
        self.decision_interval = decision_interval
        self.autoscaler = (
            Autoscaler(simulation=simulation, application=application, rules=rules)
            if rules is not None
            else None
        )

    # ------------------------------------------------------------------
    # Incremental driving: start() / tick() / finish()
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin a closed-loop run; arrivals are then fed via :meth:`tick`.

        Records the baseline replica count and resets per-run
        accounting.  Use this (with :meth:`tick` / :meth:`finish`) when
        arrivals come from a live source tick by tick; :meth:`run` is
        the batch wrapper for a complete pre-recorded trace.
        """
        self._baseline = sum(
            self.simulation.replica_counts(self.application).values()
        )
        self._extra: list[int] = []
        self._t = 0

    def tick(self, arrivals: dict[str, float]) -> None:
        """Advance the loop one second: step, predict, scale, account."""
        if not hasattr(self, "_extra"):
            raise RuntimeError("Call start() before tick().")
        timed = obs.enabled()
        started = time.perf_counter() if timed else 0.0
        with obs.trace("orchestrator.tick"):
            with obs.trace("simulation.step"):
                self.simulation.step(
                    {app: float(rate) for app, rate in arrivals.items()}
                )
            if (
                self.autoscaler is not None
                and self._t % self.decision_interval == 0
            ):
                with obs.trace("policy.saturated_services"):
                    saturated = self.policy.saturated_services(
                        self.simulation, self.application, self._t
                    )
                with obs.trace("autoscaler.act"):
                    self.autoscaler.act(saturated, self._t)
            self._extra.append(
                self.autoscaler.extra_replicas if self.autoscaler else 0
            )
            self._t += 1
        if timed:
            obs.inc("orchestrator.ticks")
            obs.observe(
                "orchestrator.tick_seconds", time.perf_counter() - started
            )
            if self.autoscaler is not None:
                obs.set_gauge(
                    "orchestrator.extra_replicas", self.autoscaler.extra_replicas
                )

    def finish(self) -> OrchestratorResult:
        """Close the run and compute provisioning / SLO accounting."""
        if not hasattr(self, "_extra"):
            raise RuntimeError("Call start() before finish().")
        duration = self._t
        kpis = self.simulation._kpis[self.application]
        response_time = np.asarray(kpis["response_time"][-duration:])
        offered = np.asarray(kpis["offered"][-duration:])
        dropped = np.asarray(kpis["dropped"][-duration:])
        throughput = np.asarray(kpis["throughput"][-duration:])
        violations = slo_violations(response_time, dropped, offered, self.slo)
        result = OrchestratorResult(
            policy_name=getattr(self.policy, "name", type(self.policy).__name__),
            duration=duration,
            baseline_containers=self._baseline,
            extra_replicas=np.asarray(self._extra, dtype=np.float64),
            violations=violations,
            response_time=response_time,
            throughput=throughput,
            offered=offered,
            dropped=dropped,
            total_scale_outs=(
                self.autoscaler.total_scale_outs if self.autoscaler else 0
            ),
        )
        del self._extra, self._t, self._baseline
        return result

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def save_checkpoint(self, path) -> dict:
        """Snapshot the whole mid-run loop state to ``path``.

        Everything needed to resume bitwise -- simulation, policy
        streams, autoscaler, tick accounting -- is captured; see
        :mod:`repro.reliability.checkpoint` for the format and its
        compatibility caveats.  Returns the stored header.
        """
        from repro.reliability.checkpoint import save_checkpoint

        return save_checkpoint(self, path)

    @staticmethod
    def resume_from(
        path, model=None, allow_model_swap: bool = False
    ) -> "Orchestrator":
        """Reload an orchestrator checkpointed by :meth:`save_checkpoint`.

        The returned instance continues exactly where the saved one
        stopped: call :meth:`tick` with the remaining arrivals and
        :meth:`finish` as usual.

        Passing ``model`` asks to resume *serving with that model*.
        The checkpoint header stores the fingerprint of the model the
        run was saved with; resuming with a different one silently
        changes every remaining verdict (and corrupts per-container
        pipeline streams if the feature pipeline differs), so a
        mismatch raises :class:`CheckpointError` unless
        ``allow_model_swap=True`` explicitly accepts the swap.
        """
        from repro.reliability.checkpoint import (
            CheckpointError,
            load_checkpoint,
            model_fingerprint,
            read_header,
        )

        if model is None:
            return load_checkpoint(path)
        header = read_header(path)
        stored = header.get("model_fingerprint")
        offered = model_fingerprint(model)
        if stored is not None and offered != stored and not allow_model_swap:
            raise CheckpointError(
                f"{path} was checkpointed with model {stored[:12]}... but "
                f"resume was offered model {offered[:12]}...; refusing to "
                "swap the serving model mid-run (pass "
                "allow_model_swap=True / --allow-model-swap to override)."
            )
        orchestrator = load_checkpoint(path)
        target = orchestrator.policy
        if not hasattr(target, "model") and hasattr(target, "primary"):
            target = target.primary
        if hasattr(target, "model"):
            target.model = model
        return orchestrator

    def run(self, workloads: dict[str, np.ndarray]) -> OrchestratorResult:
        """Run the full trace; returns provisioning and SLO accounting.

        Thin wrapper over :meth:`start` / :meth:`tick` / :meth:`finish`.
        """
        if not workloads:
            raise ValueError(
                "run() needs at least one workload series; got an empty "
                "mapping."
            )
        lengths = {len(series) for series in workloads.values()}
        if len(lengths) != 1:
            raise ValueError("All workload series must have equal length.")
        duration = lengths.pop()
        self.start()
        for t in range(duration):
            self.tick({app: series[t] for app, series in workloads.items()})
        return self.finish()
