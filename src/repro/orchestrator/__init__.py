"""Closed-loop orchestration (paper section 2 and the Table-7 experiment).

- :mod:`repro.orchestrator.policies` -- per-tick saturation detectors:
  monitorless (the trained model over live platform metrics), static
  thresholds, the a-posteriori response-time scaler and no-scaling.
- :mod:`repro.orchestrator.slo` -- SLO-violation detection (average
  response time above 750 ms, dropped requests, >10% failures).
- :mod:`repro.orchestrator.autoscaler` -- scale-out on predicted
  saturation with a 120-second replica lifespan, scale-in afterwards.
- :mod:`repro.orchestrator.loop` -- the orchestrator: advance the
  simulation one second at a time, collect metrics, predict, scale,
  and account provisioning cost and SLO violations.  Drive it with
  ``run(workloads)`` for a pre-recorded trace or ``start()`` /
  ``tick(arrivals)`` / ``finish()`` for live, per-tick arrivals.

The monitorless policy supports two data paths: batch (re-transform a
sliding window per container per tick) and streaming
(``streaming=True``: persistent per-container telemetry and pipeline
streams, O(1) incremental work per tick).
"""

from repro.orchestrator.autoscaler import Autoscaler, ScalingRules
from repro.orchestrator.edge import EdgeDeployment, TrafficAccount
from repro.orchestrator.loop import Orchestrator, OrchestratorResult
from repro.orchestrator.rightsizing import (
    Rightsizer,
    RightsizingModel,
    label_overprovisioning,
)
from repro.orchestrator.policies import (
    MonitorlessPolicy,
    NoScalingPolicy,
    ResponseTimePolicy,
    ThresholdPolicy,
)
from repro.orchestrator.slo import SloPolicy, slo_violations

__all__ = [
    "MonitorlessPolicy",
    "ThresholdPolicy",
    "ResponseTimePolicy",
    "NoScalingPolicy",
    "SloPolicy",
    "slo_violations",
    "Autoscaler",
    "ScalingRules",
    "Orchestrator",
    "OrchestratorResult",
    "EdgeDeployment",
    "TrafficAccount",
    "RightsizingModel",
    "Rightsizer",
    "label_overprovisioning",
]
