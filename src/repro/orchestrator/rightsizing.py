"""Scale-in / overprovisioning detection (paper section 5, "Using
monitorless for autoscaling").

The paper: "it is possible to extend our approach training an
additional classifier for detecting overprovisioned services and
conservatively scale in to reduce costs.  This makes it possible to
recommend the exact amount of service instances required."

Implementation:

- :func:`label_overprovisioning` -- derive over-provisioning labels
  from calibration data: a sample is *overprovisioned* when the
  instance's bottleneck utilization stays below a low-water mark
  (defaults to 30%) -- the dual of the saturation labeling.
- :class:`RightsizingModel` -- the pair of classifiers (saturation +
  over-provisioning) with a three-way verdict per instance:
  ``scale_out`` / ``hold`` / ``scale_in``.
- :class:`Rightsizer` -- conservative replica-count recommendation: a
  service scales in only when *every* replica has voted scale-in for
  ``consecutive_ticks`` in a row; a single saturation vote resets it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import MonitorlessModel

__all__ = [
    "label_overprovisioning",
    "RightsizingModel",
    "Rightsizer",
    "Recommendation",
]


def label_overprovisioning(
    utilizations: np.ndarray, *, low_water_mark: float = 0.30
) -> np.ndarray:
    """Binary over-provisioning labels from bottleneck utilizations.

    ``utilizations`` holds each sample's *maximum* per-resource
    utilization (0-1 scale, >1 = oversubscribed); anything below the
    low-water mark wastes most of its allocation.
    """
    utilizations = np.asarray(utilizations, dtype=np.float64)
    if not 0.0 < low_water_mark < 1.0:
        raise ValueError("low_water_mark must be in (0, 1).")
    return (utilizations < low_water_mark).astype(np.int64)


class RightsizingModel:
    """Saturation + over-provisioning classifiers over platform metrics.

    Both are :class:`MonitorlessModel` instances and train on the same
    raw metric matrix; the over-provisioning model uses labels from
    :func:`label_overprovisioning`.
    """

    SCALE_OUT = "scale_out"
    HOLD = "hold"
    SCALE_IN = "scale_in"

    def __init__(
        self,
        saturation_model: MonitorlessModel | None = None,
        overprovisioning_model: MonitorlessModel | None = None,
        scale_in_threshold: float = 0.7,
    ):
        """``scale_in_threshold`` is deliberately above the saturation
        model's 0.4: scaling in must be *conservative* (section 5)."""
        if not 0.0 < scale_in_threshold < 1.0:
            raise ValueError("scale_in_threshold must be in (0, 1).")
        self.saturation = saturation_model or MonitorlessModel()
        self.overprovisioning = overprovisioning_model or MonitorlessModel(
            prediction_threshold=scale_in_threshold
        )
        self.scale_in_threshold = scale_in_threshold

    def fit(
        self,
        X: np.ndarray,
        meta,
        y_saturated: np.ndarray,
        y_overprovisioned: np.ndarray,
        groups=None,
    ) -> "RightsizingModel":
        conflicting = np.asarray(y_saturated) & np.asarray(y_overprovisioned)
        if conflicting.any():
            raise ValueError(
                "A sample cannot be both saturated and overprovisioned; "
                f"{int(conflicting.sum())} conflicting labels."
            )
        self.saturation.fit(X, meta, y_saturated, groups)
        self.overprovisioning.fit(X, meta, y_overprovisioned, groups)
        return self

    def verdicts(self, X: np.ndarray, meta, groups=None) -> np.ndarray:
        """Per-sample three-way verdicts (saturation wins conflicts)."""
        saturated = self.saturation.predict(X, meta, groups)
        overprovisioned = self.overprovisioning.predict(X, meta, groups)
        verdicts = np.full(len(saturated), self.HOLD, dtype=object)
        verdicts[overprovisioned == 1] = self.SCALE_IN
        verdicts[saturated == 1] = self.SCALE_OUT  # saturation dominates
        return verdicts


@dataclass(frozen=True)
class Recommendation:
    """Replica-count recommendation for one service."""

    service: str
    current_replicas: int
    recommended_replicas: int

    @property
    def action(self) -> str:
        if self.recommended_replicas > self.current_replicas:
            return RightsizingModel.SCALE_OUT
        if self.recommended_replicas < self.current_replicas:
            return RightsizingModel.SCALE_IN
        return RightsizingModel.HOLD


@dataclass
class Rightsizer:
    """Conservative replica-count recommendation.

    Scale-out fires immediately on any saturated replica (misses are
    expensive); scale-in requires *all* replicas to vote scale-in for
    ``consecutive_ticks`` consecutive decisions, and never drops below
    ``min_replicas``.
    """

    consecutive_ticks: int = 60
    min_replicas: int = 1
    _scale_in_streak: dict[str, int] = field(default_factory=dict)

    def recommend(
        self, service: str, replica_verdicts: list[str], current_replicas: int
    ) -> Recommendation:
        """One decision step for one service."""
        if current_replicas < 1:
            raise ValueError("current_replicas must be >= 1.")
        if len(replica_verdicts) != current_replicas:
            raise ValueError("One verdict per replica is required.")

        if RightsizingModel.SCALE_OUT in replica_verdicts:
            self._scale_in_streak[service] = 0
            return Recommendation(service, current_replicas, current_replicas + 1)

        if all(v == RightsizingModel.SCALE_IN for v in replica_verdicts):
            streak = self._scale_in_streak.get(service, 0) + 1
            self._scale_in_streak[service] = streak
            if (
                streak >= self.consecutive_ticks
                and current_replicas > self.min_replicas
            ):
                self._scale_in_streak[service] = 0
                return Recommendation(
                    service, current_replicas, current_replicas - 1
                )
        else:
            self._scale_in_streak[service] = 0
        return Recommendation(service, current_replicas, current_replicas)
