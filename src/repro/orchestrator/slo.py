"""Service-level-objective violation detection (paper section 4.2.2).

The paper flags an SLO violation in a one-second interval when

- the average response time of all requests exceeds 750 ms, or
- any request is dropped due to overload, or
- more than 10% of requests fail.

In the simulation, drops and failures are the same fluid quantity
(requests timing out in an overloaded queue), so the second and third
conditions collapse onto the drop fraction with the two thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SloPolicy", "slo_violations"]


@dataclass(frozen=True)
class SloPolicy:
    """SLO thresholds, defaulting to the paper's values."""

    max_average_response_time: float = 0.750  # seconds
    max_failure_fraction: float = 0.10
    drop_tolerance: float = 1e-6  # fluid-model epsilon for "any drop"

    def __post_init__(self):
        if self.max_average_response_time <= 0:
            raise ValueError("max_average_response_time must be positive.")
        if not 0 <= self.max_failure_fraction < 1:
            raise ValueError("max_failure_fraction must be in [0, 1).")


def slo_violations(
    response_time: np.ndarray,
    dropped: np.ndarray,
    offered: np.ndarray,
    policy: SloPolicy | None = None,
) -> np.ndarray:
    """Boolean per-second violation series."""
    policy = policy or SloPolicy()
    response_time = np.asarray(response_time, dtype=np.float64)
    dropped = np.asarray(dropped, dtype=np.float64)
    offered = np.asarray(offered, dtype=np.float64)
    if not response_time.shape == dropped.shape == offered.shape:
        raise ValueError("All series must have the same shape.")
    with np.errstate(divide="ignore", invalid="ignore"):
        failure_fraction = np.where(offered > 0, dropped / offered, 0.0)
    return (
        (response_time > policy.max_average_response_time)
        | (dropped > policy.drop_tolerance)
        | (failure_fraction > policy.max_failure_fraction)
    )
