"""Autoscaling mechanics (paper section 4.2.2, Table 7).

When a policy reports a service saturated, the autoscaler starts one
extra replica; every replica lives for a fixed lifespan (120 s in the
paper, "to avoid the issue of endless out-scaling") and is then
retired.  For Table-7 fairness the paper ties Recommender and Auth
together: if either is reported saturated, both are scaled --
``ScalingRules.scale_groups`` expresses that coupling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.simulation import ClusterSimulation, Placement

__all__ = ["ScalingRules", "Autoscaler"]


@dataclass(frozen=True)
class ScalingRules:
    """Where and how replicas are added.

    Attributes
    ----------
    placements:
        Service -> placement used for scale-out replicas (the paper
        adds TeaStore replicas on M2).
    replica_lifespan:
        Seconds a scale-out replica lives before scale-in.
    scale_groups:
        Groups of services scaled together: if any member is reported
        saturated, every member scales.
    scalable:
        Services eligible for scaling; None = every service with a
        placement entry.
    max_replicas:
        Upper bound per service, counting the baseline replica.
    """

    placements: dict[str, Placement]
    replica_lifespan: int = 120
    scale_groups: tuple[tuple[str, ...], ...] = ()
    scalable: frozenset[str] | None = None
    max_replicas: int = 4

    def expand(self, saturated: set[str]) -> set[str]:
        """Apply group coupling and the scalable filter."""
        expanded = set(saturated)
        for group in self.scale_groups:
            if expanded & set(group):
                expanded.update(group)
        allowed = (
            set(self.placements)
            if self.scalable is None
            else set(self.scalable)
        )
        return expanded & allowed


@dataclass
class _ActiveReplica:
    service: str
    retire_at: int


@dataclass
class Autoscaler:
    """Tracks scale-out replicas for one application."""

    simulation: ClusterSimulation
    application: str
    rules: ScalingRules
    active: list[_ActiveReplica] = field(default_factory=list)
    total_scale_outs: int = 0

    def act(self, saturated: set[str], t: int) -> None:
        """Retire expired replicas, then scale out saturated services."""
        if not saturated and not self.active:
            return
        # Scale-in first: replicas whose lifespan elapsed.
        surviving = []
        for replica in self.active:
            if t >= replica.retire_at:
                self.simulation.remove_replica(self.application, replica.service)
            else:
                surviving.append(replica)
        self.active = surviving

        for service in sorted(self.rules.expand(saturated)):
            if service not in self.rules.placements:
                continue
            current = self.simulation.replica_counts(self.application)[service]
            if current >= self.rules.max_replicas:
                continue
            self.simulation.add_replica(
                self.application, service, self.rules.placements[service]
            )
            self.active.append(
                _ActiveReplica(
                    service=service, retire_at=t + self.rules.replica_lifespan
                )
            )
            self.total_scale_outs += 1

    @property
    def extra_replicas(self) -> int:
        """Currently-running scale-out replicas."""
        return len(self.active)
