"""Primitive workload-intensity shapes.

All functions return a float array of requests/second with one entry
per one-second tick.  Rates are clipped at a small positive floor so
that downstream utilization laws never divide by zero on "idle"
seconds (real load generators also never achieve exactly 0 req/s while
running).
"""

from __future__ import annotations

import numpy as np

__all__ = ["constant", "linear_ramp", "sine", "sinnoise", "step_levels"]

_MIN_RATE = 1.0


def _finalize(values: np.ndarray) -> np.ndarray:
    return np.maximum(values, _MIN_RATE)


def constant(duration: int, rate: float) -> np.ndarray:
    """Constant target rate (Memcache/Cassandra style runs)."""
    if duration < 1:
        raise ValueError("duration must be >= 1.")
    if rate <= 0:
        raise ValueError("rate must be positive.")
    return _finalize(np.full(duration, float(rate)))


def linear_ramp(duration: int, start: float, end: float) -> np.ndarray:
    """Linearly increasing (or decreasing) load; the calibration ramp
    used for Kneedle threshold discovery (section 2.2)."""
    if duration < 1:
        raise ValueError("duration must be >= 1.")
    return _finalize(np.linspace(start, end, duration))


def sine(
    duration: int,
    minimum: float = 1.0,
    maximum: float = 1000.0,
    periods: float = 2.0,
) -> np.ndarray:
    """The paper's ``sin1000``: sine between ``minimum`` and ``maximum``.

    ``periods`` controls how many full oscillations fit in the run.
    """
    if duration < 1:
        raise ValueError("duration must be >= 1.")
    if maximum <= minimum:
        raise ValueError("maximum must exceed minimum.")
    t = np.arange(duration, dtype=np.float64)
    phase = 2.0 * np.pi * periods * t / duration
    amplitude = (maximum - minimum) / 2.0
    midpoint = (maximum + minimum) / 2.0
    return _finalize(midpoint + amplitude * np.sin(phase - np.pi / 2.0))


def sinnoise(
    duration: int,
    minimum: float = 1.0,
    maximum: float = 1000.0,
    periods: float = 2.0,
    noise_fraction: float = 0.25,
    seed=None,
) -> np.ndarray:
    """The paper's ``sinnoise1000``: the sine base "massively modified
    by adding random noise to increase variability".

    ``noise_fraction`` scales the noise amplitude relative to the sine
    amplitude; noise mixes white and random-walk components so both
    fast jitter and slow drift appear.
    """
    base = sine(duration, minimum, maximum, periods)
    rng = np.random.default_rng(seed)
    amplitude = (maximum - minimum) / 2.0 * noise_fraction
    white = rng.normal(0.0, amplitude * 0.6, size=duration)
    walk = np.cumsum(rng.normal(0.0, amplitude * 0.08, size=duration))
    walk -= np.linspace(0.0, walk[-1], duration)  # keep the walk anchored
    return _finalize(base + white + walk)


def step_levels(durations: list[int], rates: list[float]) -> np.ndarray:
    """Piecewise-constant load (several constant target loads in one run)."""
    if len(durations) != len(rates) or not durations:
        raise ValueError("durations and rates must be equal-length, non-empty.")
    pieces = [constant(d, r) for d, r in zip(durations, rates)]
    return np.concatenate(pieces)
