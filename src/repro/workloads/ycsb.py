"""YCSB core workload mixes (Cooper et al., 2010).

The paper drives Cassandra with four YCSB core workloads (Table 1):

- **A** update-heavy: 50% reads / 50% updates;
- **B** read-heavy: 95% reads / 5% updates;
- **D** read-latest: 95% reads / 5% inserts, reading recent records;
- **F** read-modify-write: every operation reads then writes.

A mix determines how an operation rate translates into resource
demands: reads hit the (page-cached or on-disk) dataset, writes hit
the commit log and memtables, and read-modify-write doubles per-op
work.  The service model in :mod:`repro.apps.cassandra` consumes these
coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.patterns import constant, linear_ramp

__all__ = ["YcsbMix", "YCSB_MIXES", "YcsbWorkload"]


@dataclass(frozen=True)
class YcsbMix:
    """Operation mix of one YCSB core workload."""

    name: str
    read_fraction: float
    write_fraction: float
    read_modify_write: bool = False
    read_latest: bool = False  # workload D touches a hot recent set

    def __post_init__(self):
        total = self.read_fraction + self.write_fraction
        if not 0.99 <= total <= 1.01:
            raise ValueError(f"Mix fractions must sum to 1, got {total}.")

    @property
    def work_multiplier(self) -> float:
        """Per-operation work relative to a plain read.

        Writes cost ~1.4x a read in Cassandra (commit log + memtable);
        read-modify-write performs both.
        """
        write_cost = 1.4
        if self.read_modify_write:
            return 1.0 + write_cost
        return self.read_fraction + write_cost * self.write_fraction

    @property
    def cache_hit_bonus(self) -> float:
        """Fraction of reads served from a hot set regardless of limits.

        Workload D reads "the most recent" records, which stay in page
        cache even under memory pressure.
        """
        return 0.8 if self.read_latest else 0.0


YCSB_MIXES: dict[str, YcsbMix] = {
    "A": YcsbMix(name="A", read_fraction=0.5, write_fraction=0.5),
    "B": YcsbMix(name="B", read_fraction=0.95, write_fraction=0.05),
    "D": YcsbMix(name="D", read_fraction=0.95, write_fraction=0.05, read_latest=True),
    "F": YcsbMix(
        name="F", read_fraction=0.5, write_fraction=0.5, read_modify_write=True
    ),
}


@dataclass
class YcsbWorkload:
    """A YCSB run: a mix plus a target-throughput shape.

    ``rate_range=(low, high)`` reproduces the Table-1 notation
    ``A: 30K-100K R/s``: the run sweeps constant target loads across
    the range (YCSB applies constant target throughput per run; the
    paper varies it across runs, which we compress into one sweep).
    """

    mix: YcsbMix
    duration: int
    rate_range: tuple[float, float]
    sweep: bool = True

    def generate(self) -> np.ndarray:
        low, high = self.rate_range
        if low <= 0 or high < low:
            raise ValueError("rate_range must satisfy 0 < low <= high.")
        if not self.sweep or low == high:
            return constant(self.duration, (low + high) / 2.0)
        # Stepwise sweep of constant plateaus, like consecutive YCSB runs.
        n_levels = min(8, max(2, self.duration // 60))
        levels = np.linspace(low, high, n_levels)
        plateau = self.duration // n_levels
        pieces = [constant(plateau, level) for level in levels]
        series = np.concatenate(pieces)
        if series.size < self.duration:  # remainder at the top level
            series = np.concatenate(
                [series, constant(self.duration - series.size, levels[-1])]
            )
        return series

    def calibration_ramp(self) -> np.ndarray:
        """Linear ramp across the range for Kneedle threshold discovery."""
        low, high = self.rate_range
        return linear_ramp(self.duration, low, high * 1.2)
