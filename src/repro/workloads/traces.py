"""The TeaStore evaluation trace (Figure 3).

The paper stresses TeaStore with "a realistic, but worst-case workload
for clouds [Shen et al., 2015] with more variance and multiple daily
patterns within the experiment" -- deliberately harsher than the
smooth training profiles.  We compose it from LIMBO primitives: two
superimposed daily patterns of different period, a slow trend, several
sharp bursts (the load peaks that saturate Auth/WebUI/Recommender in
Figure 3) and heavy noise.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.limbo import Burst, LimboProfile

__all__ = ["teastore_trace"]


def teastore_trace(
    duration: int = 7200,
    base: float = 220.0,
    peak: float = 520.0,
    seed: int = 7,
) -> np.ndarray:
    """Bursty multi-daily-pattern arrival trace (requests/second).

    ``peak`` controls the height of the largest bursts relative to the
    container sizing: the experiment dimensions containers so that
    "only large load peaks cause the application to saturate"
    (saturation ratio ~3% of samples).
    """
    if duration < 600:
        raise ValueError("The trace needs at least 600 seconds to show patterns.")
    rng = np.random.default_rng(seed)

    primary = LimboProfile(
        duration=duration,
        base=base,
        seasonal_amplitude=base * 0.30,
        seasonal_period=duration // 4,  # "multiple daily patterns"
        trend_per_second=base * 0.10 / duration,
        noise_std=base * 0.06,
        seed=seed,
    ).generate()

    secondary_period = max(duration // 13, 60)
    t = np.arange(duration, dtype=np.float64)
    secondary = base * 0.12 * np.sin(2.0 * np.pi * t / secondary_period)

    # A handful of sharp bursts at irregular offsets; heights graded so
    # only the largest push services past saturation.
    n_bursts = max(4, duration // 1200)
    offsets = rng.choice(
        np.arange(duration // 10, duration - duration // 10),
        size=n_bursts,
        replace=False,
    )
    burst_series = np.zeros(duration)
    for rank, offset in enumerate(sorted(offsets.tolist())):
        height = (peak - base) * (0.55 + 0.45 * rng.random())
        width = int(30 + 60 * rng.random())
        burst_series += Burst(at=int(offset), width=width, height=height).series(
            duration
        )

    return np.maximum(primary + secondary + burst_series, 1.0)
