"""Workload-intensity generation.

Every generator produces an arrival-rate series (requests/second,
one value per one-second tick):

- :mod:`repro.workloads.patterns` -- primitive shapes: constant,
  linear ramp, sine, noisy sine (the paper's ``sin1000`` /
  ``sinnoise1000`` Solr profiles), step functions.
- :mod:`repro.workloads.limbo` -- LIMBO-style composition of seasonal
  patterns, trends, bursts and noise (von Kistowski et al., 2017).
- :mod:`repro.workloads.ycsb` -- the YCSB core workload mixes A/B/D/F
  used to drive Cassandra.
- :mod:`repro.workloads.locust` -- Locust-style hatch ramps with
  staggered parallel runs (the Sockshop load of section 4.2.1).
- :mod:`repro.workloads.traces` -- the bursty, multi-daily-pattern
  "realistic worst-case" trace driving the TeaStore experiment
  (Figure 3).
"""

from repro.workloads.limbo import LimboProfile
from repro.workloads.locust import locust_ramp, staggered_locust_runs
from repro.workloads.patterns import (
    constant,
    linear_ramp,
    sine,
    sinnoise,
    step_levels,
)
from repro.workloads.traces import teastore_trace
from repro.workloads.ycsb import YCSB_MIXES, YcsbWorkload

__all__ = [
    "constant",
    "linear_ramp",
    "sine",
    "sinnoise",
    "step_levels",
    "LimboProfile",
    "locust_ramp",
    "staggered_locust_runs",
    "teastore_trace",
    "YcsbWorkload",
    "YCSB_MIXES",
]
