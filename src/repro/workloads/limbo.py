"""LIMBO-style load-intensity profiles (von Kistowski et al., 2017).

LIMBO describes a load profile as the sum of a *seasonal* component
(repeating daily patterns), a *trend*, *bursts* and *noise*.  The
paper uses LIMBO via HTTPLoadGenerator for the Solr workloads and the
TeaStore trace; :class:`LimboProfile` provides the same compositional
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LimboProfile", "Burst"]


@dataclass(frozen=True)
class Burst:
    """A transient surge: triangular spike centred at ``at`` seconds."""

    at: int
    width: int
    height: float

    def series(self, duration: int) -> np.ndarray:
        if self.width < 1:
            raise ValueError("Burst width must be >= 1.")
        t = np.arange(duration)
        distance = np.abs(t - self.at)
        shape = np.maximum(0.0, 1.0 - distance / self.width)
        return self.height * shape


@dataclass
class LimboProfile:
    """Composable load profile: seasonal + trend + bursts + noise.

    Parameters
    ----------
    duration:
        Length of the run in seconds.
    base:
        Offset added everywhere (the profile's minimum level).
    seasonal_amplitude, seasonal_period:
        Sinusoidal daily pattern; ``seasonal_period`` in seconds.
    trend_per_second:
        Linear drift added over the run.
    bursts:
        Transient spikes.
    noise_std:
        White-noise standard deviation.
    seed:
        RNG seed for the noise component.
    """

    duration: int
    base: float = 100.0
    seasonal_amplitude: float = 0.0
    seasonal_period: int = 600
    trend_per_second: float = 0.0
    bursts: list[Burst] = field(default_factory=list)
    noise_std: float = 0.0
    seed: int | None = None

    def generate(self) -> np.ndarray:
        """Materialise the profile into a requests/second series."""
        if self.duration < 1:
            raise ValueError("duration must be >= 1.")
        t = np.arange(self.duration, dtype=np.float64)
        series = np.full(self.duration, float(self.base))
        if self.seasonal_amplitude:
            series += self.seasonal_amplitude * np.sin(
                2.0 * np.pi * t / self.seasonal_period - np.pi / 2.0
            )
        if self.trend_per_second:
            series += self.trend_per_second * t
        for burst in self.bursts:
            series += burst.series(self.duration)
        if self.noise_std:
            rng = np.random.default_rng(self.seed)
            series += rng.normal(0.0, self.noise_std, size=self.duration)
        return np.maximum(series, 1.0)
