"""Locust-style hatch ramps (the Sockshop load of section 4.2.1).

Locust slowly "hatches" clients up to a target count, then applies a
constant load.  The paper starts three 1000-second runs in parallel at
staggered offsets (after 1000, 3000 and 5000 seconds): each run ramps
to 700 concurrent clients over 700 seconds and holds for 300 seconds.
"""

from __future__ import annotations

import numpy as np

__all__ = ["locust_ramp", "staggered_locust_runs"]


def locust_ramp(
    duration: int = 1000,
    max_clients: int = 700,
    hatch_seconds: int = 700,
    requests_per_client: float = 1.0,
) -> np.ndarray:
    """One Locust run: linear hatch to ``max_clients`` then constant.

    Returns requests/second: ``clients(t) * requests_per_client``.
    """
    if duration < 1 or hatch_seconds < 1:
        raise ValueError("duration and hatch_seconds must be >= 1.")
    if hatch_seconds > duration:
        raise ValueError("hatch_seconds cannot exceed duration.")
    t = np.arange(duration, dtype=np.float64)
    clients = np.minimum(t / hatch_seconds, 1.0) * max_clients
    return np.maximum(clients * requests_per_client, 1.0)


def staggered_locust_runs(
    total_duration: int = 7000,
    starts: tuple[int, ...] = (1000, 3000, 5000),
    run_duration: int = 1000,
    max_clients: int = 700,
    hatch_seconds: int = 700,
    requests_per_client: float = 1.0,
) -> np.ndarray:
    """Superimpose several staggered Locust runs (the paper's setup).

    The aggregate load therefore has quiet stretches, single-run load
    and overlap regions where two runs stack.
    """
    if total_duration < 1:
        raise ValueError("total_duration must be >= 1.")
    series = np.zeros(total_duration)
    ramp = locust_ramp(run_duration, max_clients, hatch_seconds, requests_per_client)
    for start in starts:
        if start < 0 or start >= total_duration:
            raise ValueError(f"Run start {start} outside [0, {total_duration}).")
        end = min(start + run_duration, total_duration)
        series[start:end] += ramp[: end - start]
    return np.maximum(series, 1.0)
