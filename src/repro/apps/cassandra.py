"""Apache Cassandra service model under YCSB mixes (section 3.2.1).

The database holds 30 million ~1 KB records (~30 GB, plus ~6 GB of
index and log files).  Which resource binds depends on the YCSB mix
and the cgroup limits -- exactly the diversity the paper exploits
(Table 1 runs 11-25):

- unlimited, mix B (read-heavy): read-path CPU binds first
  (**Host-CPU**, ~55K op/s on 48 cores);
- unlimited, mixes A and D: coordinator/replication traffic is heavy
  (updates replicate; D ships whole recent records), so the NIC binds
  first (**Network-Util**);
- 20 cores + 30 GB memory limit: the dataset no longer fits, reads
  span multiple SSTables and compaction amplifies writes -- per-op
  disk traffic of hundreds of KB makes **IO-Bandwidth** bind at
  ~1K op/s;
- 6 cores, unlimited memory: **Container-CPU**;
- 1 core, mix F (read-modify-write): every op syncs the single
  commit-log writer (~5 ms serialized), so the IO queue saturates near
  200 op/s (**IO-Wait**) long before the core does.
"""

from __future__ import annotations

from repro.apps.base import ApplicationModel, ServiceSpec
from repro.cluster.resources import GIB
from repro.workloads.ycsb import YCSB_MIXES, YcsbMix

__all__ = ["cassandra_service", "cassandra_application"]

# Per-operation CPU cost (core-seconds) of the read and write paths.
_READ_CPU = 0.0009
_WRITE_CPU = 0.0003
# Workload D reads hot, memtable-resident records: cheaper read path.
_READ_LATEST_CPU = 0.00045

# Coordinator + replication network bytes per operation.
_NET_PER_OP = {
    "A": 18e3,  # update replication fan-out
    "B": 1.7e3,  # single-field reads
    "D": 14e3,  # whole recent records shipped
    "F": 6e3,
}

# Commit-log fsync time per write when the instance is IO-constrained
# (single serialized writer).
_FSYNC_SECONDS = 0.005

_DATASET_BYTES = 36 * GIB  # 30 GB data + indexes and logs


def cassandra_service(
    mix: YcsbMix | str = "B",
    *,
    demand_scale: float = 1.0,
    io_heavy: bool = False,
    fsync_bound: bool = False,
) -> ServiceSpec:
    """Cassandra spec for one YCSB mix.

    Parameters
    ----------
    mix:
        YCSB mix (name or :class:`YcsbMix`).
    demand_scale:
        CPU-demand multiplier; the paper's small-quota runs behave as
        if per-op work were lower (JVM sized down), which this knob
        expresses (documented per run in ``repro.datasets.configs``).
    io_heavy:
        Model the memory-limited configuration: reads span SSTables on
        disk and compaction amplifies writes (hundreds of KB of disk
        traffic per op).
    fsync_bound:
        Model the commit-log-fsync-per-op behaviour of workload F on a
        starved instance (Table 1 runs 24-25).
    """
    if isinstance(mix, str):
        mix = YCSB_MIXES[mix]
    read_cpu = _READ_LATEST_CPU if mix.read_latest else _READ_CPU
    write_cpu = _WRITE_CPU * (2.0 if mix.read_modify_write else 1.0)
    cpu = (mix.read_fraction * read_cpu + mix.write_fraction * write_cpu) * demand_scale
    if mix.read_modify_write:
        cpu += mix.read_fraction * read_cpu * demand_scale  # the read half of RMW

    if io_heavy:
        disk_read = mix.read_fraction * 600e3  # multi-SSTable reads
        disk_write = mix.write_fraction * 300e3  # compaction amplification
    else:
        disk_read = 0.0
        disk_write = mix.write_fraction * 2e3  # commit log append

    # Read-modify-write makes *every* operation hit the commit log.
    writing_ops = 1.0 if mix.read_modify_write else mix.write_fraction
    serial_io = _FSYNC_SECONDS * writing_ops if fsync_bound else 0.0

    return ServiceSpec(
        name="cassandra",
        cpu_seconds=cpu,
        base_latency=0.003,
        mem_base_bytes=8 * GIB,  # JVM heap + memtables
        mem_per_connection_bytes=1e6,
        working_set_bytes=_DATASET_BYTES,
        ws_access_bytes=2e3 * (1.0 - mix.cache_hit_bonus),
        thrash_amplification=8.0,
        disk_read_bytes=disk_read,
        disk_write_bytes=disk_write,
        serial_io_seconds=serial_io,
        net_in_bytes=1e3,
        net_out_bytes=_NET_PER_OP[mix.name],
        mem_bandwidth_bytes=60e3,
        visits=1.0,
    )


def cassandra_application(
    mix: YcsbMix | str = "B",
    *,
    demand_scale: float = 1.0,
    io_heavy: bool = False,
    fsync_bound: bool = False,
) -> ApplicationModel:
    """Cassandra as a single-service application."""
    application = ApplicationModel(name="cassandra")
    application.add_service(
        cassandra_service(
            mix,
            demand_scale=demand_scale,
            io_heavy=io_heavy,
            fsync_bound=fsync_bound,
        )
    )
    return application
