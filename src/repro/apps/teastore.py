"""TeaStore microservice application (von Kistowski et al., 2018).

The second evaluation application: a seven-service online storefront
(section 4.2.1).  Services and their roles:

- **webui** answers HTTP requests and renders the front end;
- **imageprovider** serves product images to the WebUI;
- **auth** handles encryption/authentication (BCrypt-style hashing
  makes it CPU-hungry -- it gets 2 cores in the paper's deployment and
  is still the most frequently saturated service in Figure 3);
- **recommender** runs ML recommendations;
- **persistence** fronts permanent storage;
- **registry** does service discovery / load balancing (touched by
  every inter-service call, individually cheap);
- **db** is the MariaDB instance behind persistence.

Visit ratios reflect the paper's user actions (log in, browse, add to
cart, log out).  Calibration targets the Figure-3 behaviour: with the
paper's container sizing, only large load peaks of the trace saturate,
and the saturation order is Auth (~500 req/s of application load),
then Recommender (~555), then WebUI (~625) -- Auth/Recommender are the
paper's hottest services and the ones every Table-7 policy scales.
"""

from __future__ import annotations

from repro.apps.base import ApplicationModel, ServiceSpec
from repro.cluster.resources import GIB

__all__ = ["teastore_application", "TEASTORE_SERVICES"]

TEASTORE_SERVICES = (
    "webui",
    "imageprovider",
    "auth",
    "recommender",
    "persistence",
    "registry",
    "db",
)


def teastore_application() -> ApplicationModel:
    """The seven-service TeaStore model."""
    application = ApplicationModel(name="teastore")
    application.add_service(
        ServiceSpec(
            name="webui",
            cpu_seconds=0.0016,  # 1-core knee ~625 req/s
            base_latency=0.012,
            mem_base_bytes=1 * GIB,
            mem_per_connection_bytes=4e6,
            net_in_bytes=1.5e3,
            net_out_bytes=40e3,
            visits=1.0,
        )
    )
    application.add_service(
        ServiceSpec(
            name="imageprovider",
            cpu_seconds=0.0012,
            base_latency=0.006,
            mem_base_bytes=1 * GIB,
            working_set_bytes=2 * GIB,  # image cache
            ws_access_bytes=30e3,
            net_out_bytes=80e3,  # product images
            visits=0.6,
        )
    )
    application.add_service(
        ServiceSpec(
            name="auth",
            cpu_seconds=0.008,  # password hashing; 2-core knee ~250 visits/s
            base_latency=0.010,
            mem_base_bytes=0.8 * GIB,
            mem_per_connection_bytes=6e6,  # session state per in-flight login
            net_out_bytes=2e3,
            visits=0.5,  # log in / log out actions
        )
    )
    application.add_service(
        ServiceSpec(
            name="recommender",
            cpu_seconds=0.0060,  # ML scoring; 1-core knee ~165 visits/s
            base_latency=0.015,
            mem_base_bytes=1.2 * GIB,
            mem_per_connection_bytes=6e6,  # per-request feature matrices
            mem_bandwidth_bytes=200e3,
            net_out_bytes=3e3,
            visits=0.3,  # browse actions trigger recommendations
        )
    )
    application.add_service(
        ServiceSpec(
            name="persistence",
            cpu_seconds=0.0015,
            base_latency=0.005,
            mem_base_bytes=1 * GIB,
            net_out_bytes=6e3,
            visits=0.8,
        )
    )
    application.add_service(
        ServiceSpec(
            name="registry",
            cpu_seconds=0.0008,  # touched by every call, individually cheap
            base_latency=0.002,
            mem_base_bytes=0.5 * GIB,
            net_out_bytes=500.0,
            visits=1.0,
        )
    )
    application.add_service(
        ServiceSpec(
            name="db",
            cpu_seconds=0.0020,
            base_latency=0.004,
            mem_base_bytes=1.5 * GIB,
            working_set_bytes=1.5 * GIB,
            ws_access_bytes=6e3,
            disk_write_bytes=4e3,
            net_out_bytes=4e3,
            visits=0.8,
        )
    )
    return application
