"""Service and application performance models.

A :class:`ServiceSpec` captures the *operational* profile of one
microservice as per-request resource demands; given an arrival rate
and the capacities granted by the node, utilization laws yield the
per-resource load, the bottleneck, throughput and response time.
An :class:`ApplicationModel` is a set of services with visit counts
(how many times one end-user request touches each service), giving
end-to-end KPIs.

This operational-law approach reproduces what the classifier needs:
throughput rises linearly with load until the bottleneck resource
saturates, response time stretches hyperbolically at the knee, and
requests time out when the queue outgrows client patience -- the KPI
shapes of the paper's Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.queueing import BacklogQueue, mm1_response_time
from repro.cluster.resources import Resource

__all__ = ["ServiceSpec", "InstanceDemand", "InstancePerformance", "ApplicationModel"]


@dataclass(frozen=True)
class ServiceSpec:
    """Per-request resource demands of one microservice.

    All ``*_bytes`` / ``*_seconds`` fields are per processed request
    unless stated otherwise.

    Attributes
    ----------
    cpu_seconds:
        CPU time per request (core-seconds).
    base_latency:
        Zero-load response time (seconds).
    mem_base_bytes:
        Resident footprint independent of load (heap, code).
    mem_per_connection_bytes:
        Memory per concurrent in-flight request.
    working_set_bytes:
        Data the service wants page-cached (index, dataset).
    ws_access_bytes:
        Bytes of the working set touched per request; the evicted
        fraction of these accesses becomes page-in disk traffic.
    thrash_amplification:
        Disk bytes fetched per missed working-set byte (readahead /
        block-granularity blow-up).
    paged_io_random_fraction:
        Fraction of thrash traffic that is seek-bound (hits the IO
        queue) rather than sequential: ~1.0 for swap-in (Memcached),
        low for readahead-friendly mmap-ed files (Solr's index).
    disk_read_bytes, disk_write_bytes:
        Intrinsic disk traffic (logs, compaction, persistence).
    serial_io_seconds:
        Time on a serialized IO path (fsync of a single commit log);
        utilization of the DISK_QUEUE resource, capacity 1.
    net_in_bytes, net_out_bytes:
        NIC traffic.
    mem_bandwidth_bytes:
        DRAM traffic (how Memcached saturates memory bandwidth).
    visits:
        Mean visits to this service per end-user application request.
    """

    name: str
    cpu_seconds: float
    base_latency: float = 0.004
    mem_base_bytes: float = 256e6
    mem_per_connection_bytes: float = 1e6
    working_set_bytes: float = 0.0
    ws_access_bytes: float = 0.0
    thrash_amplification: float = 32.0
    paged_io_random_fraction: float = 1.0
    disk_read_bytes: float = 0.0
    disk_write_bytes: float = 0.0
    serial_io_seconds: float = 0.0
    net_in_bytes: float = 2e3
    net_out_bytes: float = 8e3
    mem_bandwidth_bytes: float = 50e3
    visits: float = 1.0

    def __post_init__(self):
        numeric = (
            self.cpu_seconds,
            self.base_latency,
            self.mem_base_bytes,
            self.mem_per_connection_bytes,
            self.working_set_bytes,
            self.ws_access_bytes,
            self.disk_read_bytes,
            self.disk_write_bytes,
            self.serial_io_seconds,
            self.net_in_bytes,
            self.net_out_bytes,
            self.mem_bandwidth_bytes,
        )
        if any(value < 0 for value in numeric):
            raise ValueError(f"Service {self.name}: demands must be non-negative.")
        if self.visits <= 0:
            raise ValueError(f"Service {self.name}: visits must be positive.")

    def scaled(self, factor: float, **changes) -> "ServiceSpec":
        """A copy with CPU demand scaled (workload-richness knob)."""
        return replace(self, cpu_seconds=self.cpu_seconds * factor, **changes)


@dataclass(slots=True)
class InstanceDemand:
    """Raw per-tick resource demands of one instance, pre-arbitration."""

    arrival_rate: float
    cpu_cores: float
    disk_bytes: float  # sequential traffic against the shared disk
    random_disk_bytes: float  # page-in / seek-bound traffic
    network_bytes: float
    memory_bandwidth_bytes: float
    serial_io: float  # utilization of the serialized IO path
    ws_access_bytes: float


@dataclass(slots=True)
class InstancePerformance:
    """Resolved per-tick performance of one instance."""

    throughput: float
    dropped: float
    response_time: float
    utilizations: dict[Resource, float]
    bottleneck: Resource
    concurrency: float

    @property
    def max_utilization(self) -> float:
        return max(self.utilizations.values())


def _ratio(load: float, capacity: float) -> float:
    """Utilization of one resource (load per unit of granted capacity)."""
    if capacity <= 0.0:
        return 0.0 if load <= 0.0 else 100.0
    return load / capacity


class InstanceRuntime:
    """Mutable runtime of one service instance (its queue state)."""

    def __init__(self, spec: ServiceSpec, timeout: float = 3.0):
        self.spec = spec
        self.queue = BacklogQueue(timeout=timeout)
        # Concurrency observed last tick (Little's law); drives the
        # connection-dependent memory footprint: a saturated service
        # holds many in-flight requests and their buffers.
        self.last_concurrency = 0.0

    def demand(self, arrival_rate: float) -> InstanceDemand:
        """Resource demands if ``arrival_rate`` requests/s arrive now."""
        spec = self.spec
        served = arrival_rate + self.queue.backlog  # queued work still consumes
        return InstanceDemand(
            arrival_rate=arrival_rate,
            cpu_cores=served * spec.cpu_seconds,
            disk_bytes=served * (spec.disk_read_bytes + spec.disk_write_bytes),
            random_disk_bytes=0.0,  # filled in after memory accounting
            network_bytes=served * (spec.net_in_bytes + spec.net_out_bytes),
            memory_bandwidth_bytes=served * spec.mem_bandwidth_bytes,
            serial_io=served * spec.serial_io_seconds,
            ws_access_bytes=served * spec.ws_access_bytes,
        )

    def resolve(
        self,
        demand: InstanceDemand,
        *,
        cpu_capacity: float,
        disk_capacity: float,
        random_disk_capacity: float,
        network_capacity: float,
        memory_bandwidth_capacity: float,
        memory_utilization: float,
    ) -> InstancePerformance:
        """Turn granted capacities into throughput/latency for one tick.

        ``demand.disk_bytes`` must already include thrash traffic;
        ``demand.random_disk_bytes`` is its seek-bound portion.
        """
        spec = self.spec

        util_cpu = _ratio(demand.cpu_cores, cpu_capacity)
        util_disk = _ratio(demand.disk_bytes, disk_capacity)
        util_queue = demand.serial_io + _ratio(
            demand.random_disk_bytes, random_disk_capacity
        )
        util_net = _ratio(demand.network_bytes, network_capacity)
        util_membw = _ratio(
            demand.memory_bandwidth_bytes, memory_bandwidth_capacity
        )
        utilizations = {
            Resource.CPU: util_cpu,
            Resource.DISK_BANDWIDTH: util_disk,
            Resource.DISK_QUEUE: util_queue,
            Resource.NETWORK: util_net,
            Resource.MEMORY_BANDWIDTH: util_membw,
            Resource.MEMORY: memory_utilization / 100.0,
        }
        # MEMORY utilization is a state, not a processing rate: it does not
        # cap throughput by itself (its effects arrive via page-in traffic),
        # so exclude it from the rate bottleneck.  Ties keep the earliest
        # resource in declaration order, as dict-iteration max() did.
        bottleneck = Resource.CPU
        rho = util_cpu
        if util_disk > rho:
            bottleneck, rho = Resource.DISK_BANDWIDTH, util_disk
        if util_queue > rho:
            bottleneck, rho = Resource.DISK_QUEUE, util_queue
        if util_net > rho:
            bottleneck, rho = Resource.NETWORK, util_net
        if util_membw > rho:
            bottleneck, rho = Resource.MEMORY_BANDWIDTH, util_membw

        served = demand.arrival_rate + self.queue.backlog
        if rho > 0.0 and served > 0.0:
            capacity_rps = served / rho
        else:
            capacity_rps = float("inf")
        completed, dropped = self.queue.offer(demand.arrival_rate, capacity_rps)

        response = mm1_response_time(spec.base_latency, min(rho, 1.0))
        if capacity_rps > 0 and self.queue.backlog > 0:
            response += self.queue.backlog / capacity_rps
        response = min(response, self.queue.timeout)

        concurrency = completed * response  # Little's law
        self.last_concurrency = concurrency
        return InstancePerformance(
            throughput=completed,
            dropped=dropped,
            response_time=response,
            utilizations=utilizations,
            bottleneck=bottleneck,
            concurrency=concurrency,
        )


@dataclass
class ApplicationModel:
    """An application: services with visit ratios and KPI composition.

    ``services`` maps service name to its spec.  Replica management is
    the engine's job; the model only defines structure and how KPIs
    compose (response times add along the chain weighted by visits;
    throughput is capped by the worst service).
    """

    name: str
    services: dict[str, ServiceSpec] = field(default_factory=dict)

    def add_service(self, spec: ServiceSpec) -> None:
        if spec.name in self.services:
            raise ValueError(f"Duplicate service {spec.name} in {self.name}.")
        self.services[spec.name] = spec

    def service_names(self) -> list[str]:
        return list(self.services)

    def end_to_end(
        self, per_service: dict[str, list[InstancePerformance]]
    ) -> tuple[float, float, float]:
        """Compose per-instance results into application KPIs.

        Returns ``(throughput, response_time, dropped)`` where
        throughput is end-user requests/s (capped by the slowest
        service), response time is the visit-weighted sum of mean
        service latencies, and dropped counts end-user requests lost.
        """
        throughput = float("inf")
        response_time = 0.0
        dropped = 0.0
        for name, spec in self.services.items():
            performances = per_service.get(name, [])
            if not performances:
                raise ValueError(f"No instances reported for service {name}.")
            service_throughput = 0.0
            service_dropped = 0.0
            weighted_response = 0.0
            for p in performances:
                service_throughput += p.throughput
                service_dropped += p.dropped
                weighted_response += p.response_time * max(p.throughput, 1e-9)
            mean_response = weighted_response / max(service_throughput, 1e-9)
            throughput = min(throughput, service_throughput / spec.visits)
            response_time += spec.visits * mean_response
            dropped = max(dropped, service_dropped / spec.visits)
        return throughput, response_time, dropped
