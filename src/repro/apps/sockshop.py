"""Sock Shop microservice application (Weaveworks demo, section 4.2.1).

The third evaluation application: fourteen services.  The paper's
Locust profile has users log in, browse the catalogue, fill carts and
place orders; load ramps to 700 concurrent clients.

Calibration targets the Table-8 behaviour: ~10% of samples saturated
(the tail of each ramp plus the constant-load plateau), with the
front-end and carts the services closest to their knees, and enough
lightly-loaded services that the OR aggregation produces noticeably
more false positives than on TeaStore.
"""

from __future__ import annotations

from repro.apps.base import ApplicationModel, ServiceSpec
from repro.cluster.resources import GIB

__all__ = ["sockshop_application", "SOCKSHOP_SERVICES"]

SOCKSHOP_SERVICES = (
    "edge-router",
    "front-end",
    "payment",
    "catalogue",
    "catalogue-db",
    "carts",
    "carts-db",
    "user",
    "user-db",
    "orders",
    "orders-db",
    "shipping",
    "queue",
    "queue-master",
)

# (cpu_seconds, visits, net_out_bytes, extras) per service.  CPU demands
# put the 1-core front-end knee near 640 req/s -- just under the 700-
# client plateau -- and carts near its knee at the plateau, while the
# *-db and queue services idle well below theirs.
_PROFILES: dict[str, dict] = {
    "edge-router": dict(cpu_seconds=0.0006, visits=1.0, net_out_bytes=2e3),
    "front-end": dict(
        cpu_seconds=0.00156, visits=1.0, net_out_bytes=45e3, base_latency=0.010
    ),
    "payment": dict(cpu_seconds=0.0020, visits=0.15, net_out_bytes=1e3),
    "catalogue": dict(cpu_seconds=0.0011, visits=0.7, net_out_bytes=8e3),
    "catalogue-db": dict(
        cpu_seconds=0.0009,
        visits=0.7,
        net_out_bytes=6e3,
        working_set_bytes=1 * GIB,
        ws_access_bytes=4e3,
    ),
    "carts": dict(cpu_seconds=0.0021, visits=0.6, net_out_bytes=4e3),
    "carts-db": dict(
        cpu_seconds=0.0010,
        visits=0.6,
        net_out_bytes=3e3,
        working_set_bytes=1 * GIB,
        ws_access_bytes=3e3,
        disk_write_bytes=2e3,
    ),
    "user": dict(cpu_seconds=0.0018, visits=0.35, net_out_bytes=2e3),
    "user-db": dict(
        cpu_seconds=0.0008,
        visits=0.35,
        net_out_bytes=2e3,
        working_set_bytes=0.5 * GIB,
        ws_access_bytes=2e3,
    ),
    "orders": dict(cpu_seconds=0.0024, visits=0.15, net_out_bytes=3e3),
    "orders-db": dict(
        cpu_seconds=0.0010,
        visits=0.15,
        net_out_bytes=2e3,
        working_set_bytes=0.5 * GIB,
        ws_access_bytes=2e3,
        disk_write_bytes=3e3,
    ),
    "shipping": dict(cpu_seconds=0.0012, visits=0.15, net_out_bytes=1e3),
    "queue": dict(cpu_seconds=0.0005, visits=0.15, net_out_bytes=1e3),
    "queue-master": dict(cpu_seconds=0.0008, visits=0.15, net_out_bytes=1e3),
}


def sockshop_application() -> ApplicationModel:
    """The fourteen-service Sock Shop model."""
    application = ApplicationModel(name="sockshop")
    for service in SOCKSHOP_SERVICES:
        profile = dict(_PROFILES[service])
        profile.setdefault("base_latency", 0.005)
        profile.setdefault("mem_base_bytes", 0.6 * GIB)
        application.add_service(ServiceSpec(name=service, **profile))
    return application
