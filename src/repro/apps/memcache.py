"""Memcached service model (paper section 3.2.1).

A distributed in-memory object cache warmed with a 10 GB Twitter
dataset.  Per-operation CPU is tiny (~17 us), so an unconstrained
instance saturates *memory bandwidth* first (Table 1 run 7,
Mem-Bandwidth at 2K-50K req/s).  With a 1-core quota it becomes
Container-CPU-bound around 60K req/s (run 8).  Under an 8 GB / 4 GB
memory limit part of the dataset is evicted and every miss swaps pages
back in -- random disk traffic that saturates the IO queue (runs 9-10,
IO-Queue).
"""

from __future__ import annotations

from repro.apps.base import ApplicationModel, ServiceSpec
from repro.cluster.resources import GIB

__all__ = ["memcache_service", "memcache_application"]


def memcache_service(demand_scale: float = 1.0) -> ServiceSpec:
    """The Memcached service spec."""
    return ServiceSpec(
        name="memcache",
        cpu_seconds=1.67e-5 * demand_scale,  # ~60K req/s per core
        base_latency=0.0006,
        mem_base_bytes=0.5 * GIB,
        mem_per_connection_bytes=64e3,
        working_set_bytes=10 * GIB,  # the Twitter dataset
        ws_access_bytes=4e3,  # one object + slab overhead per get
        thrash_amplification=4.0,  # swap-in with readahead
        disk_read_bytes=0.0,
        disk_write_bytes=0.0,
        serial_io_seconds=0.0,
        net_in_bytes=200.0,
        net_out_bytes=1.5e3,  # cached value
        mem_bandwidth_bytes=220e3,  # slab copies; binds ~45K req/s at 10 GB/s
        visits=1.0,
    )


def memcache_application(demand_scale: float = 1.0) -> ApplicationModel:
    """Memcached as a single-service application."""
    application = ApplicationModel(name="memcache")
    application.add_service(memcache_service(demand_scale))
    return application
