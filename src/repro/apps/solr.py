"""Apache Solr service model (paper section 3.2.1).

Enterprise search over a 12 GB crawled index.  With the index fully
page-cached (the training host has 125 GiB RAM) the benchmark is
CPU-bound: each 1-5-term query costs tens of milliseconds of CPU for
scoring and returns a top-10 document list.  Under a container memory
limit the index no longer fits, and index-file reads spill to disk --
the IO-Bandwidth-bottlenecked configurations of Table 1 (runs 3-5).

Calibration: ~60 ms CPU per query puts the unlimited-host knee near
800 req/s (Figure 2 shows the knee around 700 req/s) and a 3-core
container's knee near 50 req/s.
"""

from __future__ import annotations

from repro.apps.base import ApplicationModel, ServiceSpec
from repro.cluster.resources import GIB

__all__ = ["solr_service", "solr_application"]


def solr_service(demand_scale: float = 1.0) -> ServiceSpec:
    """The Solr search service spec.

    ``demand_scale`` multiplies CPU demand (query richness knob used
    to match individual Table-1 runs).
    """
    return ServiceSpec(
        name="solr",
        cpu_seconds=0.060 * demand_scale,
        base_latency=0.020,
        mem_base_bytes=2 * GIB,  # JVM heap
        mem_per_connection_bytes=2e6,
        working_set_bytes=12 * GIB,  # the crawled index
        ws_access_bytes=200e3,  # posting lists touched per query
        thrash_amplification=8.0,  # evicted index pages re-read with readahead
        paged_io_random_fraction=0.2,  # mmap-ed index: mostly sequential
        disk_read_bytes=0.0,
        disk_write_bytes=2e3,  # request logging
        serial_io_seconds=0.0,
        net_in_bytes=600.0,  # query terms
        net_out_bytes=20e3,  # top-10 result documents
        mem_bandwidth_bytes=300e3,
        visits=1.0,
    )


def solr_application(demand_scale: float = 1.0) -> ApplicationModel:
    """Solr as a single-service application (how it is trained on)."""
    application = ApplicationModel(name="solr")
    application.add_service(solr_service(demand_scale))
    return application
