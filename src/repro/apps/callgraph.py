"""Microservice call graphs (networkx substrate).

The application models express *visit counts* (how often one end-user
request touches each service).  Those numbers come from the services'
call structure: the WebUI calls the image provider and the registry,
the persistence layer calls the database, and so on.  This module
makes the structure explicit:

- :class:`CallGraph` wraps a ``networkx.DiGraph`` whose edges carry
  ``calls`` (invocations per caller-request) and ``request_bytes`` /
  ``response_bytes``;
- :meth:`CallGraph.visit_counts` propagates one end-user request from
  the entry service through the graph (requires a DAG, which
  request/response microservice architectures are);
- :meth:`CallGraph.cross_node_traffic` accounts the east-west bytes
  per end-user request that cross node boundaries under a placement --
  the quantity that distinguishes the paper's 10 Gb training network
  from the 1 Gb evaluation LAN;
- :func:`teastore_call_graph` / :func:`sockshop_call_graph` encode the
  two evaluation applications' topologies (consistent with the visit
  ratios in :mod:`repro.apps.teastore` / :mod:`repro.apps.sockshop`).
"""

from __future__ import annotations

import networkx as nx

__all__ = ["CallGraph", "teastore_call_graph", "sockshop_call_graph"]


class CallGraph:
    """A typed wrapper around a service-call DAG."""

    def __init__(self, entry: str):
        self.graph = nx.DiGraph()
        self.entry = entry
        self.graph.add_node(entry)

    def add_call(
        self,
        caller: str,
        callee: str,
        calls: float = 1.0,
        request_bytes: float = 1e3,
        response_bytes: float = 4e3,
    ) -> "CallGraph":
        """Declare that each request to ``caller`` makes ``calls``
        invocations of ``callee``."""
        if calls <= 0:
            raise ValueError("calls must be positive.")
        if request_bytes < 0 or response_bytes < 0:
            raise ValueError("byte counts must be non-negative.")
        self.graph.add_edge(
            caller,
            callee,
            calls=calls,
            request_bytes=request_bytes,
            response_bytes=response_bytes,
        )
        return self

    def services(self) -> list[str]:
        return list(self.graph.nodes)

    def validate(self) -> None:
        """The propagation model requires an acyclic graph reachable
        from the entry point."""
        if not nx.is_directed_acyclic_graph(self.graph):
            cycle = nx.find_cycle(self.graph)
            raise ValueError(f"Call graph has a cycle: {cycle}.")
        unreachable = set(self.graph.nodes) - set(
            nx.descendants(self.graph, self.entry)
        ) - {self.entry}
        if unreachable:
            raise ValueError(
                f"Services unreachable from {self.entry}: {sorted(unreachable)}."
            )

    def visit_counts(self) -> dict[str, float]:
        """Expected visits per service for one end-user request."""
        self.validate()
        visits = {service: 0.0 for service in self.graph.nodes}
        visits[self.entry] = 1.0
        for service in nx.topological_sort(self.graph):
            for _, callee, data in self.graph.out_edges(service, data=True):
                visits[callee] += visits[service] * data["calls"]
        return visits

    def edge_traffic(self) -> dict[tuple[str, str], float]:
        """Bytes per end-user request flowing over each call edge."""
        visits = self.visit_counts()
        traffic = {}
        for caller, callee, data in self.graph.edges(data=True):
            per_request = visits[caller] * data["calls"] * (
                data["request_bytes"] + data["response_bytes"]
            )
            traffic[(caller, callee)] = per_request
        return traffic

    def cross_node_traffic(self, placement: dict[str, str]) -> float:
        """East-west bytes per end-user request crossing node boundaries.

        ``placement`` maps service name to node name; co-located calls
        stay on the loopback and cost nothing on the LAN.
        """
        missing = set(self.graph.nodes) - set(placement)
        if missing:
            raise ValueError(f"No placement for services: {sorted(missing)}.")
        total = 0.0
        for (caller, callee), per_request in self.edge_traffic().items():
            if placement[caller] != placement[callee]:
                total += per_request
        return total

    def fan_out(self, service: str) -> int:
        """Number of downstream services a service calls directly."""
        return self.graph.out_degree(service)


def teastore_call_graph() -> CallGraph:
    """TeaStore's seven-service topology (von Kistowski et al., 2018).

    The WebUI fronts everything; every internal call consults the
    registry for discovery; persistence fronts the database.  Edge
    multiplicities are consistent with the visit ratios in
    :mod:`repro.apps.teastore`.
    """
    graph = CallGraph(entry="webui")
    graph.add_call("webui", "imageprovider", calls=0.6, response_bytes=80e3)
    graph.add_call("webui", "auth", calls=0.5, response_bytes=2e3)
    graph.add_call("webui", "recommender", calls=0.3, response_bytes=3e3)
    graph.add_call("webui", "persistence", calls=0.8, response_bytes=6e3)
    graph.add_call("webui", "registry", calls=1.0, response_bytes=500.0)
    graph.add_call("persistence", "db", calls=1.0, response_bytes=4e3)
    return graph


def sockshop_call_graph() -> CallGraph:
    """Sock Shop's fourteen-service topology (Weaveworks demo)."""
    graph = CallGraph(entry="edge-router")
    graph.add_call("edge-router", "front-end", calls=1.0, response_bytes=45e3)
    graph.add_call("front-end", "catalogue", calls=0.7, response_bytes=8e3)
    graph.add_call("front-end", "carts", calls=0.6, response_bytes=4e3)
    graph.add_call("front-end", "user", calls=0.35, response_bytes=2e3)
    graph.add_call("front-end", "orders", calls=0.15, response_bytes=3e3)
    graph.add_call("catalogue", "catalogue-db", calls=1.0, response_bytes=6e3)
    graph.add_call("carts", "carts-db", calls=1.0, response_bytes=3e3)
    graph.add_call("user", "user-db", calls=1.0, response_bytes=2e3)
    graph.add_call("orders", "orders-db", calls=1.0, response_bytes=2e3)
    graph.add_call("orders", "payment", calls=1.0, response_bytes=1e3)
    graph.add_call("orders", "shipping", calls=1.0, response_bytes=1e3)
    graph.add_call("shipping", "queue", calls=1.0, response_bytes=1e3)
    graph.add_call("queue", "queue-master", calls=1.0, response_bytes=1e3)
    return graph
