"""Queueing models of the benchmark applications.

Training services (paper section 3.2.1):

- :mod:`repro.apps.solr` -- Apache Solr, CPU-bound enterprise search
  (12 GB in-memory index).
- :mod:`repro.apps.memcache` -- Memcached, memory-bandwidth-bound
  object cache (10 GB Twitter dataset) that becomes IO-queue-bound
  under a memory limit.
- :mod:`repro.apps.cassandra` -- Apache Cassandra under YCSB mixes,
  tunable between CPU, network, IO-bandwidth and IO-wait bottlenecks.

Evaluation applications (section 4, never used for training):

- :mod:`repro.apps.elgg` -- three-tier web service (Elgg front-end,
  InnoDB database, Memcache).
- :mod:`repro.apps.teastore` -- the 7-service TeaStore storefront.
- :mod:`repro.apps.sockshop` -- the 14-service Sockshop storefront.
"""

from repro.apps.base import ApplicationModel, ServiceSpec
from repro.apps.callgraph import (
    CallGraph,
    sockshop_call_graph,
    teastore_call_graph,
)
from repro.apps.cassandra import cassandra_application
from repro.apps.elgg import elgg_application
from repro.apps.memcache import memcache_application
from repro.apps.sockshop import sockshop_application
from repro.apps.solr import solr_application
from repro.apps.teastore import teastore_application

__all__ = [
    "ServiceSpec",
    "ApplicationModel",
    "solr_application",
    "memcache_application",
    "cassandra_application",
    "elgg_application",
    "teastore_application",
    "sockshop_application",
    "CallGraph",
    "teastore_call_graph",
    "sockshop_call_graph",
]
