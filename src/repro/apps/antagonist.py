"""Antagonist (noisy-neighbour) workload models.

An antagonist is a co-located tenant built to pressure exactly one
shared node resource -- the synthetic stressors of interference
studies (stress-ng cpu hogs, STREAM-style bandwidth burners, fio disk
hammers).  It serves no useful traffic of its own; its only purpose is
to squeeze the victim's fair share so degradation is caused by the
*neighbour*, not by the victim's own load.

Each kind maps to one contention channel the cluster simulation now
models explicitly:

- ``"cpu"``: heavy per-request CPU -> the victim sees CPU *steal*
  (fair-share shortfall on ``kernel.all.cpu.steal``).
- ``"membw"``: STREAM-style DRAM traffic -> memory-bandwidth /
  LLC pressure (``membw_util`` and the ``perfevent.hwcounters.*``
  family).
- ``"disk"``: large sequential + seek-bound IO -> disk-queue
  interference (``disk.all.aveq`` and the iowait family).

Intensity 1.0 is calibrated so that :data:`ANTAGONIST_RATE` requests/s
oversubscribe the targeted resource on an M3-class node (8 cores,
400 MB/s disk, 10 GB/s DRAM budget) roughly 1.5x.
"""

from __future__ import annotations

from repro.apps.base import ApplicationModel, ServiceSpec

__all__ = ["ANTAGONIST_KINDS", "ANTAGONIST_RATE", "antagonist_application"]

#: The canonical driving rate (requests/s) for intensity calibration.
ANTAGONIST_RATE = 100.0

ANTAGONIST_KINDS = ("cpu", "membw", "disk")


def antagonist_service(kind: str, intensity: float = 1.0) -> ServiceSpec:
    """The stressor's service spec for one contention ``kind``."""
    if intensity <= 0:
        raise ValueError("intensity must be positive.")
    if kind == "cpu":
        # 100 req/s * 0.12 core-s = 12 cores demanded on an 8-core node.
        return ServiceSpec(
            name="antagonist-cpu",
            cpu_seconds=0.12 * intensity,
            base_latency=0.002,
            mem_base_bytes=64e6,
            mem_per_connection_bytes=1e4,
            net_in_bytes=100.0,
            net_out_bytes=100.0,
            mem_bandwidth_bytes=1e4,
        )
    if kind == "membw":
        # 100 req/s * 150 MB = 15 GB/s against a 10 GB/s DRAM budget.
        return ServiceSpec(
            name="antagonist-membw",
            cpu_seconds=0.004 * intensity,
            base_latency=0.002,
            mem_base_bytes=256e6,
            mem_per_connection_bytes=1e4,
            net_in_bytes=100.0,
            net_out_bytes=100.0,
            mem_bandwidth_bytes=150e6 * intensity,
        )
    if kind == "disk":
        # 100 req/s * 6 MB = 600 MB/s against a 400 MB/s disk.
        return ServiceSpec(
            name="antagonist-disk",
            cpu_seconds=0.002 * intensity,
            base_latency=0.004,
            mem_base_bytes=128e6,
            mem_per_connection_bytes=1e4,
            disk_read_bytes=4e6 * intensity,
            disk_write_bytes=2e6 * intensity,
            serial_io_seconds=0.002 * intensity,
            net_in_bytes=100.0,
            net_out_bytes=100.0,
            mem_bandwidth_bytes=1e5,
        )
    raise ValueError(
        f"Unknown antagonist kind {kind!r}; expected one of {ANTAGONIST_KINDS}."
    )


def antagonist_application(kind: str, intensity: float = 1.0) -> ApplicationModel:
    """A single-service noisy-neighbour application."""
    application = ApplicationModel(name=f"antagonist-{kind}")
    application.add_service(antagonist_service(kind, intensity))
    return application
