"""Elgg three-tier web application (paper section 4.1).

The first *evaluation* application (never trained on): the Elgg social
-networking front-end, an InnoDB database and a Memcache tier, each in
its own container on one machine.  The paper stresses the CPU-bound
front-end with static index-page requests (Memcache and a database
already resemble training services), assigning the Elgg container
1 CPU core and 4 GB of memory; the workload is ``sinnoise1000``
scaled to one tenth.

Calibration: ~55 ms of PHP rendering per request puts the 1-core
front-end knee near 18 req/s, well below the workload's ~100 req/s
peak -- reproducing the paper's test-set saturation ratio of roughly
75% (Table 5 has 1838 saturated vs 618 non-saturated samples).
"""

from __future__ import annotations

from repro.apps.base import ApplicationModel, ServiceSpec
from repro.cluster.resources import GIB

__all__ = ["elgg_application"]


def elgg_application() -> ApplicationModel:
    """The three-tier Elgg application model."""
    application = ApplicationModel(name="elgg")
    application.add_service(
        ServiceSpec(
            name="elgg-web",
            cpu_seconds=0.055,  # PHP page render
            base_latency=0.030,
            mem_base_bytes=1.5 * GIB,
            mem_per_connection_bytes=8e6,  # PHP-FPM workers
            working_set_bytes=0.5 * GIB,
            ws_access_bytes=10e3,
            net_in_bytes=1e3,
            net_out_bytes=60e3,  # the index page
            mem_bandwidth_bytes=150e3,
            visits=1.0,
        )
    )
    application.add_service(
        ServiceSpec(
            name="innodb",
            cpu_seconds=0.0015,
            base_latency=0.004,
            mem_base_bytes=2 * GIB,  # buffer pool
            working_set_bytes=1 * GIB,
            ws_access_bytes=8e3,
            disk_write_bytes=4e3,  # redo log
            net_in_bytes=500.0,
            net_out_bytes=4e3,
            visits=0.2,  # static page: most hits served from cache
        )
    )
    application.add_service(
        ServiceSpec(
            name="memcache",
            cpu_seconds=2e-5,
            base_latency=0.0006,
            mem_base_bytes=0.5 * GIB,
            working_set_bytes=1 * GIB,
            ws_access_bytes=2e3,
            net_in_bytes=200.0,
            net_out_bytes=2e3,
            mem_bandwidth_bytes=50e3,
            visits=0.8,
        )
    )
    return application
