"""Three-layer fully-connected neural network (the paper's Keras model).

The paper trains a sequential network of three dense layers whose
activation functions are grid-searched over {softmax, relu, sigmoid,
linear} per layer (Table 2).  This is a numpy re-implementation with
mini-batch Adam and binary cross-entropy on a sigmoid output head.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)

__all__ = ["MLPClassifier"]


def _activate(z: np.ndarray, kind: str) -> np.ndarray:
    if kind == "relu":
        return np.maximum(z, 0.0)
    if kind == "sigmoid":
        return 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
    if kind == "linear":
        return z
    if kind == "softmax":
        shifted = z - z.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
    raise ValueError(f"Unknown activation: {kind!r}")


def _activate_grad(z: np.ndarray, a: np.ndarray, kind: str) -> np.ndarray:
    """Element-wise derivative of the activation w.r.t. its input.

    For softmax this uses the diagonal approximation ``a * (1 - a)``,
    which is exact per-unit and adequate for hidden layers (softmax is
    an unusual hidden activation that the paper's grid includes anyway).
    """
    if kind == "relu":
        return (z > 0.0).astype(z.dtype)
    if kind in ("sigmoid", "softmax"):
        return a * (1.0 - a)
    if kind == "linear":
        return np.ones_like(z)
    raise ValueError(f"Unknown activation: {kind!r}")


class MLPClassifier(BaseEstimator, ClassifierMixin):
    """Binary classifier: 3 hidden dense layers + sigmoid output unit."""

    def __init__(
        self,
        hidden_units: tuple[int, int, int] = (64, 32, 16),
        activation_function1: str = "relu",
        activation_function2: str = "relu",
        activation_function3: str = "relu",
        learning_rate: float = 1e-3,
        batch_size: int = 64,
        epochs: int = 30,
        l2: float = 1e-5,
        random_state=None,
    ):
        self.hidden_units = hidden_units
        self.activation_function1 = activation_function1
        self.activation_function2 = activation_function2
        self.activation_function3 = activation_function3
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.epochs = epochs
        self.l2 = l2
        self.random_state = random_state

    def _activations(self) -> list[str]:
        return [
            self.activation_function1,
            self.activation_function2,
            self.activation_function3,
        ]

    def fit(self, X, y) -> "MLPClassifier":
        X, y = check_X_y(X, y)
        y_encoded = self._encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("MLPClassifier here is binary-only.")
        target = y_encoded.astype(np.float64).reshape(-1, 1)
        n, d = X.shape
        rng = check_random_state(self.random_state)
        sizes = [d, *self.hidden_units, 1]
        activations = [*self._activations(), "sigmoid"]

        weights = []
        biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))  # Glorot uniform
            weights.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            biases.append(np.zeros(fan_out))

        # Adam state
        m_w = [np.zeros_like(w) for w in weights]
        v_w = [np.zeros_like(w) for w in weights]
        m_b = [np.zeros_like(b) for b in biases]
        v_b = [np.zeros_like(b) for b in biases]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        batch = max(1, min(self.batch_size, n))
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, tb = X[idx], target[idx]

                # Forward pass
                zs, outputs = [], [xb]
                for w, b, kind in zip(weights, biases, activations):
                    z = outputs[-1] @ w + b
                    zs.append(z)
                    outputs.append(_activate(z, kind))

                # Backward pass: BCE + sigmoid head -> delta = p - t.
                delta = (outputs[-1] - tb) / len(idx)
                step += 1
                for layer in reversed(range(len(weights))):
                    grad_w = outputs[layer].T @ delta + self.l2 * weights[layer]
                    grad_b = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ weights[layer].T) * _activate_grad(
                            zs[layer - 1], outputs[layer], activations[layer - 1]
                        )
                    m_w[layer] = beta1 * m_w[layer] + (1 - beta1) * grad_w
                    v_w[layer] = beta2 * v_w[layer] + (1 - beta2) * grad_w**2
                    m_b[layer] = beta1 * m_b[layer] + (1 - beta1) * grad_b
                    v_b[layer] = beta2 * v_b[layer] + (1 - beta2) * grad_b**2
                    m_w_hat = m_w[layer] / (1 - beta1**step)
                    v_w_hat = v_w[layer] / (1 - beta2**step)
                    m_b_hat = m_b[layer] / (1 - beta1**step)
                    v_b_hat = v_b[layer] / (1 - beta2**step)
                    weights[layer] -= (
                        self.learning_rate * m_w_hat / (np.sqrt(v_w_hat) + eps)
                    )
                    biases[layer] -= (
                        self.learning_rate * m_b_hat / (np.sqrt(v_b_hat) + eps)
                    )

        self.weights_ = weights
        self.biases_ = biases
        self.n_features_in_ = d
        return self

    def _forward(self, X: np.ndarray) -> np.ndarray:
        activations = [*self._activations(), "sigmoid"]
        output = X
        for w, b, kind in zip(self.weights_, self.biases_, activations):
            output = _activate(output @ w + b, kind)
        return output.ravel()

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "weights_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; model was fitted with "
                f"{self.n_features_in_}."
            )
        positive = self._forward(X)
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        positive = self.predict_proba(X)[:, 1]
        return self.classes_[(positive >= 0.5).astype(np.int64)]
