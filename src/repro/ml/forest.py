"""Random forest classifier (Breiman, 2001).

Bootstrap-bagged CART trees with per-tree feature subsampling.  Exposes
``feature_importances_`` (mean decrease in impurity), which the paper
relies on twice: to filter the metric catalog down to the top-30 union
(section 3.3.4) and to produce the Table-4 ranking.  ``predict_saturated``
implements the paper's asymmetric operating point (section 4, prediction
threshold 0.4) for FN-averse saturation detection.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
    compute_sample_weight,
)
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Ensemble of bootstrapped CART trees with soft-vote prediction.

    The paper's tuned configuration (section 3.4) is ``n_estimators=250,
    min_samples_leaf=20, criterion='entropy'`` ("information gain"),
    ``class_weight=None``.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        class_weight=None,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.class_weight = class_weight
        self.random_state = random_state

    def fit(self, X, y, sample_weight=None) -> "RandomForestClassifier":
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1.")
        X, y = check_X_y(X, y)
        y_encoded = self._encode_labels(y)
        n = X.shape[0]
        rng = check_random_state(self.random_state)

        base_weight = (
            np.ones(n)
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        # 'balanced' weights are computed once on the full training set;
        # 'subsample'/'balanced_subsample' are recomputed per bootstrap.
        per_bootstrap_weighting = self.class_weight in (
            "subsample",
            "balanced_subsample",
        )
        if self.class_weight is not None and not per_bootstrap_weighting:
            base_weight = base_weight * compute_sample_weight(
                self.class_weight, y_encoded
            )

        self.estimators_: list[DecisionTreeClassifier] = []
        for _ in range(self.n_estimators):
            if self.bootstrap:
                sample_idx = rng.integers(0, n, size=n)
            else:
                sample_idx = np.arange(n)
            weight = base_weight[sample_idx]
            if per_bootstrap_weighting:
                weight = weight * compute_sample_weight(
                    "balanced", y_encoded[sample_idx]
                )
            tree = DecisionTreeClassifier(
                criterion=self.criterion,
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=rng.integers(0, 2**31 - 1),
            )
            tree.fit(X[sample_idx], y_encoded[sample_idx], sample_weight=weight)
            self.estimators_.append(tree)

        self.n_features_in_ = X.shape[1]
        importances = np.mean(
            [tree.feature_importances_ for tree in self.estimators_], axis=0
        )
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; forest was fitted with "
                f"{self.n_features_in_}."
            )
        # Trees were fitted on encoded labels, so their class order matches
        # self.classes_ as long as every bootstrap saw both classes; map via
        # each tree's own classes_ to stay correct when it did not.
        k = len(self.classes_)
        accumulated = np.zeros((X.shape[0], k))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            accumulated[:, tree.classes_] += proba
        return accumulated / len(self.estimators_)

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def predict_with_threshold(self, X, threshold: float = 0.5) -> np.ndarray:
        """Binary prediction with an adjustable positive-class threshold.

        The paper sets ``threshold=0.4`` to bias the detector against
        false negatives (missed saturation costs more than an
        unnecessary scale-out).
        """
        if len(self.classes_) != 2:
            raise ValueError("Threshold prediction requires a binary problem.")
        positive = self.predict_proba(X)[:, 1]
        return np.where(positive >= threshold, self.classes_[1], self.classes_[0])

    def top_features(self, k: int = 30) -> np.ndarray:
        """Indices of the ``k`` most important features, descending."""
        check_is_fitted(self, "feature_importances_")
        order = np.argsort(self.feature_importances_)[::-1]
        return order[:k]
