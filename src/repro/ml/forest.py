"""Random forest classifier (Breiman, 2001).

Bootstrap-bagged CART trees with per-tree feature subsampling.  Exposes
``feature_importances_`` (mean decrease in impurity), which the paper
relies on twice: to filter the metric catalog down to the top-30 union
(section 3.3.4) and to produce the Table-4 ranking.  ``predict_saturated``
implements the paper's asymmetric operating point (section 4, prediction
threshold 0.4) for FN-averse saturation detection.

Training and ensemble prediction are embarrassingly parallel and run
through :mod:`repro.parallel` when ``n_jobs`` asks for workers.  The
historical fit loop drew each tree's bootstrap indices and split seed
interleaved from one shared RNG *inside* the loop; that randomness is
now pre-drawn in the parent (same RNG, same draw order, so fixed-seed
forests are unchanged) and shipped to the workers with the task, so
for a fixed ``random_state`` the fitted forest is bitwise identical at
every ``n_jobs``.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
    compute_sample_weight,
)
from repro.ml.binning import Binner
from repro.ml.flatforest import FlatForest
from repro.ml.tree import DecisionTreeClassifier
from repro.parallel import parallel_map, resolve_n_jobs

__all__ = ["RandomForestClassifier"]

#: Trees per prediction task.  Fixed (never derived from ``n_jobs``) so
#: the vote-accumulation order -- within a chunk, then across chunks --
#: is identical however many workers run, keeping ``predict_proba``
#: bitwise independent of ``n_jobs``.
_PREDICT_CHUNK_TREES = 16


def _fit_tree_task(task, arrays) -> DecisionTreeClassifier:
    """Fit one bootstrap tree; runs in-process or in a pool worker.

    The task carries the tree's pre-drawn split seed and its row into
    the pre-drawn bootstrap-index matrix; ``X``/``y``, the base sample
    weight and that matrix arrive via the (shared) array dict.
    """
    row, tree_seed, params, bootstrap, per_bootstrap_weighting = task
    hist = "Xb" in arrays
    X = arrays["Xb"] if hist else arrays["X"]
    y, base_weight = arrays["y"], arrays["w"]
    if bootstrap:
        sample_idx = arrays["idx"][row]
    else:
        sample_idx = np.arange(X.shape[0])
    weight = base_weight[sample_idx]
    if per_bootstrap_weighting:
        weight = weight * compute_sample_weight("balanced", y[sample_idx])
    tree = DecisionTreeClassifier(**params, random_state=tree_seed)
    # Recordings land in whichever process grows the tree: the parent
    # when serial, the worker's own registry when pooled.
    with obs.trace("forest.fit_tree"):
        if hist:
            # The forest binned X once; each tree gathers its bootstrap
            # rows from the shared uint8 code matrix and reconstructs
            # thresholds from the shared packed bin edges.
            edges = Binner.unpack(arrays["bin_values"], arrays["bin_offsets"])
            tree.fit_binned(
                X[sample_idx], edges, y[sample_idx], sample_weight=weight
            )
        else:
            tree.fit(X[sample_idx], y[sample_idx], sample_weight=weight)
    obs.inc("forest.trees_fitted")
    return tree


def _predict_proba_task(task, arrays) -> np.ndarray:
    """Accumulated (unnormalized) votes of one chunk of trees.

    Votes go straight from each tree's leaf-value table into one
    preallocated accumulator -- the per-tree ``check_array``
    re-validation is skipped because the forest validated ``X`` once.
    """
    trees, n_classes = task
    X = arrays["X"]
    votes = np.zeros((X.shape[0], n_classes))
    with obs.trace("forest.predict_chunk"):
        for tree in trees:
            # Trees are fitted on encoded labels, so their class order
            # matches the forest's as long as every bootstrap saw all
            # classes; map via each tree's own classes_ to stay correct
            # when one did not.
            votes[:, tree.classes_] += tree.tree_value_[tree._apply(X)]
    obs.inc("forest.predict_chunks")
    obs.inc("forest.predict_chunk_trees", len(trees))
    return votes


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Ensemble of bootstrapped CART trees with soft-vote prediction.

    The paper's tuned configuration (section 3.4) is ``n_estimators=250,
    min_samples_leaf=20, criterion='entropy'`` ("information gain"),
    ``class_weight=None``.

    ``n_jobs`` controls worker processes for both ``fit`` (bootstrap +
    tree growing) and ``predict_proba`` (per-tree voting); ``None``/1
    is serial, ``-1`` uses every core.  Results are bitwise identical
    across ``n_jobs`` values for a fixed ``random_state``.

    ``tree_method="hist"`` quantile-bins ``X`` once (``max_bins`` bins
    per feature) and grows every tree over the shared binned matrix --
    roughly an order of magnitude faster on wide matrices; predictions
    still take raw feature matrices.  The default ``"exact"`` keeps the
    historical bitwise-stable output.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        criterion: str = "gini",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        bootstrap: bool = True,
        class_weight=None,
        tree_method: str = "exact",
        max_bins: int = 255,
        random_state=None,
        n_jobs: int | None = None,
    ):
        self.n_estimators = n_estimators
        self.criterion = criterion
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.class_weight = class_weight
        self.tree_method = tree_method
        self.max_bins = max_bins
        self.random_state = random_state
        self.n_jobs = n_jobs

    def fit(self, X, y, sample_weight=None) -> "RandomForestClassifier":
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1.")
        if self.tree_method not in ("exact", "hist"):
            raise ValueError("tree_method must be 'exact' or 'hist'.")
        X, y = check_X_y(X, y)
        y_encoded = self._encode_labels(y)
        n = X.shape[0]

        base_weight = (
            np.ones(n)
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        # 'balanced' weights are computed once on the full training set;
        # 'subsample'/'balanced_subsample' are recomputed per bootstrap.
        per_bootstrap_weighting = self.class_weight in (
            "subsample",
            "balanced_subsample",
        )
        if self.class_weight is not None and not per_bootstrap_weighting:
            base_weight = base_weight * compute_sample_weight(
                self.class_weight, y_encoded
            )

        # Every tree's bootstrap indices and split seed are drawn here,
        # up front, from the shared RNG in the exact order the old fit
        # loop drew them interleaved -- fixed-seed forests are bitwise
        # unchanged, and workers never touch a shared RNG.  The index
        # matrix travels through shared memory like X.
        rng = check_random_state(self.random_state)
        # Refitting invalidates any compiled flat representation and,
        # in exact mode, any binner left over from an earlier hist fit.
        self._flat_forest_ = None
        self.binner_ = None
        if self.tree_method == "hist":
            # Bin once per forest; every tree shares the uint8 code
            # matrix and the packed bin edges through shared memory
            # (workers never re-bin or receive a pickled copy).
            binner = Binner(self.max_bins).fit(X)
            self.binner_ = binner
            bin_values, bin_offsets = binner.pack()
            shared = {
                "Xb": binner.transform(X),
                "bin_values": bin_values,
                "bin_offsets": bin_offsets,
                "y": y_encoded,
                "w": base_weight,
            }
        else:
            shared = {"X": X, "y": y_encoded, "w": base_weight}
        if self.bootstrap:
            bootstrap_idx = np.empty((self.n_estimators, n), dtype=np.int64)
        tree_seeds = []
        for i in range(self.n_estimators):
            if self.bootstrap:
                bootstrap_idx[i] = rng.integers(0, n, size=n)
            tree_seeds.append(int(rng.integers(0, 2**31 - 1)))
        if self.bootstrap:
            shared["idx"] = bootstrap_idx

        tree_params = {
            "criterion": self.criterion,
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "tree_method": self.tree_method,
            "max_bins": self.max_bins,
        }
        tasks = [
            (i, seed, tree_params, self.bootstrap, per_bootstrap_weighting)
            for i, seed in enumerate(tree_seeds)
        ]
        with obs.trace("forest.fit"):
            self.estimators_: list[DecisionTreeClassifier] = parallel_map(
                _fit_tree_task, tasks, n_jobs=self.n_jobs, shared=shared
            )

        self.n_features_in_ = X.shape[1]
        importances = np.mean(
            [tree.feature_importances_ for tree in self.estimators_], axis=0
        )
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    def _flat(self) -> FlatForest:
        """The compiled flat-forest, built lazily on first predict."""
        flat = self.__dict__.get("_flat_forest_")
        if flat is None:
            flat = FlatForest.from_estimators(
                self.estimators_,
                n_classes=len(self.classes_),
                binner=getattr(self, "binner_", None),
                chunk_trees=_PREDICT_CHUNK_TREES,
            )
            self._flat_forest_ = flat
        return flat

    def __getstate__(self):
        # The flat compile is derived state: dropping it keeps pickled
        # forests (checkpoints, pool shipping) lean, and it rebuilds on
        # first predict after load.
        state = self.__dict__.copy()
        state.pop("_flat_forest_", None)
        return state

    def predict_proba(self, X, check_input: bool = True) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        if check_input:
            X = check_array(X)
        else:
            # Trusted path: the caller guarantees a validated float64
            # 2D matrix (streaming/fleet pipelines own their buffers).
            X = np.asarray(X, dtype=np.float64)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; forest was fitted with "
                f"{self.n_features_in_}."
            )
        k = len(self.classes_)
        n_trees = len(self.estimators_)
        n_chunks = -(-n_trees // _PREDICT_CHUNK_TREES)
        if resolve_n_jobs(self.n_jobs) == 1:
            # Serial: one batched all-rows x all-trees traversal over
            # the compiled flat forest -- no pool dispatch, no per-tree
            # Python loop.  Vote accumulation keeps the 16-tree chunk
            # grouping, so the probabilities are bitwise-equal to the
            # per-tree chunked path below at any n_jobs.
            with obs.trace("forest.predict_proba"):
                proba = self._flat().predict_proba(X)
            obs.inc("forest.predict_chunks", n_chunks)
            obs.inc("forest.predict_chunk_trees", n_trees)
            return proba
        chunks = [
            self.estimators_[start:start + _PREDICT_CHUNK_TREES]
            for start in range(0, n_trees, _PREDICT_CHUNK_TREES)
        ]
        # Each task already bundles _PREDICT_CHUNK_TREES trees, so one
        # task per dispatch is the right scheduling granularity.
        with obs.trace("forest.predict_proba"):
            partials = parallel_map(
                _predict_proba_task,
                [(chunk, k) for chunk in chunks],
                n_jobs=self.n_jobs,
                shared={"X": X},
                chunk_size=1,
            )
        accumulated = partials[0]
        for votes in partials[1:]:
            accumulated = accumulated + votes
        return accumulated / n_trees

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def predict_with_threshold(self, X, threshold: float = 0.5) -> np.ndarray:
        """Binary prediction with an adjustable positive-class threshold.

        The paper sets ``threshold=0.4`` to bias the detector against
        false negatives (missed saturation costs more than an
        unnecessary scale-out).
        """
        if len(self.classes_) != 2:
            raise ValueError("Threshold prediction requires a binary problem.")
        positive = self.predict_proba(X)[:, 1]
        return np.where(positive >= threshold, self.classes_[1], self.classes_[0])

    def top_features(self, k: int = 30) -> np.ndarray:
        """Indices of the ``k`` most important features, descending."""
        check_is_fitted(self, "feature_importances_")
        order = np.argsort(self.feature_importances_)[::-1]
        return order[:k]
