"""From-scratch machine-learning substrate with a scikit-learn-like API.

The paper's prototype uses scikit-learn, XGBoost and Keras.  None of
those are available offline, so this package reimplements the required
estimators on top of numpy:

- :class:`repro.ml.tree.DecisionTreeClassifier` -- CART with gini or
  entropy splitting and two training modes (``tree_method="exact"`` /
  ``"hist"``; the latter trains on a quantile-binned ``uint8`` matrix
  built by :class:`repro.ml.binning.Binner`).
- :class:`repro.ml.forest.RandomForestClassifier` -- bagged CART trees
  with feature importances, class weights and probability predictions.
- :mod:`repro.ml.flatforest` -- ensembles compiled to one contiguous
  struct-of-arrays and traversed all-rows x all-trees in one batched
  kernel (with a uint8 byte path for hist-fitted forests); the default
  serial inference engine behind every tree ensemble above.
- :class:`repro.ml.boosting.AdaBoostClassifier` -- SAMME / SAMME.R.
- :class:`repro.ml.gbm.GradientBoostingClassifier` -- second-order
  (XGBoost-style) boosted trees with ``min_child_weight`` and ``gamma``.
- :class:`repro.ml.linear.LogisticRegression` -- SAG-style solver.
- :class:`repro.ml.linear.LinearSVC` -- hinge-loss linear classifier.
- :class:`repro.ml.neural.MLPClassifier` -- three-layer fully-connected
  network with selectable activations.
- :mod:`repro.ml.preprocessing` -- ``MinMaxScaler`` / ``StandardScaler``.
- :mod:`repro.ml.decomposition` -- ``PCA``.
- :mod:`repro.ml.model_selection` -- ``KFold``, ``GroupKFold``,
  ``GridSearchCV``, ``cross_val_score``.
- :mod:`repro.ml.metrics` -- accuracy, precision/recall/F1, confusion
  matrices.
"""

from repro.ml.base import BaseEstimator, ClassifierMixin, clone
from repro.ml.binning import Binner
from repro.ml.boosting import AdaBoostClassifier
from repro.ml.decomposition import PCA
from repro.ml.flatforest import FlatForest, FlatTrees, tree_apply
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbm import GradientBoostingClassifier
from repro.ml.linear import LinearSVC, LogisticRegression
from repro.ml.neural import MLPClassifier
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "clone",
    "Binner",
    "FlatForest",
    "FlatTrees",
    "tree_apply",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "AdaBoostClassifier",
    "GradientBoostingClassifier",
    "LogisticRegression",
    "LinearSVC",
    "MLPClassifier",
    "MinMaxScaler",
    "StandardScaler",
    "PCA",
]
