"""Feature scalers used by the monitorless pipeline (paper section 3.3).

``MinMaxScaler`` additionally exposes :meth:`MinMaxScaler.coverage_gaps`,
implementing the training-set-improvement check of section 3.2.3: a
validation set whose feature ranges fall outside the fitted scaler's
range reveals insufficiently-trained features.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_array, check_is_fitted

__all__ = ["MinMaxScaler", "StandardScaler"]


class MinMaxScaler(BaseEstimator):
    """Scale each feature to ``feature_range`` based on training min/max."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        if feature_range[0] >= feature_range[1]:
            raise ValueError("feature_range minimum must be below maximum.")
        self.feature_range = feature_range

    def fit(self, X, y=None) -> "MinMaxScaler":
        X = check_array(X)
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        span = self.data_max_ - self.data_min_
        # Constant features map to the range minimum instead of dividing by 0.
        span[span == 0.0] = 1.0
        self.span_ = span
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "span_")
        X = check_array(X)
        if X.shape[1] != self.span_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features; scaler was fitted with "
                f"{self.span_.shape[0]}."
            )
        low, high = self.feature_range
        # Subtract-then-divide: the pre-multiplied ``1/span`` form
        # overflows to inf for subnormal spans and poisons the output
        # with NaN.  Monotonic rounding of (X - min) / span keeps
        # training values inside [low, high] without clipping.
        return (X - self.data_min_) / self.span_ * (high - low) + low

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        check_is_fitted(self, "span_")
        X = check_array(X)
        low, high = self.feature_range
        return (X - low) / (high - low) * self.span_ + self.data_min_

    def coverage_gaps(self, X_validation, *, tolerance: float = 0.0) -> np.ndarray:
        """Indices of features whose validation range exceeds the fitted range.

        Section 3.2.3 of the paper: scale a validation set with the
        *trained* scaler; any feature with values outside the training
        range was not sufficiently covered by the training campaign and
        is a candidate for additional measurement runs.
        """
        check_is_fitted(self, "span_")
        X_validation = check_array(X_validation)
        too_low = X_validation.min(axis=0) < self.data_min_ - tolerance
        too_high = X_validation.max(axis=0) > self.data_max_ + tolerance
        return np.flatnonzero(too_low | too_high)


class StandardScaler(BaseEstimator):
    """Standardize features to zero mean and unit variance."""

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X, y=None) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0  # constant features pass through unscaled
            self.std_ = std
        else:
            self.std_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "std_")
        X = check_array(X)
        if X.shape[1] != self.std_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features; scaler was fitted with "
                f"{self.std_.shape[0]}."
            )
        return (X - self.mean_) / self.std_

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X).transform(X)

    def transform_tick(self, row: np.ndarray) -> np.ndarray:
        """Streaming mode: standardize a single sample row.

        Elementwise, so bitwise identical to the matching row of
        :meth:`transform`.
        """
        check_is_fitted(self, "std_")
        if row.shape != (self.std_.shape[0],):
            raise ValueError(
                f"row has shape {row.shape}; scaler was fitted with "
                f"{self.std_.shape[0]} features."
            )
        return (row - self.mean_) / self.std_

    def inverse_transform(self, X) -> np.ndarray:
        check_is_fitted(self, "std_")
        X = check_array(X)
        return X * self.std_ + self.mean_
