"""CART decision trees (Breiman et al., 1984) for classification.

Two training modes, selected by ``tree_method``:

- ``"exact"`` (default): per node and per candidate feature the samples
  are sorted and every split boundary is evaluated with prefix sums of
  the weighted class histograms.  When the node examines *all* features
  with uniform sample weights, the sort is hoisted to the root -- each
  feature is argsorted once per tree and the per-node sorted index
  lists are maintained by stable partition propagation, which is
  bitwise identical to the historical per-node argsort (uniform weights
  make the boundary prefix sums invariant to tie ordering) but skips
  the ``O(n log n)`` re-sort at every node.
- ``"hist"``: the feature matrix is quantile-binned once into a
  ``uint8`` code matrix (:class:`repro.ml.binning.Binner`, <= 255 bins)
  and split finding runs over per-node class-weighted bin histograms
  built with ``np.bincount``; candidate thresholds are reconstructed
  from the recorded bin edges, so the fitted tree predicts on raw
  feature matrices exactly like an exact-mode tree.  With per-node
  feature subsampling (``max_features``, the random-forest default)
  histograms are built only for the node's candidate features --
  cheaper by ``~n_features / max_features`` than the full-width
  histograms the sibling-subtraction trick requires (the GBM, which
  scores every feature at every node, uses that trick instead; see
  :mod:`repro.ml.gbm`).  Ensembles bin once and fan the code matrix
  out to all trees via :meth:`DecisionTreeClassifier.fit_binned`.

The tree is stored in flat arrays (``children_left``/``children_right``/
``feature``/``threshold``/``value``) which keeps prediction a tight
vectorized loop and makes the structure serialisable.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    check_is_fitted,
    check_random_state,
    check_X_y,
    check_array,
    compute_sample_weight,
)
from repro.ml.binning import Binner
from repro.ml.flatforest import tree_apply

__all__ = ["DecisionTreeClassifier"]

_LEAF = -1


def _node_impurity(counts: np.ndarray, criterion: str) -> float:
    """Impurity of one node given weighted class counts."""
    total = counts.sum()
    if total <= 0.0:
        return 0.0
    p = counts / total
    if criterion == "gini":
        return float(1.0 - np.sum(p * p))
    p = p[p > 0.0]
    return float(-np.sum(p * np.log2(p)))


def _split_impurities(
    left_counts: np.ndarray, right_counts: np.ndarray, criterion: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized impurity of every candidate (left, right) partition.

    ``left_counts``/``right_counts`` have shape (n_boundaries, n_classes).
    Returns (left_impurity, right_impurity, left_weight, right_weight).
    """
    left_total = left_counts.sum(axis=1)
    right_total = right_counts.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        left_p = np.where(left_total[:, None] > 0, left_counts / left_total[:, None], 0.0)
        right_p = np.where(
            right_total[:, None] > 0, right_counts / right_total[:, None], 0.0
        )
        if criterion == "gini":
            left_imp = 1.0 - np.sum(left_p * left_p, axis=1)
            right_imp = 1.0 - np.sum(right_p * right_p, axis=1)
        else:
            left_log = np.zeros_like(left_p)
            np.log2(left_p, out=left_log, where=left_p > 0)
            right_log = np.zeros_like(right_p)
            np.log2(right_p, out=right_log, where=right_p > 0)
            left_imp = -np.sum(left_p * left_log, axis=1)
            right_imp = -np.sum(right_p * right_log, axis=1)
    return left_imp, right_imp, left_total, right_total


def _xlogx(a: np.ndarray) -> np.ndarray:
    """Elementwise ``a * log2(a)`` with the 0*log(0) = 0 convention."""
    out = np.zeros_like(a)
    np.log2(a, out=out, where=a > 0)
    out *= a
    return out


def _row_sums(a: np.ndarray) -> np.ndarray:
    """``a.sum(axis=1)`` via explicit column adds.

    ``ndarray.sum(axis=1)`` pays ~100us of pairwise-reduction setup per
    call even for a 2-column matrix; with n_classes columns a handful of
    strided adds is orders of magnitude cheaper, and this runs several
    times per tree node.
    """
    out = a[:, 0].astype(np.float64, copy=True)
    for j in range(1, a.shape[1]):
        out += a[:, j]
    return out


def _weighted_child_impurity(
    left_counts: np.ndarray,
    right_counts: np.ndarray,
    left_w: np.ndarray,
    right_w: np.ndarray,
    criterion: str,
) -> np.ndarray:
    """``left_w * H(left) + right_w * H(right)`` per candidate split.

    Equivalent to combining :func:`_split_impurities` outputs as
    ``lw*li + rw*ri`` but works in count space -- gini's weighted form is
    ``W - sum(c^2)/W`` and entropy's is ``W*log2(W) - sum(c*log2(c))``,
    which skips the probability normalisation (one divide and several
    masked temporaries per side) entirely.  This is the hist splitter's
    inner loop.
    """
    if criterion == "gini":
        with np.errstate(divide="ignore", invalid="ignore"):
            left_part = left_w - np.where(
                left_w > 0, _row_sums(left_counts * left_counts) / left_w, 0.0
            )
            right_part = right_w - np.where(
                right_w > 0,
                _row_sums(right_counts * right_counts) / right_w,
                0.0,
            )
        return left_part + right_part
    left_part = _xlogx(left_w) - _row_sums(_xlogx(left_counts))
    right_part = _xlogx(right_w) - _row_sums(_xlogx(right_counts))
    return left_part + right_part


class _TreeBuilder:
    """Grows one exact-mode tree depth-first; collects nodes into lists."""

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray,
        n_classes: int,
        criterion: str,
        max_depth: int | None,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: int,
        rng: np.random.Generator,
        min_impurity_decrease: float,
        splitter: str = "best",
    ):
        self.X = X
        self.y = y
        self.w = sample_weight
        self.n_classes = n_classes
        self.criterion = criterion
        self.max_depth = np.inf if max_depth is None else max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self.min_impurity_decrease = min_impurity_decrease
        self.splitter = splitter
        self.total_weight = float(sample_weight.sum())

        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.children_left: list[int] = []
        self.children_right: list[int] = []
        self.value: list[np.ndarray] = []
        self.importances = np.zeros(X.shape[1])

    def build(self) -> None:
        indices = np.arange(self.X.shape[0])
        # Presort fast path: argsort every feature once at the root and
        # maintain per-node sorted index lists by stable partition
        # propagation.  Only taken when it is both profitable (every
        # feature is examined at every node, so no sort is wasted) and
        # provably bitwise-safe (uniform weights: within a tie group a
        # prefix sum adds the same constant the same number of times, so
        # the boundary sums -- and hence every split decision -- do not
        # depend on how quicksort happened to order the ties).
        presort = (
            self.splitter == "best"
            and self.max_features >= self.X.shape[1]
            and self.w.size > 0
            and bool(np.all(self.w == self.w[0]))
        )
        if presort:
            n_features = self.X.shape[1]
            sorted_idx = np.empty((n_features, indices.size), dtype=np.int64)
            for f in range(n_features):
                sorted_idx[f] = np.argsort(self.X[:, f], kind="quicksort")
            self._grow_presorted(indices, sorted_idx, depth=0)
        else:
            self._grow(indices, depth=0)

    def _class_counts(self, indices: np.ndarray) -> np.ndarray:
        return np.bincount(
            self.y[indices], weights=self.w[indices], minlength=self.n_classes
        )

    def _new_leaf(self, counts: np.ndarray) -> int:
        node_id = len(self.feature)
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.children_left.append(_LEAF)
        self.children_right.append(_LEAF)
        self.value.append(counts)
        return node_id

    def _node_is_terminal(self, n: int, depth: int, impurity: float) -> bool:
        return (
            depth >= self.max_depth
            or n < self.min_samples_split
            or n < 2 * self.min_samples_leaf
            or impurity <= 1e-12
        )

    def _record_split(
        self, feature_idx: int, threshold: float, gain: float,
        counts: np.ndarray, indices: np.ndarray,
    ) -> int:
        node_id = len(self.feature)
        self.feature.append(feature_idx)
        self.threshold.append(threshold)
        self.children_left.append(-2)  # placeholder, patched by the caller
        self.children_right.append(-2)
        self.value.append(counts)
        self.importances[feature_idx] += (
            self.w[indices].sum() / self.total_weight
        ) * gain
        return node_id

    def _grow(self, indices: np.ndarray, depth: int) -> int:
        counts = self._class_counts(indices)
        impurity = _node_impurity(counts, self.criterion)
        n = indices.shape[0]

        is_terminal = self._node_is_terminal(n, depth, impurity)
        if not is_terminal:
            if self.splitter == "random":
                split = self._random_split(indices, impurity)
            else:
                split = self._best_split(indices, impurity)
            is_terminal = split is None
        if is_terminal:
            return self._new_leaf(counts)

        feature_idx, threshold, gain, left_mask = split
        node_id = self._record_split(feature_idx, threshold, gain, counts, indices)
        left_id = self._grow(indices[left_mask], depth + 1)
        right_id = self._grow(indices[~left_mask], depth + 1)
        self.children_left[node_id] = left_id
        self.children_right[node_id] = right_id
        return node_id

    def _best_split(self, indices: np.ndarray, parent_impurity: float):
        """Return (feature, threshold, gain, left_mask) or None."""
        n_features = self.X.shape[1]
        candidates = self.rng.permutation(n_features)
        w = self.w[indices]
        y = self.y[indices]
        node_weight = w.sum()

        best = None
        best_gain = self.min_impurity_decrease
        examined = 0
        for feature_idx in candidates:
            # scikit-learn semantics: examine at least max_features features,
            # but keep looking past constant ones.
            if examined >= self.max_features and best is not None:
                break
            column = self.X[indices, feature_idx]
            order = np.argsort(column, kind="quicksort")
            sorted_values = column[order]
            if sorted_values[0] == sorted_values[-1]:
                continue  # constant within the node
            examined += 1

            sorted_y = y[order]
            sorted_w = w[order]
            # One-hot weighted class matrix -> prefix sums give the class
            # histogram of every prefix in a single pass.
            onehot = np.zeros((len(order), self.n_classes))
            onehot[np.arange(len(order)), sorted_y] = sorted_w
            prefix = np.cumsum(onehot, axis=0)

            # Valid boundaries: between i and i+1 where the value changes
            # and both sides satisfy min_samples_leaf.
            boundary = np.flatnonzero(sorted_values[1:] != sorted_values[:-1])
            if self.min_samples_leaf > 1:
                boundary = boundary[
                    (boundary + 1 >= self.min_samples_leaf)
                    & (len(order) - boundary - 1 >= self.min_samples_leaf)
                ]
            if boundary.size == 0:
                continue

            left_counts = prefix[boundary]
            right_counts = prefix[-1] - left_counts
            left_imp, right_imp, left_w, right_w = _split_impurities(
                left_counts, right_counts, self.criterion
            )
            child_impurity = (left_w * left_imp + right_w * right_imp) / node_weight
            gains = parent_impurity - child_impurity
            best_local = int(np.argmax(gains))
            if gains[best_local] > best_gain:
                best_gain = float(gains[best_local])
                cut = boundary[best_local]
                threshold = float(
                    (sorted_values[cut] + sorted_values[cut + 1]) / 2.0
                )
                left_mask = column <= threshold
                best = (int(feature_idx), threshold, best_gain, left_mask)
        return best

    # ------------------------------------------------------------------
    # Presorted fast path (bitwise identical to _grow/_best_split under
    # the gate checked in build()).
    # ------------------------------------------------------------------
    def _grow_presorted(
        self, indices: np.ndarray, sorted_idx: np.ndarray, depth: int
    ) -> int:
        counts = self._class_counts(indices)
        impurity = _node_impurity(counts, self.criterion)
        n = indices.shape[0]

        is_terminal = self._node_is_terminal(n, depth, impurity)
        if not is_terminal:
            split = self._best_split_presorted(indices, sorted_idx, impurity)
            is_terminal = split is None
        if is_terminal:
            return self._new_leaf(counts)

        feature_idx, threshold, gain, left_mask = split
        node_id = self._record_split(feature_idx, threshold, gain, counts, indices)

        # Stable partition of every feature's sorted list: rows keep
        # their relative order, so each child's lists stay sorted.
        # Every row contains exactly the node's samples, so each keeps
        # the same number of left entries and the mask select reshapes
        # back into a matrix.
        left_indices = indices[left_mask]
        right_indices = indices[~left_mask]
        in_left = np.zeros(self.X.shape[0], dtype=bool)
        in_left[left_indices] = True
        left_of = in_left[sorted_idx]
        left_sorted = sorted_idx[left_of].reshape(sorted_idx.shape[0], -1)
        right_sorted = sorted_idx[~left_of].reshape(sorted_idx.shape[0], -1)
        del sorted_idx, left_of  # bound live memory to O(depth) matrices

        left_id = self._grow_presorted(left_indices, left_sorted, depth + 1)
        right_id = self._grow_presorted(right_indices, right_sorted, depth + 1)
        self.children_left[node_id] = left_id
        self.children_right[node_id] = right_id
        return node_id

    def _best_split_presorted(
        self, indices: np.ndarray, sorted_idx: np.ndarray, parent_impurity: float
    ):
        """`_best_split` with the per-node argsort replaced by lookups."""
        n_features = self.X.shape[1]
        candidates = self.rng.permutation(n_features)
        w = self.w[indices]
        node_weight = w.sum()
        n = indices.shape[0]

        best = None
        best_gain = self.min_impurity_decrease
        examined = 0
        for feature_idx in candidates:
            if examined >= self.max_features and best is not None:
                break
            order = sorted_idx[feature_idx]  # global sample ids, sorted
            sorted_values = self.X[order, feature_idx]
            if sorted_values[0] == sorted_values[-1]:
                continue
            examined += 1

            sorted_y = self.y[order]
            sorted_w = self.w[order]
            onehot = np.zeros((n, self.n_classes))
            onehot[np.arange(n), sorted_y] = sorted_w
            prefix = np.cumsum(onehot, axis=0)

            boundary = np.flatnonzero(sorted_values[1:] != sorted_values[:-1])
            if self.min_samples_leaf > 1:
                boundary = boundary[
                    (boundary + 1 >= self.min_samples_leaf)
                    & (n - boundary - 1 >= self.min_samples_leaf)
                ]
            if boundary.size == 0:
                continue

            left_counts = prefix[boundary]
            right_counts = prefix[-1] - left_counts
            left_imp, right_imp, left_w, right_w = _split_impurities(
                left_counts, right_counts, self.criterion
            )
            child_impurity = (left_w * left_imp + right_w * right_imp) / node_weight
            gains = parent_impurity - child_impurity
            best_local = int(np.argmax(gains))
            if gains[best_local] > best_gain:
                best_gain = float(gains[best_local])
                cut = boundary[best_local]
                threshold = float(
                    (sorted_values[cut] + sorted_values[cut + 1]) / 2.0
                )
                left_mask = self.X[indices, feature_idx] <= threshold
                best = (int(feature_idx), threshold, best_gain, left_mask)
        return best

    # ------------------------------------------------------------------
    # Randomized-threshold splitter (splitter="random")
    # ------------------------------------------------------------------
    def _random_split(self, indices: np.ndarray, parent_impurity: float):
        """Extra-trees style split: a random threshold per candidate.

        Examines up to ``max_features`` non-constant candidate features
        (matching scikit-learn's semantics) and draws one uniform
        threshold in each feature's node-local range; the best-scoring
        candidate wins.  The pre-histogram implementation collapsed
        ``splitter="random"`` to examining a single feature with
        best-threshold search -- a different (and much weaker)
        randomisation.  No bitwise regression test pinned that
        behaviour, so it was removed rather than kept behind a fallback.
        """
        candidates = self.rng.permutation(self.X.shape[1])
        w = self.w[indices]
        y = self.y[indices]
        node_weight = w.sum()
        n = indices.shape[0]

        best = None
        best_gain = self.min_impurity_decrease
        examined = 0
        for feature_idx in candidates:
            if examined >= self.max_features and best is not None:
                break
            column = self.X[indices, feature_idx]
            low = column.min()
            high = column.max()
            if low == high:
                continue  # constant within the node
            examined += 1

            # One rng draw per examined feature, strictly inside the
            # node's range so neither side can be empty.
            threshold = float(self.rng.uniform(low, high))
            if threshold >= high:  # guard against fp rounding up
                threshold = float(low)
            left_mask = column <= threshold
            n_left = int(np.count_nonzero(left_mask))
            if (
                n_left < self.min_samples_leaf
                or n - n_left < self.min_samples_leaf
                or n_left == 0
                or n_left == n
            ):
                continue

            left_counts = np.bincount(
                y[left_mask], weights=w[left_mask], minlength=self.n_classes
            )
            right_counts = np.bincount(
                y[~left_mask], weights=w[~left_mask], minlength=self.n_classes
            )
            left_imp, right_imp, left_w, right_w = _split_impurities(
                left_counts[None, :], right_counts[None, :], self.criterion
            )
            gain = parent_impurity - float(
                (left_w[0] * left_imp[0] + right_w[0] * right_imp[0]) / node_weight
            )
            if gain > best_gain:
                best_gain = gain
                best = (int(feature_idx), threshold, best_gain, left_mask)
        return best


class _HistTreeBuilder:
    """Grows one tree over a quantile-binned ``uint8`` code matrix.

    Per node, class-weighted histograms over the candidate features'
    bins are built with one fused ``np.bincount`` (bin and class fold
    into a single flat key), and every candidate boundary of every
    candidate feature is scored in one vectorized pass over the
    (features x bins) histogram tensor via the same impurity kernel the
    exact splitter uses.  Split thresholds are reconstructed from the
    binner's recorded edges so the finished tree predicts on raw
    feature matrices.
    """

    def __init__(
        self,
        codes: np.ndarray,
        bin_edges: list[np.ndarray],
        y: np.ndarray,
        sample_weight: np.ndarray,
        n_classes: int,
        criterion: str,
        max_depth: int | None,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: int,
        rng: np.random.Generator,
        min_impurity_decrease: float,
    ):
        self.codes = codes
        self.edges = bin_edges
        self.y = y
        self.w = sample_weight
        self.n_classes = n_classes
        self.criterion = criterion
        self.max_depth = np.inf if max_depth is None else max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self.min_impurity_decrease = min_impurity_decrease
        self.total_weight = float(sample_weight.sum())
        self.n_bins = np.array(
            [edges.size + 1 for edges in bin_edges], dtype=np.int64
        )
        # Uniform weights let the weighted histogram be derived from the
        # integer count histogram (one bincount instead of two).
        self.uniform_weight = sample_weight.size > 0 and bool(
            np.all(sample_weight == sample_weight[0])
        )

        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.children_left: list[int] = []
        self.children_right: list[int] = []
        self.value: list[np.ndarray] = []
        self.importances = np.zeros(codes.shape[1])

    def build(self) -> None:
        self._grow(np.arange(self.codes.shape[0]), depth=0)

    def _class_counts(self, indices: np.ndarray) -> np.ndarray:
        if self.uniform_weight:
            # Integer bincount scaled by the shared weight: skips the
            # float-weights bincount path and the per-node w gather.
            return np.bincount(
                self.y[indices], minlength=self.n_classes
            ) * float(self.w[0])
        return np.bincount(
            self.y[indices], weights=self.w[indices], minlength=self.n_classes
        )

    def _new_leaf(self, counts: np.ndarray) -> int:
        node_id = len(self.feature)
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.children_left.append(_LEAF)
        self.children_right.append(_LEAF)
        self.value.append(counts)
        return node_id

    def _grow(self, indices: np.ndarray, depth: int) -> int:
        counts = self._class_counts(indices)
        impurity = _node_impurity(counts, self.criterion)
        n = indices.shape[0]

        is_terminal = (
            depth >= self.max_depth
            or n < self.min_samples_split
            or n < 2 * self.min_samples_leaf
            or impurity <= 1e-12
        )
        if not is_terminal:
            split = self._best_split(indices, counts, impurity)
            is_terminal = split is None
        if is_terminal:
            return self._new_leaf(counts)

        feature_idx, threshold, gain, left_mask = split
        node_id = len(self.feature)
        self.feature.append(feature_idx)
        self.threshold.append(threshold)
        self.children_left.append(-2)  # placeholder, patched below
        self.children_right.append(-2)
        self.value.append(counts)
        node_weight = (
            self.w[0] * n if self.uniform_weight else self.w[indices].sum()
        )
        self.importances[feature_idx] += (node_weight / self.total_weight) * gain

        left_id = self._grow(indices[left_mask], depth + 1)
        right_id = self._grow(indices[~left_mask], depth + 1)
        self.children_left[node_id] = left_id
        self.children_right[node_id] = right_id
        return node_id

    def _best_split(
        self, indices: np.ndarray, counts: np.ndarray, parent_impurity: float
    ):
        """Return (feature, threshold, gain, left_mask) or None."""
        n_features = self.codes.shape[1]
        permutation = self.rng.permutation(n_features)
        y_node = self.y[indices]
        if self.uniform_weight:
            w_node = None  # only needed for the weighted bincount path
            node_weight = float(self.w[0]) * indices.shape[0]
        else:
            w_node = self.w[indices]
            node_weight = float(w_node.sum())

        # Phase 1: the first max_features candidates.  Phase 2 (rare):
        # if none of them yields a split -- all constant in the node, or
        # all gainless -- the remaining features are scored in one more
        # batch, mirroring how the exact splitter keeps looking past
        # constant/gainless candidates.
        found = self._score_candidates(
            indices, permutation[: self.max_features], y_node, w_node,
            counts, node_weight, parent_impurity,
        )
        if found is None and self.max_features < n_features:
            found = self._score_candidates(
                indices, permutation[self.max_features:], y_node, w_node,
                counts, node_weight, parent_impurity,
            )
        if found is None:
            return None

        feature_idx, split_bin, gain = found
        threshold = float(self.edges[feature_idx][split_bin])
        left_mask = self.codes[indices, feature_idx] <= split_bin
        return feature_idx, threshold, gain, left_mask

    def _score_candidates(
        self,
        indices: np.ndarray,
        candidates: np.ndarray,
        y_node: np.ndarray,
        w_node: np.ndarray,
        counts: np.ndarray,
        node_weight: float,
        parent_impurity: float,
    ):
        """Best (feature, bin, gain) among ``candidates`` or None."""
        if candidates.size == 0:
            return None
        k = self.n_classes
        bins_per_cand = self.n_bins[candidates]
        cand_starts = np.zeros(candidates.size + 1, dtype=np.int64)
        np.cumsum(bins_per_cand, out=cand_starts[1:])
        total_bins = int(cand_starts[-1])

        # One fused histogram over (candidate, bin, class): the flat key
        # of sample i at candidate j is (start_j + code_ij) * k + y_i.
        # Built in place on the int64 gather to avoid three (n x c)
        # temporaries per node.
        sub = self.codes[indices][:, candidates].astype(np.int64)
        sub += cand_starts[:-1]
        sub *= k
        sub += y_node[:, None]
        flat = sub.ravel()
        hist_flat = np.bincount(flat, minlength=total_bins * k)
        hist_nk = hist_flat.reshape(total_bins, k)
        hist_n = hist_flat[0::k].copy()
        for j in range(1, k):
            hist_n += hist_flat[j::k]

        # Split evaluation touches only *occupied* bins: an empty bin's
        # boundary duplicates its nearest occupied predecessor's, so the
        # search space shrinks from sum(n_bins) to at most
        # n_node x n_candidates entries -- the difference between O(bins)
        # and O(samples) work at the deep, small nodes that dominate the
        # node count.  A candidate boundary is every occupied bin except
        # each candidate's last (nothing would go right).
        occupied = np.flatnonzero(hist_n > 0)
        occ_cand = np.searchsorted(cand_starts, occupied, side="right") - 1
        boundary_pos = np.flatnonzero(occ_cand[:-1] == occ_cand[1:])
        if boundary_pos.size == 0:
            return None
        if self.uniform_weight:
            hist_w_occ = hist_nk[occupied] * float(self.w[0])
        else:
            hist_w_occ = np.bincount(
                flat,
                weights=np.repeat(w_node, candidates.size),
                minlength=total_bins * k,
            ).reshape(total_bins, k)[occupied]

        # Prefix sums over the occupied rows; each candidate's base
        # (prefix just before its first occupied bin) is subtracted to
        # localise the sums, and a prepended zero row makes base lookups
        # branch-free.  The integer sample counts come first: the
        # min_samples_leaf filter usually kills most boundaries at deep
        # nodes, so the float/log impurity work only runs on survivors.
        cum_n = np.cumsum(hist_n[occupied])
        first_occ = np.searchsorted(occ_cand, np.arange(candidates.size))
        base_n = np.concatenate(([0], cum_n))
        boundary_base = first_occ[occ_cand[boundary_pos]]
        left_n = cum_n[boundary_pos] - base_n[boundary_base]
        right_n = indices.shape[0] - left_n
        valid = np.flatnonzero(
            (left_n >= self.min_samples_leaf)
            & (right_n >= self.min_samples_leaf)
        )
        if valid.size == 0:
            return None
        boundary_pos = boundary_pos[valid]
        boundary_base = boundary_base[valid]

        cum_w = np.cumsum(hist_w_occ, axis=0)
        cum_wt = np.cumsum(_row_sums(hist_w_occ))
        base_w = np.vstack((np.zeros((1, k)), cum_w))
        base_wt = np.concatenate(([0.0], cum_wt))
        left_counts = cum_w[boundary_pos] - base_w[boundary_base]
        left_w = cum_wt[boundary_pos] - base_wt[boundary_base]
        right_counts = counts[None, :] - left_counts
        right_w = node_weight - left_w

        child_impurity = _weighted_child_impurity(
            left_counts, right_counts, left_w, right_w, self.criterion
        ) / node_weight
        gains = parent_impurity - child_impurity
        best = int(np.argmax(gains))
        if gains[best] <= self.min_impurity_decrease:
            return None
        best_flat = int(occupied[boundary_pos[best]])
        best_cand = int(occ_cand[boundary_pos[best]])
        return (
            int(candidates[best_cand]),
            best_flat - int(cand_starts[best_cand]),
            float(gains[best]),
        )


def _resolve_max_features(max_features, n_features: int) -> int:
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features)))
    if isinstance(max_features, float):
        return max(1, int(max_features * n_features))
    if isinstance(max_features, int):
        return max(1, min(max_features, n_features))
    raise ValueError(f"Unsupported max_features: {max_features!r}")


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """CART classifier with gini/entropy splitting.

    Parameters mirror scikit-learn's estimator of the same name, which
    lets the paper's hyper-parameter grids (Table 2) apply verbatim.
    ``tree_method`` selects exact split finding (default; bitwise
    stable across releases) or histogram-binned training (``"hist"``,
    roughly an order of magnitude faster on wide matrices at a
    statistically negligible accuracy cost); ``max_bins`` caps the
    bins per feature in hist mode.
    """

    def __init__(
        self,
        criterion: str = "gini",
        splitter: str = "best",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        class_weight=None,
        min_impurity_decrease: float = 0.0,
        tree_method: str = "exact",
        max_bins: int = 255,
        random_state=None,
    ):
        self.criterion = criterion
        self.splitter = splitter
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.class_weight = class_weight
        self.min_impurity_decrease = min_impurity_decrease
        self.tree_method = tree_method
        self.max_bins = max_bins
        self.random_state = random_state

    def _validate_params(self) -> None:
        if self.criterion not in ("gini", "entropy"):
            raise ValueError("criterion must be 'gini' or 'entropy'.")
        if self.splitter not in ("best", "random"):
            raise ValueError("splitter must be 'best' or 'random'.")
        if self.tree_method not in ("exact", "hist"):
            raise ValueError("tree_method must be 'exact' or 'hist'.")
        if self.tree_method == "hist" and self.splitter == "random":
            raise ValueError(
                "splitter='random' is exact-only; histogram training "
                "searches bin boundaries, not random thresholds."
            )

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        self._validate_params()
        X, y = check_X_y(X, y)
        if self.tree_method == "hist":
            binner = Binner(self.max_bins).fit(X)
            return self.fit_binned(
                binner.transform(X), binner.bin_edges_, y, sample_weight
            )
        # Unlike the other classifiers, a tree tolerates single-class input
        # (it becomes one leaf); random-forest bootstraps rely on this.
        self.classes_, encoded = np.unique(y, return_inverse=True)
        y_encoded = encoded.astype(np.int64)
        n, n_features = X.shape

        weight = np.ones(n) if sample_weight is None else np.asarray(
            sample_weight, dtype=np.float64
        )
        weight = weight * compute_sample_weight(self.class_weight, y_encoded)

        rng = check_random_state(self.random_state)
        resolved = _resolve_max_features(self.max_features, n_features)
        builder = _TreeBuilder(
            X,
            y_encoded,
            weight,
            n_classes=len(self.classes_),
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=resolved,
            rng=rng,
            min_impurity_decrease=self.min_impurity_decrease,
            splitter=self.splitter,
        )
        builder.build()
        self._store_tree(builder, n_features)
        return self

    def fit_binned(
        self, codes, bin_edges, y, sample_weight=None
    ) -> "DecisionTreeClassifier":
        """Fit a hist-mode tree on an already-binned code matrix.

        Ensembles use this to bin once per forest and fan the shared
        ``uint8`` matrix out to every tree: ``codes`` is the
        :meth:`repro.ml.binning.Binner.transform` output and
        ``bin_edges`` the fitted binner's per-feature edge arrays used
        to reconstruct real-valued split thresholds.
        """
        self._validate_params()
        if self.tree_method != "hist":
            raise ValueError("fit_binned requires tree_method='hist'.")
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        y = np.asarray(y)
        if y.ndim != 1:
            y = y.ravel()
        if codes.ndim != 2 or codes.shape[0] != y.shape[0]:
            raise ValueError("codes must be 2D and aligned with y.")
        if codes.shape[1] != len(bin_edges):
            raise ValueError("bin_edges must describe every feature column.")
        self.classes_, encoded = np.unique(y, return_inverse=True)
        y_encoded = encoded.astype(np.int64)
        n, n_features = codes.shape

        weight = np.ones(n) if sample_weight is None else np.asarray(
            sample_weight, dtype=np.float64
        )
        weight = weight * compute_sample_weight(self.class_weight, y_encoded)

        rng = check_random_state(self.random_state)
        resolved = _resolve_max_features(self.max_features, n_features)
        builder = _HistTreeBuilder(
            codes,
            list(bin_edges),
            y_encoded,
            weight,
            n_classes=len(self.classes_),
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=resolved,
            rng=rng,
            min_impurity_decrease=self.min_impurity_decrease,
        )
        builder.build()
        self._store_tree(builder, n_features)
        return self

    def _store_tree(self, builder, n_features: int) -> None:
        self.n_features_in_ = n_features
        self.tree_feature_ = np.asarray(builder.feature, dtype=np.int64)
        self.tree_threshold_ = np.asarray(builder.threshold, dtype=np.float64)
        self.tree_left_ = np.asarray(builder.children_left, dtype=np.int64)
        self.tree_right_ = np.asarray(builder.children_right, dtype=np.int64)
        values = np.vstack(builder.value)
        totals = values.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        self.tree_value_ = values / totals
        raw = builder.importances
        self.feature_importances_ = (
            raw / raw.sum() if raw.sum() > 0 else raw
        )
        self.n_nodes_ = len(builder.feature)

    def _apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index for every row of ``X`` (shared vectorized walk)."""
        return tree_apply(
            self.tree_feature_, self.tree_threshold_,
            self.tree_left_, self.tree_right_, X,
        )

    def predict_proba(self, X, check_input: bool = True) -> np.ndarray:
        check_is_fitted(self, "tree_feature_")
        if check_input:
            X = check_array(X)
        else:
            # Trusted path: the caller guarantees a validated float64
            # 2D matrix (streaming/fleet pipelines own their buffers).
            X = np.asarray(X, dtype=np.float64)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; tree was fitted with "
                f"{self.n_features_in_}."
            )
        return self.tree_value_[self._apply(X)]

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    @property
    def depth_(self) -> int:
        """Maximum depth of the fitted tree (vectorized level walk)."""
        check_is_fitted(self, "tree_feature_")
        nodes = np.array([0], dtype=np.int64)
        depth = 0
        while True:
            internal = nodes[self.tree_feature_[nodes] != _LEAF]
            if internal.size == 0:
                return depth
            nodes = np.concatenate(
                (self.tree_left_[internal], self.tree_right_[internal])
            )
            depth += 1

    @property
    def n_leaves_(self) -> int:
        """Number of leaves of the fitted tree."""
        check_is_fitted(self, "tree_feature_")
        return int(np.count_nonzero(self.tree_feature_ == _LEAF))
