"""CART decision trees (Breiman et al., 1984) for classification.

Split finding is vectorized: per node and per candidate feature the
samples are sorted once and every split boundary is evaluated with
prefix sums of the weighted class histograms, so growing a tree costs
``O(depth * n * k * log n)`` numpy work rather than Python loops over
thresholds.

The tree is stored in flat arrays (``children_left``/``children_right``/
``feature``/``threshold``/``value``) which keeps prediction a tight
vectorized loop and makes the structure serialisable.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    check_is_fitted,
    check_random_state,
    check_X_y,
    check_array,
    compute_sample_weight,
)

__all__ = ["DecisionTreeClassifier"]

_LEAF = -1


def _node_impurity(counts: np.ndarray, criterion: str) -> float:
    """Impurity of one node given weighted class counts."""
    total = counts.sum()
    if total <= 0.0:
        return 0.0
    p = counts / total
    if criterion == "gini":
        return float(1.0 - np.sum(p * p))
    p = p[p > 0.0]
    return float(-np.sum(p * np.log2(p)))


def _split_impurities(
    left_counts: np.ndarray, right_counts: np.ndarray, criterion: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized impurity of every candidate (left, right) partition.

    ``left_counts``/``right_counts`` have shape (n_boundaries, n_classes).
    Returns (left_impurity, right_impurity, left_weight, right_weight).
    """
    left_total = left_counts.sum(axis=1)
    right_total = right_counts.sum(axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        left_p = np.where(left_total[:, None] > 0, left_counts / left_total[:, None], 0.0)
        right_p = np.where(
            right_total[:, None] > 0, right_counts / right_total[:, None], 0.0
        )
        if criterion == "gini":
            left_imp = 1.0 - np.sum(left_p * left_p, axis=1)
            right_imp = 1.0 - np.sum(right_p * right_p, axis=1)
        else:
            left_log = np.zeros_like(left_p)
            np.log2(left_p, out=left_log, where=left_p > 0)
            right_log = np.zeros_like(right_p)
            np.log2(right_p, out=right_log, where=right_p > 0)
            left_imp = -np.sum(left_p * left_log, axis=1)
            right_imp = -np.sum(right_p * right_log, axis=1)
    return left_imp, right_imp, left_total, right_total


class _TreeBuilder:
    """Grows one tree depth-first; collects nodes into Python lists."""

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray,
        n_classes: int,
        criterion: str,
        max_depth: int | None,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: int,
        rng: np.random.Generator,
        min_impurity_decrease: float,
    ):
        self.X = X
        self.y = y
        self.w = sample_weight
        self.n_classes = n_classes
        self.criterion = criterion
        self.max_depth = np.inf if max_depth is None else max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng
        self.min_impurity_decrease = min_impurity_decrease
        self.total_weight = float(sample_weight.sum())

        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.children_left: list[int] = []
        self.children_right: list[int] = []
        self.value: list[np.ndarray] = []
        self.importances = np.zeros(X.shape[1])

    def build(self) -> None:
        indices = np.arange(self.X.shape[0])
        self._grow(indices, depth=0)

    def _class_counts(self, indices: np.ndarray) -> np.ndarray:
        return np.bincount(
            self.y[indices], weights=self.w[indices], minlength=self.n_classes
        )

    def _new_leaf(self, counts: np.ndarray) -> int:
        node_id = len(self.feature)
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.children_left.append(_LEAF)
        self.children_right.append(_LEAF)
        self.value.append(counts)
        return node_id

    def _grow(self, indices: np.ndarray, depth: int) -> int:
        counts = self._class_counts(indices)
        impurity = _node_impurity(counts, self.criterion)
        n = indices.shape[0]

        is_terminal = (
            depth >= self.max_depth
            or n < self.min_samples_split
            or n < 2 * self.min_samples_leaf
            or impurity <= 1e-12
        )
        if not is_terminal:
            split = self._best_split(indices, impurity)
            is_terminal = split is None
        if is_terminal:
            return self._new_leaf(counts)

        feature_idx, threshold, gain, left_mask = split
        node_id = len(self.feature)
        self.feature.append(feature_idx)
        self.threshold.append(threshold)
        self.children_left.append(-2)  # placeholder, patched below
        self.children_right.append(-2)
        self.value.append(counts)
        self.importances[feature_idx] += (
            self.w[indices].sum() / self.total_weight
        ) * gain

        left_id = self._grow(indices[left_mask], depth + 1)
        right_id = self._grow(indices[~left_mask], depth + 1)
        self.children_left[node_id] = left_id
        self.children_right[node_id] = right_id
        return node_id

    def _best_split(self, indices: np.ndarray, parent_impurity: float):
        """Return (feature, threshold, gain, left_mask) or None."""
        n_features = self.X.shape[1]
        candidates = self.rng.permutation(n_features)
        w = self.w[indices]
        y = self.y[indices]
        node_weight = w.sum()

        best = None
        best_gain = self.min_impurity_decrease
        examined = 0
        for feature_idx in candidates:
            # scikit-learn semantics: examine at least max_features features,
            # but keep looking past constant ones.
            if examined >= self.max_features and best is not None:
                break
            column = self.X[indices, feature_idx]
            order = np.argsort(column, kind="quicksort")
            sorted_values = column[order]
            if sorted_values[0] == sorted_values[-1]:
                continue  # constant within the node
            examined += 1

            sorted_y = y[order]
            sorted_w = w[order]
            # One-hot weighted class matrix -> prefix sums give the class
            # histogram of every prefix in a single pass.
            onehot = np.zeros((len(order), self.n_classes))
            onehot[np.arange(len(order)), sorted_y] = sorted_w
            prefix = np.cumsum(onehot, axis=0)

            # Valid boundaries: between i and i+1 where the value changes
            # and both sides satisfy min_samples_leaf.
            boundary = np.flatnonzero(sorted_values[1:] != sorted_values[:-1])
            if self.min_samples_leaf > 1:
                boundary = boundary[
                    (boundary + 1 >= self.min_samples_leaf)
                    & (len(order) - boundary - 1 >= self.min_samples_leaf)
                ]
            if boundary.size == 0:
                continue

            left_counts = prefix[boundary]
            right_counts = prefix[-1] - left_counts
            left_imp, right_imp, left_w, right_w = _split_impurities(
                left_counts, right_counts, self.criterion
            )
            child_impurity = (left_w * left_imp + right_w * right_imp) / node_weight
            gains = parent_impurity - child_impurity
            best_local = int(np.argmax(gains))
            if gains[best_local] > best_gain:
                best_gain = float(gains[best_local])
                cut = boundary[best_local]
                threshold = float(
                    (sorted_values[cut] + sorted_values[cut + 1]) / 2.0
                )
                left_mask = column <= threshold
                best = (int(feature_idx), threshold, best_gain, left_mask)
        return best


def _resolve_max_features(max_features, n_features: int) -> int:
    if max_features is None:
        return n_features
    if max_features == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if max_features == "log2":
        return max(1, int(np.log2(n_features)))
    if isinstance(max_features, float):
        return max(1, int(max_features * n_features))
    if isinstance(max_features, int):
        return max(1, min(max_features, n_features))
    raise ValueError(f"Unsupported max_features: {max_features!r}")


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """CART classifier with gini/entropy splitting.

    Parameters mirror scikit-learn's estimator of the same name, which
    lets the paper's hyper-parameter grids (Table 2) apply verbatim.
    """

    def __init__(
        self,
        criterion: str = "gini",
        splitter: str = "best",
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=None,
        class_weight=None,
        min_impurity_decrease: float = 0.0,
        random_state=None,
    ):
        self.criterion = criterion
        self.splitter = splitter
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.class_weight = class_weight
        self.min_impurity_decrease = min_impurity_decrease
        self.random_state = random_state

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        if self.criterion not in ("gini", "entropy"):
            raise ValueError("criterion must be 'gini' or 'entropy'.")
        if self.splitter not in ("best", "random"):
            raise ValueError("splitter must be 'best' or 'random'.")
        X, y = check_X_y(X, y)
        # Unlike the other classifiers, a tree tolerates single-class input
        # (it becomes one leaf); random-forest bootstraps rely on this.
        self.classes_, encoded = np.unique(y, return_inverse=True)
        y_encoded = encoded.astype(np.int64)
        n, n_features = X.shape

        weight = np.ones(n) if sample_weight is None else np.asarray(
            sample_weight, dtype=np.float64
        )
        weight = weight * compute_sample_weight(self.class_weight, y_encoded)

        rng = check_random_state(self.random_state)
        resolved = _resolve_max_features(self.max_features, n_features)
        if self.splitter == "random":
            # "random" examines a single random feature per node -- a cheap
            # approximation of sklearn's randomized-threshold splitter that
            # preserves the accuracy-vs-variance trade-off it exists for.
            resolved = 1
        builder = _TreeBuilder(
            X,
            y_encoded,
            weight,
            n_classes=len(self.classes_),
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=resolved,
            rng=rng,
            min_impurity_decrease=self.min_impurity_decrease,
        )
        builder.build()

        self.n_features_in_ = n_features
        self.tree_feature_ = np.asarray(builder.feature, dtype=np.int64)
        self.tree_threshold_ = np.asarray(builder.threshold, dtype=np.float64)
        self.tree_left_ = np.asarray(builder.children_left, dtype=np.int64)
        self.tree_right_ = np.asarray(builder.children_right, dtype=np.int64)
        values = np.vstack(builder.value)
        totals = values.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        self.tree_value_ = values / totals
        raw = builder.importances
        self.feature_importances_ = (
            raw / raw.sum() if raw.sum() > 0 else raw
        )
        self.n_nodes_ = len(builder.feature)
        return self

    def _apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index for every row of ``X`` (vectorized level walk)."""
        node = np.zeros(X.shape[0], dtype=np.int64)
        active = self.tree_feature_[node] != _LEAF
        while np.any(active):
            idx = np.flatnonzero(active)
            nodes = node[idx]
            features = self.tree_feature_[nodes]
            go_left = X[idx, features] <= self.tree_threshold_[nodes]
            node[idx] = np.where(
                go_left, self.tree_left_[nodes], self.tree_right_[nodes]
            )
            active[idx] = self.tree_feature_[node[idx]] != _LEAF
        return node

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "tree_feature_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; tree was fitted with "
                f"{self.n_features_in_}."
            )
        return self.tree_value_[self._apply(X)]

    def predict(self, X) -> np.ndarray:
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]

    @property
    def depth_(self) -> int:
        """Maximum depth of the fitted tree."""
        check_is_fitted(self, "tree_feature_")
        depth = np.zeros(self.n_nodes_, dtype=np.int64)
        maximum = 0
        for node in range(self.n_nodes_):
            if self.tree_feature_[node] != _LEAF:
                for child in (self.tree_left_[node], self.tree_right_[node]):
                    depth[child] = depth[node] + 1
                    maximum = max(maximum, int(depth[child]))
        return maximum
