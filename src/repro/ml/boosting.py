"""AdaBoost with decision-tree weak learners (Freund & Schapire, 1997).

Implements both the discrete ``SAMME`` and real-valued ``SAMME.R``
algorithm variants that appear in the paper's hyper-parameter grid
(Table 2).  Weak learners are shallow CART trees configured through the
``DT_*`` parameters, matching how the paper names them.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
)
from repro.ml.binning import Binner
from repro.ml.flatforest import FlatTrees
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["AdaBoostClassifier"]


class AdaBoostClassifier(BaseEstimator, ClassifierMixin):
    """Boosted shallow decision trees.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds (paper grid: 50 / 250 / 500; 50 chosen).
    algorithm:
        ``"SAMME"`` (discrete) or ``"SAMME.R"`` (real).
    DT_criterion, DT_splitter, DT_min_samples_split, DT_max_depth:
        Configuration of the weak-learner trees, named as in Table 2.
    DT_tree_method, DT_max_bins:
        ``"hist"`` bins ``X`` once and fits every round's weak learner
        on the shared binned matrix (``DT_splitter`` must stay
        ``"best"``); the default ``"exact"`` is the historical path.
    learning_rate:
        Shrinkage applied to each round's contribution.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        algorithm: str = "SAMME.R",
        learning_rate: float = 1.0,
        DT_criterion: str = "gini",
        DT_splitter: str = "best",
        DT_min_samples_split: int = 2,
        DT_max_depth: int = 3,
        DT_tree_method: str = "exact",
        DT_max_bins: int = 255,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.algorithm = algorithm
        self.learning_rate = learning_rate
        self.DT_criterion = DT_criterion
        self.DT_splitter = DT_splitter
        self.DT_min_samples_split = DT_min_samples_split
        self.DT_max_depth = DT_max_depth
        self.DT_tree_method = DT_tree_method
        self.DT_max_bins = DT_max_bins
        self.random_state = random_state

    def _make_weak_learner(self, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            criterion=self.DT_criterion,
            splitter=self.DT_splitter,
            min_samples_split=self.DT_min_samples_split,
            max_depth=self.DT_max_depth,
            tree_method=self.DT_tree_method,
            max_bins=self.DT_max_bins,
            random_state=seed,
        )

    def fit(self, X, y) -> "AdaBoostClassifier":
        if self.algorithm not in ("SAMME", "SAMME.R"):
            raise ValueError("algorithm must be 'SAMME' or 'SAMME.R'.")
        X, y = check_X_y(X, y)
        y_encoded = self._encode_labels(y)
        n = X.shape[0]
        k = len(self.classes_)
        rng = check_random_state(self.random_state)

        hist = self.DT_tree_method == "hist"
        if hist:
            # Bin once; every boosting round's weak learner trains on
            # the same code matrix with its round-specific weights.
            binner = Binner(self.DT_max_bins).fit(X)
            codes = binner.transform(X)

        weights = np.full(n, 1.0 / n)
        self.estimators_: list[DecisionTreeClassifier] = []
        self.estimator_weights_: list[float] = []

        for _ in range(self.n_estimators):
            learner = self._make_weak_learner(int(rng.integers(0, 2**31 - 1)))
            if hist:
                learner.fit_binned(
                    codes, binner.bin_edges_, y_encoded, sample_weight=weights
                )
            else:
                learner.fit(X, y_encoded, sample_weight=weights)

            if self.algorithm == "SAMME":
                predictions = learner.predict(X)
                incorrect = predictions != y_encoded
                error = float(np.sum(weights * incorrect))
                if error <= 0.0:
                    # Perfect learner: keep it with a large weight and stop.
                    self.estimators_.append(learner)
                    self.estimator_weights_.append(10.0)
                    break
                if error >= 1.0 - 1.0 / k:
                    break  # no better than chance; boosting cannot proceed
                alpha = self.learning_rate * (
                    np.log((1.0 - error) / error) + np.log(k - 1.0)
                )
                weights *= np.exp(alpha * incorrect)
                weights /= weights.sum()
                self.estimators_.append(learner)
                self.estimator_weights_.append(float(alpha))
            else:  # SAMME.R
                proba = np.clip(learner.predict_proba(X), 1e-12, 1.0)
                log_proba = np.log(proba)
                coded = np.full((n, k), -1.0 / (k - 1.0))
                coded[np.arange(n), y_encoded] = 1.0
                # Weight update from Zhu et al. (2009), eq. 4.
                exponent = (
                    -self.learning_rate
                    * ((k - 1.0) / k)
                    * np.sum(coded * log_proba, axis=1)
                )
                weights *= np.exp(np.clip(exponent, -50.0, 50.0))
                total = weights.sum()
                if total <= 0.0 or not np.isfinite(total):
                    break
                weights /= total
                self.estimators_.append(learner)
                self.estimator_weights_.append(1.0)

        if not self.estimators_:
            raise RuntimeError("AdaBoost failed to fit any weak learner.")
        self.n_features_in_ = X.shape[1]
        self._flat_trees_ = None
        return self

    def _flat(self) -> FlatTrees:
        """Weak learners compiled flat, leaf tables at full class width.

        Each learner's value table is expanded to ``len(classes_)``
        columns via its own ``classes_`` so the per-learner score math
        below reads one gathered probability row per (sample, round).
        """
        flat = self.__dict__.get("_flat_trees_")
        if flat is None:
            k = len(self.classes_)
            values = []
            for learner in self.estimators_:
                table = learner.tree_value_
                if table.shape[1] == k:
                    values.append(table)
                else:
                    expanded = np.zeros((table.shape[0], k))
                    expanded[:, learner.classes_] = table
                    values.append(expanded)
            flat = FlatTrees.from_arrays(
                [(t.tree_feature_, t.tree_threshold_, t.tree_left_,
                  t.tree_right_) for t in self.estimators_],
                values,
            )
            self._flat_trees_ = flat
        return flat

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_flat_trees_", None)
        return state

    def _decision_scores(self, X: np.ndarray) -> np.ndarray:
        k = len(self.classes_)
        n = X.shape[0]
        # One batched traversal covers every boosting round; the
        # per-round score updates below then consume gathered leaf
        # probability rows in the historical round order.
        flat = self._flat()
        leaves = flat.apply(X)
        scores = np.zeros((n, k))
        if self.algorithm == "SAMME":
            rows = np.arange(n)
            for j, alpha in enumerate(self.estimator_weights_):
                predictions = np.argmax(flat.value[leaves[:, j]], axis=1)
                scores[rows, predictions] += alpha
        else:
            for j in range(len(self.estimators_)):
                proba = np.clip(flat.value[leaves[:, j]], 1e-12, 1.0)
                log_proba = np.log(proba)
                scores += (k - 1.0) * (
                    log_proba - log_proba.mean(axis=1, keepdims=True)
                )
        return scores

    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        scores = self._decision_scores(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        scores = self._decision_scores(X)
        scores = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(scores)
        return exp / exp.sum(axis=1, keepdims=True)
