"""Second-order gradient-boosted trees (XGBoost-style; Chen & Guestrin 2016).

Binary classification with logistic loss.  Each round fits a regression
tree to the first/second derivatives of the loss; splits maximize the
regularised gain

    gain = 1/2 * [GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda)] - gamma

and respect ``min_child_weight`` (minimum hessian mass per child) --
the exact semantics of the XGBoost parameters in the paper's Table-2
grid (``min_child_weight``, ``max_depth``, ``gamma``).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_is_fitted,
    check_X_y,
)

__all__ = ["GradientBoostingClassifier"]

_LEAF = -1


class _BoostTree:
    """One regression tree fitted to (gradient, hessian) statistics."""

    def __init__(
        self,
        max_depth: int,
        min_child_weight: float,
        gamma: float,
        reg_lambda: float,
        max_leaves: int,
    ):
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.gamma = gamma
        self.reg_lambda = reg_lambda
        self.max_leaves = max_leaves
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.leaf_value: list[float] = []
        self._n_leaves = 0

    def fit(self, X: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> None:
        self._grow(X, grad, hess, np.arange(X.shape[0]), depth=0)

    def _leaf(self, grad_sum: float, hess_sum: float) -> int:
        node = len(self.feature)
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.leaf_value.append(-grad_sum / (hess_sum + self.reg_lambda))
        self._n_leaves += 1
        return node

    def _grow(
        self,
        X: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        indices: np.ndarray,
        depth: int,
    ) -> int:
        g_total = float(grad[indices].sum())
        h_total = float(hess[indices].sum())
        if (
            depth >= self.max_depth
            or indices.size < 2
            or self._n_leaves >= self.max_leaves - 1
        ):
            return self._leaf(g_total, h_total)

        split = self._best_split(X, grad, hess, indices, g_total, h_total)
        if split is None:
            return self._leaf(g_total, h_total)
        feature_idx, threshold, left_mask = split

        node = len(self.feature)
        self.feature.append(feature_idx)
        self.threshold.append(threshold)
        self.left.append(-2)
        self.right.append(-2)
        self.leaf_value.append(0.0)

        left_id = self._grow(X, grad, hess, indices[left_mask], depth + 1)
        right_id = self._grow(X, grad, hess, indices[~left_mask], depth + 1)
        self.left[node] = left_id
        self.right[node] = right_id
        return node

    def _best_split(self, X, grad, hess, indices, g_total, h_total):
        parent_score = g_total * g_total / (h_total + self.reg_lambda)
        best_gain = 0.0
        best = None
        for feature_idx in range(X.shape[1]):
            column = X[indices, feature_idx]
            order = np.argsort(column, kind="quicksort")
            sorted_values = column[order]
            if sorted_values[0] == sorted_values[-1]:
                continue
            g_prefix = np.cumsum(grad[indices][order])
            h_prefix = np.cumsum(hess[indices][order])
            boundary = np.flatnonzero(sorted_values[1:] != sorted_values[:-1])
            if boundary.size == 0:
                continue
            g_left = g_prefix[boundary]
            h_left = h_prefix[boundary]
            g_right = g_total - g_left
            h_right = h_total - h_left
            valid = (h_left >= self.min_child_weight) & (
                h_right >= self.min_child_weight
            )
            if not np.any(valid):
                continue
            gains = 0.5 * (
                g_left**2 / (h_left + self.reg_lambda)
                + g_right**2 / (h_right + self.reg_lambda)
                - parent_score
            ) - self.gamma
            gains[~valid] = -np.inf
            local = int(np.argmax(gains))
            if gains[local] > best_gain:
                best_gain = float(gains[local])
                cut = boundary[local]
                threshold = float((sorted_values[cut] + sorted_values[cut + 1]) / 2)
                best = (feature_idx, threshold, column <= threshold)
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        feature = np.asarray(self.feature)
        threshold = np.asarray(self.threshold)
        left = np.asarray(self.left)
        right = np.asarray(self.right)
        value = np.asarray(self.leaf_value)
        node = np.zeros(X.shape[0], dtype=np.int64)
        active = feature[node] != _LEAF
        while np.any(active):
            idx = np.flatnonzero(active)
            nodes = node[idx]
            go_left = X[idx, feature[nodes]] <= threshold[nodes]
            node[idx] = np.where(go_left, left[nodes], right[nodes])
            active[idx] = feature[node[idx]] != _LEAF
        return value[node]


class GradientBoostingClassifier(BaseEstimator, ClassifierMixin):
    """Binary gradient boosting with logistic loss and XGBoost regularisers.

    The paper's grid (Table 2) selected ``min_child_weight=1``,
    ``max_depth=64``, ``gamma=0``.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.3,
        max_depth: int = 6,
        min_child_weight: float = 1.0,
        gamma: float = 0.0,
        reg_lambda: float = 1.0,
        subsample: float = 1.0,
        max_leaves: int = 4096,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.gamma = gamma
        self.reg_lambda = reg_lambda
        self.subsample = subsample
        self.max_leaves = max_leaves
        self.random_state = random_state

    def fit(self, X, y) -> "GradientBoostingClassifier":
        X, y = check_X_y(X, y)
        y_encoded = self._encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("GradientBoostingClassifier is binary-only.")
        n = X.shape[0]
        rng = np.random.default_rng(self.random_state)
        target = y_encoded.astype(np.float64)

        positive_rate = float(np.clip(target.mean(), 1e-6, 1 - 1e-6))
        self.base_score_ = float(np.log(positive_rate / (1 - positive_rate)))
        raw = np.full(n, self.base_score_)

        self.trees_: list[_BoostTree] = []
        for _ in range(self.n_estimators):
            probability = 1.0 / (1.0 + np.exp(-raw))
            grad = probability - target
            hess = probability * (1.0 - probability)
            tree = _BoostTree(
                max_depth=self.max_depth,
                min_child_weight=self.min_child_weight,
                gamma=self.gamma,
                reg_lambda=self.reg_lambda,
                max_leaves=self.max_leaves,
            )
            if self.subsample < 1.0:
                chosen = rng.random(n) < self.subsample
                if chosen.sum() < 2:
                    chosen = np.ones(n, dtype=bool)
                tree.fit(X[chosen], grad[chosen], hess[chosen])
            else:
                tree.fit(X, grad, hess)
            update = tree.predict(X)
            raw += self.learning_rate * update
            self.trees_.append(tree)
            if np.max(np.abs(grad)) < 1e-6:
                break  # already fit perfectly; further rounds are no-ops

        self.n_features_in_ = X.shape[1]
        return self

    def decision_function(self, X) -> np.ndarray:
        check_is_fitted(self, "trees_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; model was fitted with "
                f"{self.n_features_in_}."
            )
        raw = np.full(X.shape[0], self.base_score_)
        for tree in self.trees_:
            raw += self.learning_rate * tree.predict(X)
        return raw

    def predict_proba(self, X) -> np.ndarray:
        positive = 1.0 / (1.0 + np.exp(-self.decision_function(X)))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        positive = self.predict_proba(X)[:, 1]
        return self.classes_[(positive >= 0.5).astype(np.int64)]
