"""Second-order gradient-boosted trees (XGBoost-style; Chen & Guestrin 2016).

Binary classification with logistic loss.  Each round fits a regression
tree to the first/second derivatives of the loss; splits maximize the
regularised gain

    gain = 1/2 * [GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda)] - gamma

and respect ``min_child_weight`` (minimum hessian mass per child) --
the exact semantics of the XGBoost parameters in the paper's Table-2
grid (``min_child_weight``, ``max_depth``, ``gamma``).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_is_fitted,
    check_X_y,
)
from repro.ml.binning import Binner
from repro.ml.flatforest import FlatTrees, tree_apply

__all__ = ["GradientBoostingClassifier"]

_LEAF = -1


class _BoostTree:
    """One regression tree fitted to (gradient, hessian) statistics."""

    def __init__(
        self,
        max_depth: int,
        min_child_weight: float,
        gamma: float,
        reg_lambda: float,
        max_leaves: int,
    ):
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.gamma = gamma
        self.reg_lambda = reg_lambda
        self.max_leaves = max_leaves
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.leaf_value: list[float] = []
        self._n_leaves = 0

    def fit(self, X: np.ndarray, grad: np.ndarray, hess: np.ndarray) -> None:
        self._grow(X, grad, hess, np.arange(X.shape[0]), depth=0)

    def _leaf(self, grad_sum: float, hess_sum: float) -> int:
        node = len(self.feature)
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.leaf_value.append(-grad_sum / (hess_sum + self.reg_lambda))
        self._n_leaves += 1
        return node

    def _grow(
        self,
        X: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        indices: np.ndarray,
        depth: int,
    ) -> int:
        g_total = float(grad[indices].sum())
        h_total = float(hess[indices].sum())
        if (
            depth >= self.max_depth
            or indices.size < 2
            or self._n_leaves >= self.max_leaves - 1
        ):
            return self._leaf(g_total, h_total)

        split = self._best_split(X, grad, hess, indices, g_total, h_total)
        if split is None:
            return self._leaf(g_total, h_total)
        feature_idx, threshold, left_mask = split

        node = len(self.feature)
        self.feature.append(feature_idx)
        self.threshold.append(threshold)
        self.left.append(-2)
        self.right.append(-2)
        self.leaf_value.append(0.0)

        left_id = self._grow(X, grad, hess, indices[left_mask], depth + 1)
        right_id = self._grow(X, grad, hess, indices[~left_mask], depth + 1)
        self.left[node] = left_id
        self.right[node] = right_id
        return node

    def _best_split(self, X, grad, hess, indices, g_total, h_total):
        parent_score = g_total * g_total / (h_total + self.reg_lambda)
        best_gain = 0.0
        best = None
        for feature_idx in range(X.shape[1]):
            column = X[indices, feature_idx]
            order = np.argsort(column, kind="quicksort")
            sorted_values = column[order]
            if sorted_values[0] == sorted_values[-1]:
                continue
            g_prefix = np.cumsum(grad[indices][order])
            h_prefix = np.cumsum(hess[indices][order])
            boundary = np.flatnonzero(sorted_values[1:] != sorted_values[:-1])
            if boundary.size == 0:
                continue
            g_left = g_prefix[boundary]
            h_left = h_prefix[boundary]
            g_right = g_total - g_left
            h_right = h_total - h_left
            valid = (h_left >= self.min_child_weight) & (
                h_right >= self.min_child_weight
            )
            if not np.any(valid):
                continue
            gains = 0.5 * (
                g_left**2 / (h_left + self.reg_lambda)
                + g_right**2 / (h_right + self.reg_lambda)
                - parent_score
            ) - self.gamma
            gains[~valid] = -np.inf
            local = int(np.argmax(gains))
            if gains[local] > best_gain:
                best_gain = float(gains[local])
                cut = boundary[local]
                threshold = float((sorted_values[cut] + sorted_values[cut + 1]) / 2)
                best = (feature_idx, threshold, column <= threshold)
        return best

    # ------------------------------------------------------------------
    # Histogram-binned growth (tree_method="hist")
    # ------------------------------------------------------------------
    def fit_hist(
        self,
        codes: np.ndarray,
        bin_edges: list[np.ndarray],
        keys: np.ndarray,
        starts: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
    ) -> None:
        """Grow over a pre-binned matrix with G/H/count histograms.

        ``keys`` is the per-(sample, feature) flat bin key matrix
        ``starts[f] + codes[i, f]`` -- the boosting loop computes it once
        and reuses it for every round.  Unlike the classification hist
        builder (which histograms only each node's candidate features),
        the GBM scores *every* feature at every node, so full-width
        histograms pay off and enable the sibling-subtraction trick:
        only the smaller child of a split is re-scanned, the larger
        child's histogram is the parent's minus the sibling's.
        """
        self._codes = codes
        self._edges = bin_edges
        self._keys = keys
        self._starts = starts
        self._total_bins = int(starts[-1])
        self._grad = grad
        self._hess = hess
        self._grow_hist(np.arange(codes.shape[0]), depth=0, hists=None)
        del self._codes, self._edges, self._keys, self._grad, self._hess

    def _node_hists(self, indices: np.ndarray):
        flat = self._keys[indices].ravel()
        n_features = self._keys.shape[1]
        g_hist = np.bincount(
            flat,
            weights=np.repeat(self._grad[indices], n_features),
            minlength=self._total_bins,
        )
        h_hist = np.bincount(
            flat,
            weights=np.repeat(self._hess[indices], n_features),
            minlength=self._total_bins,
        )
        n_hist = np.bincount(flat, minlength=self._total_bins)
        return g_hist, h_hist, n_hist

    def _grow_hist(self, indices: np.ndarray, depth: int, hists) -> int:
        g_total = float(self._grad[indices].sum())
        h_total = float(self._hess[indices].sum())
        if (
            depth >= self.max_depth
            or indices.size < 2
            or self._n_leaves >= self.max_leaves - 1
        ):
            return self._leaf(g_total, h_total)

        if hists is None:
            hists = self._node_hists(indices)
        split = self._best_split_hist(indices, hists, g_total, h_total)
        if split is None:
            return self._leaf(g_total, h_total)
        feature_idx, threshold, left_mask = split

        node = len(self.feature)
        self.feature.append(feature_idx)
        self.threshold.append(threshold)
        self.left.append(-2)
        self.right.append(-2)
        self.leaf_value.append(0.0)

        left_indices = indices[left_mask]
        right_indices = indices[~left_mask]
        # Sibling subtraction, but only when re-scanning the smaller
        # child would cost more than the subtraction itself
        # (n_small x n_features vs total_bins array ops); below that
        # cutoff each child cheaply rebuilds its own histogram on
        # demand, which also keeps live histogram memory bounded: an
        # ancestor only holds histograms for splits whose *smaller*
        # side exceeded total_bins / n_features samples, and node size
        # shrinks by at least that much at every such level.
        left_hists = right_hists = None
        smaller_n = min(left_indices.size, right_indices.size)
        if smaller_n * self._keys.shape[1] > self._total_bins:
            if left_indices.size <= right_indices.size:
                left_hists = self._node_hists(left_indices)
                right_hists = tuple(p - c for p, c in zip(hists, left_hists))
            else:
                right_hists = self._node_hists(right_indices)
                left_hists = tuple(p - c for p, c in zip(hists, right_hists))
        del hists

        left_id = self._grow_hist(left_indices, depth + 1, left_hists)
        left_hists = None
        right_id = self._grow_hist(right_indices, depth + 1, right_hists)
        self.left[node] = left_id
        self.right[node] = right_id
        return node

    def _best_split_hist(self, indices, hists, g_total, h_total):
        g_hist, h_hist, n_hist = hists
        parent_score = g_total * g_total / (h_total + self.reg_lambda)

        # Only occupied bins can host a boundary (an empty bin's split
        # duplicates its predecessor's); each feature's last occupied
        # bin is excluded because nothing would go right.
        occupied = np.flatnonzero(n_hist > 0)
        occ_feat = np.searchsorted(self._starts, occupied, side="right") - 1
        boundary_pos = np.flatnonzero(occ_feat[:-1] == occ_feat[1:])
        if boundary_pos.size == 0:
            return None

        cum_g = np.cumsum(g_hist[occupied])
        cum_h = np.cumsum(h_hist[occupied])
        n_features = self._keys.shape[1]
        first_occ = np.searchsorted(occ_feat, np.arange(n_features))
        base_g = np.concatenate(([0.0], cum_g))
        base_h = np.concatenate(([0.0], cum_h))
        boundary_base = first_occ[occ_feat[boundary_pos]]
        g_left = cum_g[boundary_pos] - base_g[boundary_base]
        h_left = cum_h[boundary_pos] - base_h[boundary_base]
        g_right = g_total - g_left
        h_right = h_total - h_left

        valid = np.flatnonzero(
            (h_left >= self.min_child_weight)
            & (h_right >= self.min_child_weight)
        )
        if valid.size == 0:
            return None
        g_left, h_left = g_left[valid], h_left[valid]
        g_right, h_right = g_right[valid], h_right[valid]
        gains = 0.5 * (
            g_left**2 / (h_left + self.reg_lambda)
            + g_right**2 / (h_right + self.reg_lambda)
            - parent_score
        ) - self.gamma
        local = int(np.argmax(gains))
        if gains[local] <= 0.0:
            return None
        best_flat = int(occupied[boundary_pos[valid[local]]])
        feature_idx = int(occ_feat[boundary_pos[valid[local]]])
        split_bin = best_flat - int(self._starts[feature_idx])
        threshold = float(self._edges[feature_idx][split_bin])
        left_mask = self._codes[indices, feature_idx] <= split_bin
        return feature_idx, threshold, left_mask

    def predict(self, X: np.ndarray) -> np.ndarray:
        feature = np.asarray(self.feature, dtype=np.int64)
        threshold = np.asarray(self.threshold, dtype=np.float64)
        left = np.asarray(self.left, dtype=np.int64)
        right = np.asarray(self.right, dtype=np.int64)
        value = np.asarray(self.leaf_value, dtype=np.float64)
        return value[tree_apply(feature, threshold, left, right, X)]


class GradientBoostingClassifier(BaseEstimator, ClassifierMixin):
    """Binary gradient boosting with logistic loss and XGBoost regularisers.

    The paper's grid (Table 2) selected ``min_child_weight=1``,
    ``max_depth=64``, ``gamma=0``.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.3,
        max_depth: int = 6,
        min_child_weight: float = 1.0,
        gamma: float = 0.0,
        reg_lambda: float = 1.0,
        subsample: float = 1.0,
        max_leaves: int = 4096,
        tree_method: str = "exact",
        max_bins: int = 255,
        random_state=None,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.gamma = gamma
        self.reg_lambda = reg_lambda
        self.subsample = subsample
        self.max_leaves = max_leaves
        self.tree_method = tree_method
        self.max_bins = max_bins
        self.random_state = random_state

    def fit(self, X, y) -> "GradientBoostingClassifier":
        if self.tree_method not in ("exact", "hist"):
            raise ValueError("tree_method must be 'exact' or 'hist'.")
        X, y = check_X_y(X, y)
        y_encoded = self._encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("GradientBoostingClassifier is binary-only.")
        n = X.shape[0]
        rng = np.random.default_rng(self.random_state)
        target = y_encoded.astype(np.float64)

        hist = self.tree_method == "hist"
        if hist:
            # Bin once per fit; the flat per-(sample, feature) bin keys
            # are shared by every boosting round's histograms.
            binner = Binner(self.max_bins).fit(X)
            codes = binner.transform(X)
            starts = np.zeros(len(binner.n_bins_) + 1, dtype=np.int64)
            np.cumsum(binner.n_bins_, out=starts[1:])
            keys = codes.astype(np.int64) + starts[:-1]

        positive_rate = float(np.clip(target.mean(), 1e-6, 1 - 1e-6))
        self.base_score_ = float(np.log(positive_rate / (1 - positive_rate)))
        raw = np.full(n, self.base_score_)

        self.trees_: list[_BoostTree] = []
        for _ in range(self.n_estimators):
            probability = 1.0 / (1.0 + np.exp(-raw))
            grad = probability - target
            hess = probability * (1.0 - probability)
            tree = _BoostTree(
                max_depth=self.max_depth,
                min_child_weight=self.min_child_weight,
                gamma=self.gamma,
                reg_lambda=self.reg_lambda,
                max_leaves=self.max_leaves,
            )
            if self.subsample < 1.0:
                chosen = rng.random(n) < self.subsample
                if chosen.sum() < 2:
                    chosen = np.ones(n, dtype=bool)
            else:
                chosen = slice(None)
            if hist:
                tree.fit_hist(
                    codes[chosen],
                    binner.bin_edges_,
                    keys[chosen],
                    starts,
                    grad[chosen],
                    hess[chosen],
                )
            else:
                tree.fit(X[chosen], grad[chosen], hess[chosen])
            update = tree.predict(X)
            raw += self.learning_rate * update
            self.trees_.append(tree)
            if np.max(np.abs(grad)) < 1e-6:
                break  # already fit perfectly; further rounds are no-ops

        self.n_features_in_ = X.shape[1]
        self._flat_trees_ = None
        return self

    def _flat(self) -> FlatTrees:
        """Compiled flat representation of the boosted trees (lazy)."""
        flat = self.__dict__.get("_flat_trees_")
        if flat is None:
            flat = FlatTrees.from_arrays(
                [(t.feature, t.threshold, t.left, t.right)
                 for t in self.trees_],
                [t.leaf_value for t in self.trees_],
            )
            self._flat_trees_ = flat
        return flat

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_flat_trees_", None)
        return state

    def decision_function(self, X) -> np.ndarray:
        check_is_fitted(self, "trees_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; model was fitted with "
                f"{self.n_features_in_}."
            )
        # One batched traversal for every boosting round, then a
        # sequential left-fold over [base_score | per-round updates] --
        # the same float addition order as the historical per-tree
        # ``raw += lr * tree.predict(X)`` loop, so scores are bitwise
        # unchanged.
        flat = self._flat()
        contributions = self.learning_rate * flat.value[flat.apply(X)]
        terms = np.concatenate(
            [np.full((X.shape[0], 1), self.base_score_), contributions],
            axis=1,
        )
        return np.add.accumulate(terms, axis=1)[:, -1]

    def predict_proba(self, X) -> np.ndarray:
        positive = 1.0 / (1.0 + np.exp(-self.decision_function(X)))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        positive = self.predict_proba(X)[:, 1]
        return self.classes_[(positive >= 0.5).astype(np.int64)]
