"""Estimator plumbing shared by every model in :mod:`repro.ml`.

Mirrors the small slice of the scikit-learn estimator contract that the
rest of the repository relies on: constructor-args-are-hyperparameters,
``get_params``/``set_params``, and :func:`clone` for model selection.
"""

from __future__ import annotations

import inspect
from typing import Any

import numpy as np

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "NotFittedError",
    "check_X_y",
    "check_array",
    "check_is_fitted",
    "clone",
]


class NotFittedError(RuntimeError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


def check_array(X: Any, *, dtype=np.float64, ensure_2d: bool = True) -> np.ndarray:
    """Convert ``X`` to a contiguous float array and validate its shape."""
    X = np.asarray(X, dtype=dtype)
    if ensure_2d:
        if X.ndim == 1:
            raise ValueError(
                "Expected a 2D array; reshape your data with X.reshape(-1, 1) "
                "for a single feature or X.reshape(1, -1) for a single sample."
            )
        if X.ndim != 2:
            raise ValueError(f"Expected a 2D array, got {X.ndim}D.")
    if X.size and not np.all(np.isfinite(X)):
        raise ValueError("Input contains NaN or infinity.")
    return np.ascontiguousarray(X)


def check_X_y(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / label vector pair."""
    X = check_array(X)
    y = np.asarray(y)
    if y.ndim != 1:
        y = y.ravel()
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X has {X.shape[0]} samples but y has {y.shape[0]} labels."
        )
    if X.shape[0] == 0:
        raise ValueError("Cannot fit with 0 samples.")
    return X, y


def check_is_fitted(estimator: Any, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``estimator`` has ``attribute``."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet; call fit() first."
        )


class BaseEstimator:
    """Base class providing parameter introspection for all estimators.

    Subclasses must accept every hyper-parameter as an explicit keyword
    argument in ``__init__`` and store it under the same name, which is
    what makes :func:`clone` and grid search possible.
    """

    @classmethod
    def _param_names(cls) -> list[str]:
        signature = inspect.signature(cls.__init__)
        return [
            name
            for name, param in signature.parameters.items()
            if name != "self" and param.kind != inspect.Parameter.VAR_KEYWORD
        ]

    def get_params(self) -> dict[str, Any]:
        """Return the estimator's hyper-parameters as a dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyper-parameters; unknown names raise ``ValueError``."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"Invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}."
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


class ClassifierMixin:
    """Adds ``score`` (accuracy) and label-encoding helpers."""

    def score(self, X, y) -> float:
        """Mean accuracy of ``self.predict(X)`` against ``y``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))

    def _encode_labels(self, y: np.ndarray) -> np.ndarray:
        """Store ``classes_`` and return labels as indices 0..n_classes-1."""
        self.classes_, encoded = np.unique(y, return_inverse=True)
        if len(self.classes_) < 2:
            raise ValueError(
                "Classifier requires at least 2 classes in the training data; "
                f"got {len(self.classes_)}."
            )
        return encoded.astype(np.int64)


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of ``estimator`` with identical parameters."""
    return type(estimator)(**estimator.get_params())


def check_random_state(seed) -> np.random.Generator:
    """Turn ``seed`` (None, int, or Generator) into a numpy Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def compute_sample_weight(class_weight, y: np.ndarray) -> np.ndarray:
    """Per-sample weights for ``class_weight`` in {None, 'balanced', dict}.

    ``'balanced'`` replicates scikit-learn: ``n / (k * bincount(y))``.
    """
    n = y.shape[0]
    if class_weight is None:
        return np.ones(n)
    classes, counts = np.unique(y, return_counts=True)
    if class_weight == "balanced" or class_weight == "balanced_subsample" \
            or class_weight == "subsample":
        per_class = n / (len(classes) * counts)
        weight_of = dict(zip(classes.tolist(), per_class.tolist()))
    elif isinstance(class_weight, dict):
        weight_of = {c: class_weight.get(c, 1.0) for c in classes.tolist()}
    else:
        raise ValueError(f"Unsupported class_weight: {class_weight!r}")
    table = np.array([weight_of[c] for c in classes.tolist()])
    index = np.searchsorted(classes, y)
    return table[index]
