"""Cross-validation and hyper-parameter search.

The paper performs 5-fold cross-validation *grouped by training run*
(section 3.4: "20 sets for training and 5 sets for validation in the
fold", i.e. the 25 Table-1 datasets are the fold unit, not individual
samples) to avoid leaking a run's temporal structure across folds.
:class:`GroupKFold` implements that; :class:`GridSearchCV` runs an
exhaustive parameter-grid search over any estimator built on
:class:`repro.ml.base.BaseEstimator`.

Fold and candidate evaluations are independent, so both
:func:`cross_val_score` and :class:`GridSearchCV` accept ``n_jobs``
and fan fold x candidate fits out over :func:`repro.parallel.parallel_map`.
The CV splits are materialised once in the parent and the corpus is
passed through shared memory, so scores -- and the selected
``best_params_`` -- are identical at every ``n_jobs``.  With workers, a
callable ``scoring`` must be picklable (a module-level function, not a
lambda); the built-in names are resolved inside the worker.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from repro.ml.base import BaseEstimator, check_random_state, clone
from repro.ml.metrics import accuracy_score, f1_score
from repro.parallel import parallel_map

__all__ = [
    "KFold",
    "GroupKFold",
    "train_test_split",
    "cross_val_score",
    "ParameterGrid",
    "GridSearchCV",
]


class KFold:
    """Plain k-fold splitter with optional shuffling."""

    def __init__(self, n_splits: int = 5, shuffle: bool = False, random_state=None):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2.")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y=None, groups=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(X)
        if n < self.n_splits:
            raise ValueError(
                f"Cannot split {n} samples into {self.n_splits} folds."
            )
        indices = np.arange(n)
        if self.shuffle:
            indices = check_random_state(self.random_state).permutation(n)
        folds = np.array_split(indices, self.n_splits)
        for k in range(self.n_splits):
            validation = folds[k]
            training = np.concatenate([folds[j] for j in range(self.n_splits) if j != k])
            yield training, validation


class GroupKFold:
    """K-fold where all samples of one group land in the same fold.

    Groups are balanced greedily by sample count (largest group first),
    matching scikit-learn's behaviour.
    """

    def __init__(self, n_splits: int = 5):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2.")
        self.n_splits = n_splits

    def split(self, X, y=None, groups=None) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if groups is None:
            raise ValueError("GroupKFold requires a groups array.")
        groups = np.asarray(groups)
        if len(groups) != len(X):
            raise ValueError("groups must align with X.")
        unique, counts = np.unique(groups, return_counts=True)
        if len(unique) < self.n_splits:
            raise ValueError(
                f"Need at least {self.n_splits} groups, got {len(unique)}."
            )
        fold_sizes = np.zeros(self.n_splits)
        fold_of_group: dict[Any, int] = {}
        for group in unique[np.argsort(counts)[::-1]]:
            fold = int(np.argmin(fold_sizes))
            fold_of_group[group] = fold
            fold_sizes[fold] += counts[unique.tolist().index(group)]
        fold_assignment = np.array([fold_of_group[g] for g in groups])
        indices = np.arange(len(groups))
        for k in range(self.n_splits):
            validation = indices[fold_assignment == k]
            training = indices[fold_assignment != k]
            yield training, validation


def train_test_split(
    *arrays, test_size: float = 0.25, shuffle: bool = True, random_state=None
):
    """Split any number of aligned arrays into train/test partitions."""
    if not arrays:
        raise ValueError("At least one array is required.")
    n = len(arrays[0])
    for array in arrays:
        if len(array) != n:
            raise ValueError("All arrays must have the same length.")
    n_test = int(np.ceil(n * test_size)) if isinstance(test_size, float) else test_size
    if not 0 < n_test < n:
        raise ValueError("test_size leaves an empty train or test partition.")
    indices = np.arange(n)
    if shuffle:
        indices = check_random_state(random_state).permutation(n)
    test_idx, train_idx = indices[:n_test], indices[n_test:]
    result = []
    for array in arrays:
        array = np.asarray(array)
        result.extend([array[train_idx], array[test_idx]])
    return result


def _accuracy_scorer(est, X, y) -> float:
    return accuracy_score(y, est.predict(X))


def _f1_scorer(est, X, y) -> float:
    return f1_score(y, est.predict(X))


def _resolve_scorer(scoring) -> Callable[[Any, np.ndarray, np.ndarray], float]:
    if callable(scoring):
        return scoring
    if scoring in (None, "accuracy"):
        return _accuracy_scorer
    if scoring == "f1":
        return _f1_scorer
    raise ValueError(f"Unknown scoring: {scoring!r}")


def _fit_and_score_task(task, arrays) -> float:
    """Fit one (estimator, fold) pair and return its validation score.

    Runs in-process or in a pool worker; ``X``/``y`` arrive through the
    shared array dict, the fold index arrays ride in the task payload.
    """
    estimator, train_idx, valid_idx, scoring = task
    X, y = arrays["X"], arrays["y"]
    scorer = _resolve_scorer(scoring)
    model = clone(estimator)
    model.fit(X[train_idx], y[train_idx])
    return scorer(model, X[valid_idx], y[valid_idx])


def cross_val_score(
    estimator: BaseEstimator,
    X,
    y,
    *,
    cv=None,
    groups=None,
    scoring=None,
    n_jobs: int | None = None,
) -> np.ndarray:
    """Fit/score the estimator on each CV fold; returns the fold scores.

    ``n_jobs`` evaluates folds in parallel worker processes; the splits
    are computed once up front, so scores match the serial run.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    splitter = cv if cv is not None else KFold(n_splits=5)
    tasks = [
        (estimator, train_idx, valid_idx, scoring)
        for train_idx, valid_idx in splitter.split(X, y, groups)
    ]
    scores = parallel_map(
        _fit_and_score_task, tasks, n_jobs=n_jobs, shared={"X": X, "y": y}
    )
    return np.asarray(scores)


class ParameterGrid:
    """Iterate the Cartesian product of a dict of parameter lists."""

    def __init__(self, grid: dict[str, list]):
        if not isinstance(grid, dict):
            raise ValueError("grid must be a dict of parameter lists.")
        self.grid = {key: list(values) for key, values in grid.items()}

    def __iter__(self) -> Iterator[dict[str, Any]]:
        if not self.grid:
            yield {}
            return
        keys = sorted(self.grid)
        for combination in itertools.product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, combination))

    def __len__(self) -> int:
        total = 1
        for values in self.grid.values():
            total *= len(values)
        return total


@dataclass
class GridSearchCV:
    """Exhaustive grid search with cross-validated scoring.

    After :meth:`fit`, ``best_estimator_`` is refitted on the full data
    with ``best_params_``.

    ``n_jobs`` flattens the full candidate x fold task matrix over
    worker processes -- the unit of parallelism is one fit, so a 9-point
    grid under 5-fold CV keeps 45 tasks in flight.  Candidate
    aggregation and tie-breaking (first strict improvement in grid
    order) are done in the parent in grid order, so ``best_params_`` is
    independent of ``n_jobs``.
    """

    estimator: BaseEstimator
    param_grid: dict[str, list]
    cv: Any = None
    scoring: Any = None
    n_jobs: int | None = None
    results_: list[dict] = field(default_factory=list, init=False)

    def fit(self, X, y, groups=None) -> "GridSearchCV":
        X = np.asarray(X)
        y = np.asarray(y)
        splitter = self.cv if self.cv is not None else KFold(n_splits=5)
        folds = list(splitter.split(X, y, groups))
        candidates = list(ParameterGrid(self.param_grid))
        tasks = [
            (
                clone(self.estimator).set_params(**params),
                train_idx,
                valid_idx,
                self.scoring,
            )
            for params in candidates
            for train_idx, valid_idx in folds
        ]
        flat_scores = parallel_map(
            _fit_and_score_task,
            tasks,
            n_jobs=self.n_jobs,
            shared={"X": X, "y": y},
        )
        score_matrix = np.asarray(flat_scores, dtype=np.float64).reshape(
            len(candidates), len(folds)
        )

        self.results_ = []
        best_score = -np.inf
        best_params: dict[str, Any] | None = None
        for params, scores in zip(candidates, score_matrix):
            mean_score = float(np.mean(scores))
            self.results_.append(
                {"params": params, "mean_score": mean_score, "scores": scores}
            )
            if mean_score > best_score:
                best_score = mean_score
                best_params = params
        assert best_params is not None  # grid is never empty
        self.best_params_ = best_params
        self.best_score_ = best_score
        self.best_estimator_ = clone(self.estimator).set_params(**best_params)
        self.best_estimator_.fit(X, y)
        return self

    def predict(self, X) -> np.ndarray:
        return self.best_estimator_.predict(X)
