"""Quantile feature binning for histogram-based tree growth.

Histogram ("hist") tree training discretises every feature into at most
``max_bins`` ordinal bins *once per forest* and grows trees over the
resulting ``uint8`` code matrix, the approach popularised by LightGBM
(Ke et al., NeurIPS '17) and XGBoost's ``tree_method=hist`` (Chen &
Guestrin, KDD '16).  :class:`Binner` owns the two halves of that
contract:

- **Binning**: per feature, bin edges are chosen so that ``code(x) <= b``
  is exactly ``x <= bin_edges_[f][b]``.  Features with few distinct
  values get midpoint edges (identical to the candidate thresholds the
  exact splitter would consider); high-cardinality features fall back
  to (unique) quantile edges, balancing sample mass per bin.
- **Threshold reconstruction**: a split "code <= b" found on the binned
  matrix is stored in the tree as the real-valued threshold
  ``bin_edges_[f][b]``, so fitted trees predict on *raw* feature
  matrices and are structurally indistinguishable from exact-mode
  trees.

Non-finite handling: ``-inf`` lands in bin 0, ``+inf`` in the top bin,
and ``NaN`` is mapped to the top bin as well (missing treated as
"high", the FN-averse choice for saturation metrics).  Edges themselves
are always finite and strictly increasing.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Binner"]


class Binner:
    """Per-feature quantile binner producing ``uint8`` codes.

    Parameters
    ----------
    max_bins:
        Upper bound on bins per feature, at most 256 so codes fit in
        ``uint8``.  The default 255 mirrors LightGBM.
    """

    def __init__(self, max_bins: int = 255):
        if not 2 <= max_bins <= 256:
            raise ValueError("max_bins must be in [2, 256].")
        self.max_bins = max_bins

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "Binner":
        """Learn per-feature bin edges from the training matrix."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("Binner expects a 2D matrix.")
        self.n_features_in_ = X.shape[1]
        self.bin_edges_: list[np.ndarray] = [
            self._feature_edges(X[:, f]) for f in range(X.shape[1])
        ]
        self.n_bins_ = np.array(
            [edges.size + 1 for edges in self.bin_edges_], dtype=np.int64
        )
        return self

    def _feature_edges(self, column: np.ndarray) -> np.ndarray:
        finite = column[np.isfinite(column)]
        if finite.size == 0:
            return np.empty(0)
        # One sort serves both the distinct-value extraction and the
        # quantile computation (np.unique and np.quantile would each
        # sort again; this fit runs over every feature of the matrix).
        ordered = np.sort(finite)
        keep = np.empty(ordered.size, dtype=bool)
        keep[0] = True
        np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
        distinct = ordered[keep]
        if distinct.size <= 1:
            return np.empty(0)
        if distinct.size <= self.max_bins:
            # One bin per distinct value; midpoint edges reproduce the
            # exact splitter's candidate thresholds bit for bit.
            return (distinct[:-1] + distinct[1:]) / 2.0
        # Interior quantiles by linear interpolation on the sorted
        # values (numpy's default method), same result as np.quantile.
        positions = (
            np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1] * (ordered.size - 1)
        )
        lower = positions.astype(np.int64)
        frac = positions - lower
        quantiles = ordered[lower] * (1.0 - frac) + ordered[
            np.minimum(lower + 1, ordered.size - 1)
        ] * frac
        edges = np.unique(quantiles)
        # A quantile can coincide with max(finite), which would leave the
        # top bin empty on the training data; harmless but wasteful.
        return edges[edges < distinct[-1]]

    # ------------------------------------------------------------------
    # Transform
    # ------------------------------------------------------------------
    def transform(self, X: np.ndarray) -> np.ndarray:
        """Raw matrix -> ``uint8`` code matrix (C-contiguous)."""
        if not hasattr(self, "bin_edges_"):
            raise RuntimeError("Binner must be fitted first.")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X must be 2D with {self.n_features_in_} features."
            )
        codes = np.empty(X.shape, dtype=np.uint8)
        for f, edges in enumerate(self.bin_edges_):
            column = X[:, f]
            # code <= b  <=>  x <= edges[b]: 'left' counts edges < x,
            # putting x == edges[b] into bin b.
            codes[:, f] = np.searchsorted(edges, column, side="left")
            missing = np.isnan(column)
            if missing.any():
                codes[missing, f] = len(edges)  # NaN -> top bin
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    # ------------------------------------------------------------------
    # Shared-memory packing
    # ------------------------------------------------------------------
    def pack(self) -> tuple[np.ndarray, np.ndarray]:
        """Flatten the ragged edge lists into two shippable ndarrays.

        Returns ``(values, offsets)`` where feature ``f``'s edges are
        ``values[offsets[f]:offsets[f + 1]]``.  Both arrays go through
        the POSIX shared-memory path, so pool workers reconstruct the
        edge lists zero-copy instead of unpickling them per task.
        """
        if not hasattr(self, "bin_edges_"):
            raise RuntimeError("Binner must be fitted first.")
        offsets = np.zeros(len(self.bin_edges_) + 1, dtype=np.int64)
        np.cumsum([edges.size for edges in self.bin_edges_], out=offsets[1:])
        values = (
            np.concatenate(self.bin_edges_)
            if offsets[-1] > 0
            else np.empty(0)
        )
        return values, offsets

    @staticmethod
    def unpack(values: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
        """Inverse of :meth:`pack`; returns per-feature edge views."""
        return [
            values[offsets[f]:offsets[f + 1]]
            for f in range(len(offsets) - 1)
        ]
