"""Compiled flat-forest representation and batched traversal kernel.

The historical ensemble predict path loops over trees in Python, each
tree running its own vectorized level walk (``DecisionTreeClassifier.
_apply``): 250 trees means 250 separate walks plus 250 Python-level
vote gathers per call, which dominates the fleet serving tick.  This
module compiles an ensemble once into one contiguous struct-of-arrays
-- every tree's ``feature``/``threshold``/``left``/``right`` arrays
concatenated with per-tree node offsets and child indices rebased to
global node ids -- and traverses **all rows x all trees** in a single
level-synchronous walk over a flat ``(n_rows * n_trees)`` node-index
vector, compacting finished lanes out of the active set each level.

Two traversal currencies share one kernel:

- **exact floats** -- rows gathered from the raw float64 matrix and
  compared against the stored float64 thresholds, reproducing every
  comparison of the per-tree walk bit for bit;
- **hist byte codes** -- when every node threshold is exactly one of a
  fitted :class:`~repro.ml.binning.Binner`'s edges (always true for
  ``tree_method='hist'`` ensembles), thresholds are translated at
  compile time into per-feature ``uint8`` bin codes, and traversal
  compares the uint8 code matrix instead.  The binner contract
  ``code(x) <= b  <=>  x <= bin_edges_[f][b]`` (NaN and +/-inf
  included) makes both paths land every row in the same leaf, so the
  byte path is bitwise-equivalent, not approximately equal.

:class:`FlatForest` layers classification voting on top: leaf values
are expanded to the ensemble's full class count at compile time and
accumulated per 16-tree chunk with ``np.add.accumulate`` (guaranteed
left-to-right, unlike pairwise ``np.sum``), reproducing the historical
chunk-then-cross-chunk float addition order exactly -- flat
probabilities are bitwise-equal to the per-tree reference.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FlatTrees", "FlatForest", "tree_apply"]

_LEAF = -1

#: Rows x trees at or below which the walk runs over all trees at once.
#: Small batches (the per-tick serving shape) want one walk with every
#: lane in flight; large batches want 16-tree column chunks so the
#: node/value gathers stay cache-resident.  32768 cells switches a
#: 250-tree forest at ~131 rows.
_UNCHUNKED_CELLS = 32768

#: Trees per traversal chunk above the cell cutoff.  Matches the
#: forest's historical vote-chunk width so one traversal chunk feeds
#: one vote chunk.
_CHUNK_TREES = 16



def tree_apply(feature, threshold, left, right, X) -> np.ndarray:
    """Leaf index per row of ``X`` for one tree (vectorized level walk).

    The shared single-tree kernel behind ``DecisionTreeClassifier.
    _apply`` and ``_BoostTree.predict``: identical comparisons in
    identical order to the historical per-class copies (NaN compares
    False and goes right), so leaf assignments are unchanged.
    """
    node = np.zeros(X.shape[0], dtype=np.int64)
    active = feature[node] != _LEAF
    while np.any(active):
        idx = np.flatnonzero(active)
        nodes = node[idx]
        features = feature[nodes]
        go_left = X[idx, features] <= threshold[nodes]
        node[idx] = np.where(go_left, left[nodes], right[nodes])
        active[idx] = feature[node[idx]] != _LEAF
    return node


class FlatTrees:
    """An ensemble's trees compiled into one struct-of-arrays.

    Attributes
    ----------
    feature, threshold, left, right:
        Concatenated node arrays; ``left``/``right`` hold *global* node
        ids (child + tree offset) for internal nodes.  Leaf children
        are never dereferenced -- the walk drops a lane the moment it
        lands on a leaf.
    offsets:
        ``offsets[t]:offsets[t + 1]`` is tree ``t``'s node range; the
        roots are ``offsets[:-1]``.
    value:
        Concatenated per-node value table, ``(total_nodes, k)`` (or
        ``(total_nodes,)`` for regression ensembles), aligned with the
        node arrays so ``value[leaves]`` gathers every vote at once.
    code_threshold:
        Per-node ``uint8`` bin codes, present only when every internal
        threshold mapped exactly onto a bin edge (see
        :meth:`compile_codes`).
    """

    def __init__(self, feature, threshold, left, right, offsets, value):
        self.feature = feature
        self.threshold = threshold
        self.left = left
        self.right = right
        self.offsets = offsets
        self.value = value
        self.roots = offsets[:-1]
        self.is_leaf = feature == _LEAF
        self.n_trees = len(offsets) - 1
        self.code_threshold: np.ndarray | None = None

    @classmethod
    def from_arrays(cls, trees, values) -> "FlatTrees":
        """Compile ``(feature, threshold, left, right)`` tuples + values.

        Child indices are rebased to global node ids; ``_LEAF``
        sentinels are kept as-is (never followed).  All index arrays
        are int64 -- numpy converts fancy indices to the platform word
        anyway, so narrower dtypes only add a cast per gather.
        """
        trees = [
            (
                np.asarray(f, dtype=np.int64),
                np.asarray(t, dtype=np.float64),
                np.asarray(lc, dtype=np.int64),
                np.asarray(rc, dtype=np.int64),
            )
            for f, t, lc, rc in trees
        ]
        offsets = np.zeros(len(trees) + 1, dtype=np.int64)
        np.cumsum([f.size for f, _, _, _ in trees], out=offsets[1:])
        feature = np.concatenate([f for f, _, _, _ in trees])
        threshold = np.concatenate([t for _, t, _, _ in trees])
        left = np.concatenate([
            np.where(lc >= 0, lc + off, _LEAF)
            for (_, _, lc, _), off in zip(trees, offsets[:-1])
        ])
        right = np.concatenate([
            np.where(rc >= 0, rc + off, _LEAF)
            for (_, _, _, rc), off in zip(trees, offsets[:-1])
        ])
        value = np.concatenate([np.asarray(v, dtype=np.float64) for v in values])
        return cls(feature, threshold, left, right, offsets, value)

    # ------------------------------------------------------------------
    # Hist byte codes
    # ------------------------------------------------------------------
    def compile_codes(self, bin_edges) -> bool:
        """Translate float thresholds into per-feature uint8 bin codes.

        For each internal node on feature ``f`` with threshold ``v``,
        finds ``b`` with ``bin_edges[f][b] == v`` (hist-mode trees only
        ever split on edge values, so the match is exact, verified
        here).  On success ``code_threshold`` is populated and
        :meth:`apply_binned` becomes available; any non-matching
        threshold disables the byte path and returns ``False`` --
        callers fall back to the bitwise-identical float walk.
        """
        code = np.zeros(self.feature.size, dtype=np.uint8)
        internal = ~self.is_leaf
        for f, edges in enumerate(bin_edges):
            sel = np.flatnonzero(internal & (self.feature == f))
            if sel.size == 0:
                continue
            b = np.searchsorted(edges, self.threshold[sel], side="left")
            if np.any(b >= edges.size) or np.any(
                edges[np.minimum(b, edges.size - 1)] != self.threshold[sel]
            ):
                self.code_threshold = None
                return False
            code[sel] = b  # b < edges.size <= 255, fits uint8
        if internal.any() and np.any(
            self.feature[internal] >= len(bin_edges)
        ):
            self.code_threshold = None
            return False
        self.code_threshold = code
        return True

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def apply(self, X) -> np.ndarray:
        """Leaf ids, shape ``(n_rows, n_trees)``, float comparisons."""
        X = np.ascontiguousarray(np.asarray(X, dtype=np.float64))
        return self._walk(X.ravel(), X.shape[0], X.shape[1], self.threshold)

    def apply_binned(self, codes) -> np.ndarray:
        """Leaf ids from a pre-binned uint8 code matrix.

        Requires a successful :meth:`compile_codes`; lands every row in
        the same leaf as :meth:`apply` on the raw matrix by the binner
        contract ``code(x) <= b  <=>  x <= edges[b]``.
        """
        if self.code_threshold is None:
            raise RuntimeError("compile_codes() has not succeeded.")
        codes = np.ascontiguousarray(np.asarray(codes, dtype=np.uint8))
        return self._walk(
            codes.ravel(), codes.shape[0], codes.shape[1], self.code_threshold
        )

    def _walk(self, cells, n_rows, n_cols, thresholds) -> np.ndarray:
        """All rows x a tree range, level-synchronous and compacted.

        ``cells`` is the row-major flattened input matrix (float64 or
        uint8 -- the kernel only gathers and compares); ``thresholds``
        the matching per-node comparison array.
        """
        row_base = np.arange(n_rows, dtype=np.int64) * n_cols
        out = np.empty((n_rows, self.n_trees), dtype=np.int64)
        if n_rows * self.n_trees <= _UNCHUNKED_CELLS:
            step = self.n_trees  # one walk, every lane in flight
        else:
            step = _CHUNK_TREES
        for start in range(0, self.n_trees, step):
            stop = min(start + step, self.n_trees)
            width = stop - start
            # Lane layout is row-major (row, tree): lanes of one row sit
            # together so the row_base gather stays local.
            node = np.tile(self.roots[start:stop], n_rows)
            base = np.repeat(row_base, width)
            idx = np.flatnonzero(~self.is_leaf[node])
            while idx.size:
                nd = node[idx]
                f = self.feature[nd]
                xv = cells[base[idx] + f]
                go_left = xv <= thresholds[nd]
                nxt = np.where(go_left, self.left[nd], self.right[nd])
                node[idx] = nxt
                idx = idx[~self.is_leaf[nxt]]
            out[:, start:stop] = node.reshape(n_rows, width)
        return out


class FlatForest:
    """Soft-vote classification over a :class:`FlatTrees` compile.

    Wraps the traversal kernel with the forest's vote semantics: leaf
    probability rows gathered for all trees at once, then accumulated
    in the historical order -- left to right within each
    ``chunk_trees``-wide chunk (``np.add.accumulate``), then chunk
    partials left to right -- so ``predict_proba`` output is
    bitwise-equal to the per-tree reference loop.
    """

    def __init__(self, flat: FlatTrees, n_estimators: int,
                 chunk_trees: int = _CHUNK_TREES, binner=None):
        self.flat = flat
        self.n_estimators = n_estimators
        self.chunk_trees = chunk_trees
        self.binner = binner
        if binner is not None:
            flat.compile_codes(binner.bin_edges_)

    @classmethod
    def from_estimators(cls, estimators, n_classes: int, binner=None,
                        chunk_trees: int = _CHUNK_TREES) -> "FlatForest":
        """Compile fitted ``DecisionTreeClassifier`` ensemble members.

        Each tree's ``(n_nodes, k_tree)`` value table is expanded to
        the ensemble's ``n_classes`` columns via its own ``classes_``
        (a bootstrap may have missed a class).  The inserted columns
        are exact ``0.0`` and probabilities are never ``-0.0``, so
        adding them is a bitwise no-op versus the reference's indexed
        ``votes[:, tree.classes_] +=`` scatter.
        """
        trees = []
        values = []
        for tree in estimators:
            trees.append((
                tree.tree_feature_, tree.tree_threshold_,
                tree.tree_left_, tree.tree_right_,
            ))
            table = tree.tree_value_
            if table.shape[1] == n_classes and np.array_equal(
                tree.classes_, np.arange(n_classes)
            ):
                values.append(table)
            else:
                expanded = np.zeros((table.shape[0], n_classes))
                expanded[:, np.asarray(tree.classes_, dtype=np.int64)] = table
                values.append(expanded)
        flat = FlatTrees.from_arrays(trees, values)
        return cls(flat, len(estimators), chunk_trees=chunk_trees,
                   binner=binner)

    @property
    def binned(self) -> bool:
        """Whether the uint8 byte path compiled successfully."""
        return self.flat.code_threshold is not None

    def predict_proba(self, X) -> np.ndarray:
        """Soft-vote class probabilities, bitwise-equal to the
        per-tree chunked reference.

        Always runs the float walk.  The uint8 byte walk is faster per
        node visit (measured ~1.5x on the full corpus), but binning a
        raw float matrix first costs a per-feature ``searchsorted``
        pass that exceeds the traversal saving at every batch size on
        wide feature matrices -- so raw-float callers take the float
        walk, and the byte path is reserved for callers that already
        hold bin codes (:meth:`predict_proba_binned`).
        """
        return self._vote(self.flat.apply(X))

    def predict_proba_binned(self, codes) -> np.ndarray:
        """Soft-vote probabilities from a pre-binned uint8 code matrix.

        For callers that keep their features as bin codes (or reuse one
        ``Binner.transform`` across several predicts): skips the float
        gather entirely and compares uint8 codes against the
        compile-time ``code_threshold`` table.  Lands every row in the
        same leaf as :meth:`predict_proba` on the raw matrix, so the
        output is bitwise-identical.  Requires :attr:`binned`.
        """
        return self._vote(self.flat.apply_binned(codes))

    def _vote(self, leaves: np.ndarray) -> np.ndarray:
        # One gather for every (row, tree) vote, then the historical
        # accumulation grouping: np.add.accumulate is specified as a
        # sequential left fold (np.sum would pairwise-sum and drift).
        votes = self.flat.value[leaves]  # (n_rows, n_trees, k)
        accumulated = None
        for start in range(0, self.flat.n_trees, self.chunk_trees):
            block = votes[:, start:start + self.chunk_trees]
            partial = np.add.accumulate(block, axis=1)[:, -1]
            accumulated = partial if accumulated is None \
                else accumulated + partial
        return accumulated / self.n_estimators
