"""Classification metrics (accuracy, precision/recall/F1, confusion matrix).

These are the standard (unlagged) metrics; the paper's lag-tolerant
``F1_2`` / ``Acc_2`` variants live in :mod:`repro.core.evaluation`
because they encode domain semantics (monitoring delay) rather than
generic ML scoring.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "classification_report",
    "log_loss",
    "roc_auc_score",
]


def _as_labels(y) -> np.ndarray:
    return np.asarray(y).ravel()


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly-matching labels."""
    y_true, y_pred = _as_labels(y_true), _as_labels(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length.")
    if y_true.size == 0:
        raise ValueError("Cannot score empty label arrays.")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, *, labels=None) -> np.ndarray:
    """Confusion matrix ``C`` with ``C[i, j]`` = true ``i`` predicted ``j``."""
    y_true, y_pred = _as_labels(y_true), _as_labels(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    k = len(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    matrix = np.zeros((k, k), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        matrix[index[t], index[p]] += 1
    return matrix


def _binary_counts(y_true, y_pred, pos_label) -> tuple[int, int, int, int]:
    y_true, y_pred = _as_labels(y_true), _as_labels(y_pred)
    tp = int(np.sum((y_true == pos_label) & (y_pred == pos_label)))
    fp = int(np.sum((y_true != pos_label) & (y_pred == pos_label)))
    fn = int(np.sum((y_true == pos_label) & (y_pred != pos_label)))
    tn = int(np.sum((y_true != pos_label) & (y_pred != pos_label)))
    return tp, fp, fn, tn


def precision_score(y_true, y_pred, *, pos_label=1) -> float:
    """TP / (TP + FP); 0.0 when nothing was predicted positive."""
    tp, fp, _, _ = _binary_counts(y_true, y_pred, pos_label)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(y_true, y_pred, *, pos_label=1) -> float:
    """TP / (TP + FN); 0.0 when there are no positive samples."""
    tp, _, fn, _ = _binary_counts(y_true, y_pred, pos_label)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(y_true, y_pred, *, pos_label=1) -> float:
    """Sorensen-Dice coefficient ``2TP / (2TP + FP + FN)``."""
    tp, fp, fn, _ = _binary_counts(y_true, y_pred, pos_label)
    denominator = 2 * tp + fp + fn
    return 2 * tp / denominator if denominator else 0.0


def classification_report(y_true, y_pred, *, pos_label=1) -> dict[str, float]:
    """Dict with accuracy, precision, recall, F1 and the raw counts."""
    tp, fp, fn, tn = _binary_counts(y_true, y_pred, pos_label)
    return {
        "accuracy": accuracy_score(y_true, y_pred),
        "precision": precision_score(y_true, y_pred, pos_label=pos_label),
        "recall": recall_score(y_true, y_pred, pos_label=pos_label),
        "f1": f1_score(y_true, y_pred, pos_label=pos_label),
        "tp": tp,
        "fp": fp,
        "fn": fn,
        "tn": tn,
    }


def log_loss(y_true, y_proba, *, eps: float = 1e-12) -> float:
    """Binary cross-entropy of predicted positive-class probabilities."""
    y_true = _as_labels(y_true).astype(np.float64)
    p = np.clip(np.asarray(y_proba, dtype=np.float64).ravel(), eps, 1 - eps)
    if y_true.shape != p.shape:
        raise ValueError("y_true and y_proba must have the same length.")
    return float(-np.mean(y_true * np.log(p) + (1 - y_true) * np.log(1 - p)))


def roc_auc_score(y_true, y_score) -> float:
    """Area under the ROC curve via the rank statistic (handles ties)."""
    y_true = _as_labels(y_true)
    y_score = np.asarray(y_score, dtype=np.float64).ravel()
    positives = int(np.sum(y_true == 1))
    negatives = y_true.size - positives
    if positives == 0 or negatives == 0:
        raise ValueError("ROC AUC is undefined with a single class.")
    order = np.argsort(y_score, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    sorted_scores = y_score[order]
    i = 0
    rank = 1.0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        average_rank = (rank + rank + (j - i)) / 2.0
        ranks[order[i : j + 1]] = average_rank
        rank += j - i + 1
        i = j + 1
    positive_rank_sum = float(np.sum(ranks[y_true == 1]))
    return (positive_rank_sum - positives * (positives + 1) / 2) / (
        positives * negatives
    )
