"""Principal Component Analysis (Pearson, 1901) via SVD.

Used by the monitorless feature pipeline as an alternative reduction
step (paper section 3.3.4): the paper keeps 50 components accounting
for 99.99% of variance.  ``n_components`` accepts an int (component
count) or a float in (0, 1) (fraction of explained variance to keep).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_array, check_is_fitted

__all__ = ["PCA"]


class PCA(BaseEstimator):
    """Linear projection onto the top principal components."""

    def __init__(self, n_components=None):
        self.n_components = n_components

    def fit(self, X, y=None) -> "PCA":
        X = check_array(X)
        n, d = X.shape
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        # Thin SVD; components are rows of Vt.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        denominator = max(n - 1, 1)
        explained_variance = singular_values**2 / denominator
        total_variance = explained_variance.sum()
        if total_variance <= 0:
            ratio = np.zeros_like(explained_variance)
        else:
            ratio = explained_variance / total_variance

        if self.n_components is None:
            keep = min(n, d)
        elif isinstance(self.n_components, float):
            if not 0.0 < self.n_components <= 1.0:
                raise ValueError("Fractional n_components must be in (0, 1].")
            cumulative = np.cumsum(ratio)
            keep = int(np.searchsorted(cumulative, self.n_components) + 1)
            keep = min(keep, len(ratio))
        else:
            keep = int(self.n_components)
            if keep < 1:
                raise ValueError("n_components must be >= 1.")
            keep = min(keep, min(n, d))

        self.components_ = vt[:keep]
        self.explained_variance_ = explained_variance[:keep]
        self.explained_variance_ratio_ = ratio[:keep]
        self.n_components_ = keep
        self.n_features_in_ = d
        return self

    def transform(self, X) -> np.ndarray:
        check_is_fitted(self, "components_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; PCA was fitted with "
                f"{self.n_features_in_}."
            )
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X, y=None) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        check_is_fitted(self, "components_")
        X = np.asarray(X, dtype=np.float64)
        return X @ self.components_ + self.mean_
