"""Linear classifiers: logistic regression (SAG) and linear SVC.

The paper compares a binary logistic regression trained with the
stochastic average gradient solver (Schmidt et al., 2017) and a linear
support-vector classifier in the style of LIBLINEAR.  Both expose the
``C`` / ``tol`` / ``penalty`` / ``class_weight`` hyper-parameters named
in Table 2.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
    compute_sample_weight,
)

__all__ = ["LogisticRegression", "LinearSVC"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -500.0, 500.0)))


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """L2-regularised binary logistic regression with a SAG solver.

    Stochastic Average Gradient keeps a running memory of per-sample
    gradients, giving linear convergence on strongly-convex objectives;
    this mirrors scikit-learn's ``solver='sag'``, the configuration
    cited by the paper.
    """

    def __init__(
        self,
        C: float = 1.0,
        tol: float = 1e-4,
        max_iter: int = 100,
        class_weight=None,
        fit_intercept: bool = True,
        random_state=None,
    ):
        self.C = C
        self.tol = tol
        self.max_iter = max_iter
        self.class_weight = class_weight
        self.fit_intercept = fit_intercept
        self.random_state = random_state

    def fit(self, X, y) -> "LogisticRegression":
        if self.C <= 0:
            raise ValueError("C must be positive.")
        X, y = check_X_y(X, y)
        y_encoded = self._encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("LogisticRegression here is binary-only.")
        n, d = X.shape
        target = y_encoded.astype(np.float64)
        sample_weight = compute_sample_weight(self.class_weight, y_encoded)
        rng = check_random_state(self.random_state)
        alpha = 1.0 / (self.C * n)  # L2 strength per sample

        w = np.zeros(d)
        b = 0.0
        # SAG state: remembered scalar gradient factor per sample.
        grad_memory = np.zeros(n)
        grad_sum = np.zeros(d)
        grad_sum_b = 0.0
        seen = np.zeros(n, dtype=bool)
        n_seen = 0

        # Step size from the SAG paper: 1 / (L + alpha), L = max row norm / 4.
        lipschitz = 0.25 * float(np.max(np.sum(X * X, axis=1)) + 1.0)
        step = 1.0 / (lipschitz + alpha * n)

        for _ in range(self.max_iter):
            w_before = w.copy()
            for i in rng.permutation(n):
                if not seen[i]:
                    seen[i] = True
                    n_seen += 1
                margin = X[i] @ w + b
                new_factor = (_sigmoid(margin) - target[i]) * sample_weight[i]
                delta = new_factor - grad_memory[i]
                grad_memory[i] = new_factor
                grad_sum += delta * X[i]
                grad_sum_b += delta
                w -= step * (grad_sum / n_seen + alpha * n * w / n_seen)
                if self.fit_intercept:
                    b -= step * grad_sum_b / n_seen
            change = np.max(np.abs(w - w_before)) if d else 0.0
            if change < self.tol:
                break

        self.coef_ = w
        self.intercept_ = b
        self.n_features_in_ = d
        return self

    def decision_function(self, X) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; model was fitted with "
                f"{self.n_features_in_}."
            )
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        positive = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        return self.classes_[(self.decision_function(X) >= 0.0).astype(np.int64)]


class LinearSVC(BaseEstimator, ClassifierMixin):
    """Linear SVM trained by primal sub-gradient descent (Pegasos-style).

    Supports the ``penalty`` in {'l1', 'l2'} and ``C`` / ``tol`` /
    ``class_weight`` parameters from the paper's grid.  L1 is handled
    with per-epoch soft thresholding (truncated gradient).
    """

    def __init__(
        self,
        C: float = 1.0,
        tol: float = 1e-4,
        penalty: str = "l2",
        max_iter: int = 200,
        class_weight=None,
        fit_intercept: bool = True,
        random_state=None,
    ):
        self.C = C
        self.tol = tol
        self.penalty = penalty
        self.max_iter = max_iter
        self.class_weight = class_weight
        self.fit_intercept = fit_intercept
        self.random_state = random_state

    def fit(self, X, y) -> "LinearSVC":
        if self.penalty not in ("l1", "l2"):
            raise ValueError("penalty must be 'l1' or 'l2'.")
        if self.C <= 0:
            raise ValueError("C must be positive.")
        X, y = check_X_y(X, y)
        y_encoded = self._encode_labels(y)
        if len(self.classes_) != 2:
            raise ValueError("LinearSVC here is binary-only.")
        n, d = X.shape
        signs = np.where(y_encoded == 1, 1.0, -1.0)
        sample_weight = compute_sample_weight(self.class_weight, y_encoded)
        rng = check_random_state(self.random_state)
        lam = 1.0 / (self.C * n)

        w = np.zeros(d)
        b = 0.0
        t = 0
        for epoch in range(self.max_iter):
            w_before = w.copy()
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (lam * t)
                margin = signs[i] * (X[i] @ w + b)
                if self.penalty == "l2":
                    w *= 1.0 - eta * lam
                if margin < 1.0:
                    w += eta * sample_weight[i] * signs[i] * X[i]
                    if self.fit_intercept:
                        b += eta * sample_weight[i] * signs[i]
            if self.penalty == "l1":
                # Epoch-level soft threshold keeps sparsity without
                # destabilising the inner loop.
                shrink = lam * n / (epoch + 1.0)
                w = np.sign(w) * np.maximum(np.abs(w) - shrink * 1e-3, 0.0)
            if np.max(np.abs(w - w_before)) < self.tol and epoch > 0:
                break

        self.coef_ = w
        self.intercept_ = b
        self.n_features_in_ = d
        return self

    def decision_function(self, X) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; model was fitted with "
                f"{self.n_features_in_}."
            )
        return X @ self.coef_ + self.intercept_

    def predict(self, X) -> np.ndarray:
        return self.classes_[(self.decision_function(X) >= 0.0).astype(np.int64)]
