"""Command-line interface.

Four subcommands cover the common workflows:

- ``inventory``  -- print the Table-1 training-run inventory;
- ``train``      -- generate the corpus, train a model, save it;
- ``evaluate``   -- score a saved model on an evaluation scenario
  (``elgg`` / ``teastore`` / ``sockshop``) against the tuned
  threshold baselines;
- ``explain``    -- print a saved model's top features and surrogate
  scaling rules.

Examples::

    python -m repro inventory
    python -m repro train --out model.pkl --duration 300
    python -m repro evaluate --model model.pkl --scenario elgg
    python -m repro explain --model model.pkl --duration 150
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Monitorless (Middleware '19) reproduction toolkit.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("inventory", help="print the Table-1 run inventory")

    train = commands.add_parser("train", help="train and save a model")
    train.add_argument("--out", required=True, help="output model path (.pkl)")
    train.add_argument("--duration", type=int, default=300,
                       help="seconds per training run (default 300)")
    train.add_argument("--trees", type=int, default=60,
                       help="random-forest size (paper: 250)")
    train.add_argument("--runs", type=int, nargs="*", default=None,
                       help="Table-1 run ids (default: all 25)")
    train.add_argument("--seed", type=int, default=0)

    evaluate = commands.add_parser("evaluate", help="score a saved model")
    evaluate.add_argument("--model", required=True, help="path to a saved model")
    evaluate.add_argument(
        "--scenario", choices=("elgg", "teastore", "sockshop"), default="elgg"
    )
    evaluate.add_argument("--duration", type=int, default=1400,
                          help="evaluation-trace seconds")
    evaluate.add_argument("--k", type=int, default=2, help="lag tolerance")
    evaluate.add_argument("--seed", type=int, default=0)

    explain = commands.add_parser("explain", help="inspect a saved model")
    explain.add_argument("--model", required=True)
    explain.add_argument("--top", type=int, default=20)
    explain.add_argument("--duration", type=int, default=150,
                         help="corpus seconds for the surrogate's input")
    explain.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_inventory(args, out) -> int:
    from repro.datasets.configs import TABLE1_RUNS

    print(f"{'#':>2}  {'service':<10} {'CPU/MEM':<12} {'par':<4} "
          f"{'traffic':<18} bottleneck", file=out)
    for run in TABLE1_RUNS:
        limits = (
            f"{run.cpu_limit or '-'}/"
            f"{f'{run.mem_limit / 2**30:.0f}GB' if run.mem_limit else '-'}"
        )
        print(
            f"{run.run_id:>2}  {run.service:<10} {limits:<12} "
            f"{run.parallel_with or '-':<4} {run.traffic:<18} {run.bottleneck}",
            file=out,
        )
    return 0


def _cmd_train(args, out) -> int:
    from repro.core.model import MonitorlessModel
    from repro.datasets.configs import run_by_id
    from repro.datasets.generate import build_training_corpus

    runs = [run_by_id(i) for i in args.runs] if args.runs else None
    print(f"Generating corpus ({args.duration}s per run)...", file=out)
    corpus = build_training_corpus(
        duration=args.duration, seed=args.seed, runs=runs
    )
    print(
        f"  {corpus.X.shape[0]} samples x {corpus.X.shape[1]} metrics, "
        f"{corpus.saturated_fraction:.0%} saturated",
        file=out,
    )
    print(f"Training ({args.trees} trees)...", file=out)
    model = MonitorlessModel(
        classifier_params={"n_estimators": args.trees}, random_state=args.seed
    )
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    model.save(args.out)
    print(f"Saved to {args.out} "
          f"({model.n_engineered_features_} engineered features).", file=out)
    return 0


def _cmd_evaluate(args, out) -> int:
    from repro.core.model import MonitorlessModel
    from repro.datasets.experiments import (
        elgg_scenario,
        evaluate_detectors,
        multitenant_scenario,
        sockshop_windows,
    )

    model = MonitorlessModel.load(args.model)
    window = None
    if args.scenario == "elgg":
        scenario = elgg_scenario(duration=args.duration, seed=args.seed)
    else:
        teastore, sockshop = multitenant_scenario(
            duration=args.duration, seed=args.seed
        )
        scenario = teastore if args.scenario == "teastore" else sockshop
        if args.scenario == "sockshop":
            window = sockshop_windows(args.duration)
    comparison = evaluate_detectors(scenario, model, k=args.k, window=window)
    for row in comparison.table():
        print("  ".join(f"{key}={value}" for key, value in row.items()), file=out)
    return 0


def _cmd_explain(args, out) -> int:
    from repro.core.interpret import SurrogateTree
    from repro.core.model import MonitorlessModel
    from repro.datasets.generate import build_training_corpus

    model = MonitorlessModel.load(args.model)
    print(f"Top {args.top} features by importance:", file=out)
    for name, weight in model.feature_importances(top=args.top):
        print(f"  {weight:.4f}  {name}", file=out)

    print("\nSurrogate scaling rules (depth 3):", file=out)
    corpus = build_training_corpus(duration=args.duration, seed=args.seed)
    features = model.transform(corpus.X, corpus.meta, corpus.groups)
    predictions = model.classifier_.predict(features)
    surrogate = SurrogateTree(max_depth=3, min_samples_leaf=30).fit(
        features, predictions, model.pipeline_.feature_names_
    )
    for rule in surrogate.rules()[:8]:
        print(f"  {rule}", file=out)
    print(
        f"\n(surrogate fidelity: {surrogate.fidelity(features, predictions):.1%})",
        file=out,
    )
    return 0


_COMMANDS = {
    "inventory": _cmd_inventory,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "explain": _cmd_explain,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
