"""Command-line interface.

Twelve subcommands cover the common workflows:

- ``inventory``  -- print the Table-1 training-run inventory;
- ``dataset``    -- generate the training corpus (optionally save it);
- ``train``      -- generate the corpus, train a model, save it;
- ``gridsearch`` -- tune forest hyper-parameters by grouped CV;
- ``evaluate``   -- score a saved model on an evaluation scenario
  (``elgg`` / ``teastore`` / ``sockshop``) against the tuned
  threshold baselines;
- ``explain``    -- print a saved model's top features and surrogate
  scaling rules;
- ``stream``     -- drive the closed autoscaling loop tick by tick on
  the streaming (incremental) data path and report throughput;
- ``obs``        -- run a short instrumented closed loop and export the
  runtime's own metrics (JSON / Prometheus text) and span tree;
- ``chaos``      -- run the seeded chaos harness (dropout, failures,
  blackouts, node faults) against a clean run and report deltas;
- ``fleet``      -- drive many application cells through the vectorized
  fleet serving path (one matrix per tick, sharded over workers) and
  report tick throughput;
- ``interference`` -- build the neighbour-caused degradation corpus
  (victims at constant sub-knee load vs co-located antagonists) and run
  the solo->interference transfer evaluation;
- ``lifecycle`` -- run the seeded end-to-end drift scenario: a
  stationary TeaStore plateau, a mid-run workload step plus bursty
  membw antagonist, streaming drift detection, drift-triggered
  retraining and champion/challenger shadow promotion through the
  versioned model registry.

The generation/training paths accept ``--jobs N`` (``-1`` = all cores)
to fan session simulation, tree fitting and grid-search evaluation out
over worker processes; outputs are bitwise independent of ``--jobs``.
``train``/``evaluate``/``stream`` accept ``--trace`` to record the
run's internal spans and metrics (see :mod:`repro.obs`) and print them
on completion; results are identical with or without it.

Examples::

    python -m repro inventory
    python -m repro dataset --duration 120 --jobs -1
    python -m repro train --out model.pkl --duration 300 --jobs 4
    python -m repro gridsearch --duration 120 --jobs -1
    python -m repro evaluate --model model.pkl --scenario elgg
    python -m repro explain --model model.pkl --duration 150
    python -m repro stream --model model.pkl --duration 600 --trace
    python -m repro obs --duration 120 --format prom
    python -m repro chaos --duration 240 --dropout 0.15
    python -m repro chaos --duration 240 --antagonist cpu
    python -m repro fleet --model model.pkl --cells 32 --ticks 120 --jobs -1
    python -m repro interference --duration 150 --jobs -1 --report out.json
    python -m repro lifecycle --duration 360 --registry registry/
    python -m repro lifecycle --resume --checkpoint lc.ckpt --registry registry/
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def _add_tree_method_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tree-method", choices=("exact", "hist"), default="exact",
        help="tree training mode: 'exact' (default, bitwise-stable) or "
             "'hist' (quantile-binned, ~an order of magnitude faster)",
    )


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default serial; -1 = all cores)",
    )


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", action="store_true",
        help="record runtime spans + metrics (repro.obs) and print the "
             "span tree, JSON snapshot and Prometheus exposition on exit",
    )


def _print_observability(out) -> None:
    """Span tree + metrics snapshot (JSON and Prometheus text)."""
    from repro import obs

    snapshot = obs.snapshot()
    print("\n== span tree ==", file=out)
    print(
        obs.render_span_tree(obs.span_roots(), dropped=obs.dropped_spans()),
        file=out,
    )
    print("\n== metrics (json) ==", file=out)
    print(obs.metrics_to_json(snapshot), file=out)
    print("\n== metrics (prometheus) ==", file=out)
    print(obs.metrics_to_prometheus(snapshot), file=out, end="")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Monitorless (Middleware '19) reproduction toolkit.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("inventory", help="print the Table-1 run inventory")

    dataset = commands.add_parser(
        "dataset", help="generate the training corpus"
    )
    dataset.add_argument("--out", default=None,
                         help="save X/y/groups as .npz (default: print only)")
    dataset.add_argument("--duration", type=int, default=300,
                         help="seconds per training run (default 300)")
    dataset.add_argument("--runs", type=int, nargs="*", default=None,
                         help="Table-1 run ids (default: all 25)")
    dataset.add_argument("--seed", type=int, default=0)
    _add_jobs_argument(dataset)

    train = commands.add_parser("train", help="train and save a model")
    train.add_argument("--out", required=True, help="output model path (.pkl)")
    train.add_argument("--duration", type=int, default=300,
                       help="seconds per training run (default 300)")
    train.add_argument("--trees", type=int, default=60,
                       help="random-forest size (paper: 250)")
    train.add_argument("--runs", type=int, nargs="*", default=None,
                       help="Table-1 run ids (default: all 25)")
    train.add_argument("--seed", type=int, default=0)
    _add_tree_method_argument(train)
    _add_jobs_argument(train)
    _add_trace_argument(train)

    gridsearch = commands.add_parser(
        "gridsearch",
        help="tune forest hyper-parameters by run-grouped cross-validation",
    )
    gridsearch.add_argument("--duration", type=int, default=120,
                            help="seconds per training run (default 120)")
    gridsearch.add_argument("--trees", type=int, default=30,
                            help="forest size per candidate (paper: 250)")
    gridsearch.add_argument("--folds", type=int, default=5,
                            help="CV folds, grouped by run (default 5)")
    gridsearch.add_argument("--runs", type=int, nargs="*", default=None,
                            help="Table-1 run ids (default: all 25)")
    gridsearch.add_argument("--seed", type=int, default=0)
    _add_tree_method_argument(gridsearch)
    _add_jobs_argument(gridsearch)

    evaluate = commands.add_parser("evaluate", help="score a saved model")
    evaluate.add_argument("--model", required=True, help="path to a saved model")
    evaluate.add_argument(
        "--scenario", choices=("elgg", "teastore", "sockshop"), default="elgg"
    )
    evaluate.add_argument("--duration", type=int, default=1400,
                          help="evaluation-trace seconds")
    evaluate.add_argument("--k", type=int, default=2, help="lag tolerance")
    evaluate.add_argument("--seed", type=int, default=0)
    _add_trace_argument(evaluate)

    explain = commands.add_parser("explain", help="inspect a saved model")
    explain.add_argument("--model", required=True)
    explain.add_argument("--top", type=int, default=20)
    explain.add_argument("--duration", type=int, default=150,
                         help="corpus seconds for the surrogate's input")
    explain.add_argument("--seed", type=int, default=0)

    stream = commands.add_parser(
        "stream", help="run the per-tick streaming closed loop"
    )
    stream.add_argument("--model", required=True, help="path to a saved model")
    stream.add_argument("--duration", type=int, default=600,
                        help="trace seconds to stream (default 600, the "
                             "TeaStore trace minimum)")
    stream.add_argument("--batch", action="store_true",
                        help="use the batch data path instead, for comparison")
    stream.add_argument("--seed", type=int, default=0)
    _add_trace_argument(stream)

    observe = commands.add_parser(
        "obs",
        help="run a short instrumented closed loop and export runtime "
             "metrics + spans",
    )
    observe.add_argument("--duration", type=int, default=120,
                         help="closed-loop seconds to drive (default 120)")
    observe.add_argument("--model", default=None,
                         help="optional saved model for the monitorless "
                              "streaming policy (default: a static-threshold "
                              "policy, which needs no model)")
    observe.add_argument("--format", choices=("json", "prom", "text", "all"),
                         default="all",
                         help="metrics export format; 'text' = span tree "
                              "only, 'all' = span tree + JSON + Prometheus")
    observe.add_argument("--seed", type=int, default=0)

    chaos = commands.add_parser(
        "chaos",
        help="run the seeded chaos harness: closed loop under metric "
             "dropout, injected telemetry failures, blackouts and node "
             "faults, compared against a clean run",
    )
    chaos.add_argument("--model", default=None,
                       help="optional saved model (default: train a small "
                            "6-run, 15-tree model first)")
    chaos.add_argument("--duration", type=int, default=240,
                       help="closed-loop seconds per run (default 240)")
    chaos.add_argument("--dropout", type=float, default=0.15,
                       help="per-reading dropout probability (default 0.15)")
    chaos.add_argument("--budget", type=int, default=5,
                       help="staleness budget: consecutive lost ticks "
                            "bridged by imputation (default 5)")
    chaos.add_argument("--failsafe", choices=("hold", "scale-up"),
                       default="hold",
                       help="verdict when primary and fallback are both "
                            "unavailable (default hold)")
    chaos.add_argument("--report", default=None,
                       help="write the full ChaosReport as JSON here")
    chaos.add_argument("--antagonist", choices=("cpu", "membw", "disk"),
                       default=None,
                       help="co-locate a noisy-neighbour stressor of this "
                            "kind in the chaos run (clean run stays solo)")
    chaos.add_argument("--antagonist-rate", type=float, default=100.0,
                       help="antagonist requests/s once active (default 100)")
    chaos.add_argument("--seed", type=int, default=0)

    fleet = commands.add_parser(
        "fleet",
        help="run the vectorized fleet loop: many application cells as "
             "one (containers x features) matrix per tick, sharded over "
             "worker processes",
    )
    fleet.add_argument("--model", default=None,
                       help="optional saved model (default: train a small "
                            "6-run, 15-tree model first)")
    fleet.add_argument("--cells", type=int, default=8,
                       help="application cells in the fleet (default 8; "
                            "7 containers each)")
    fleet.add_argument("--ticks", type=int, default=60,
                       help="fleet seconds to drive (default 60)")
    fleet.add_argument("--kind",
                       choices=("teastore", "teastore-dropout",
                                "teastore-chaos"),
                       default="teastore",
                       help="cell recipe (default teastore; -chaos adds "
                            "the full fault stack + threshold fallback)")
    fleet.add_argument("--shards", type=int, default=None,
                       help="shards over the cell axis (default: one per "
                            "worker)")
    fleet.add_argument("--checkpoint-dir", default=None,
                       help="per-shard checkpoint directory (enables "
                            "crash rescue / resume)")
    fleet.add_argument("--checkpoint-interval", type=int, default=25,
                       help="ticks between per-shard checkpoints "
                            "(default 25)")
    fleet.add_argument("--seed", type=int, default=0)
    _add_jobs_argument(fleet)

    interference = commands.add_parser(
        "interference",
        help="build the neighbour-caused degradation corpus and run the "
             "solo->interference transfer evaluation",
    )
    interference.add_argument(
        "--model", default=None,
        help="optional saved solo-trained model (default: train a small "
             "6-run, 15-tree model first)")
    interference.add_argument(
        "--duration", type=int, default=150,
        help="seconds per interference scenario (default 150)")
    interference.add_argument(
        "--calibration-duration", type=int, default=100,
        help="seconds per victim calibration ramp (default 100)")
    interference.add_argument(
        "--report", default=None,
        help="write the transfer-eval result as JSON here")
    interference.add_argument("--seed", type=int, default=0)
    _add_jobs_argument(interference)

    lifecycle = commands.add_parser(
        "lifecycle",
        help="run the seeded drift scenario: stationary plateau, mid-run "
             "workload step + bursty membw antagonist, streaming drift "
             "detection, drift-triggered retraining and shadow promotion",
    )
    lifecycle.add_argument(
        "--model", default=None,
        help="optional saved model to serve as the bootstrap champion "
             "(default: train a small 6-run, 15-tree model first); with "
             "--resume, the model offered to the checkpoint's "
             "fingerprint guard")
    lifecycle.add_argument("--duration", type=int, default=360,
                           help="scenario ticks (default 360; the "
                                "shift onset lands at 45%%)")
    lifecycle.add_argument("--registry", default=None,
                           help="model-registry directory (default: a "
                                "temporary directory)")
    lifecycle.add_argument("--report", default=None,
                           help="write the DriftScenarioResult as JSON here")
    lifecycle.add_argument("--checkpoint", default=None,
                           help="checkpoint path; written every "
                                "--checkpoint-interval ticks, and the "
                                "resume source with --resume")
    lifecycle.add_argument("--checkpoint-interval", type=int, default=50,
                           help="ticks between checkpoints when "
                                "--checkpoint is given (default 50)")
    lifecycle.add_argument("--resume", action="store_true",
                           help="resume the scenario from --checkpoint "
                                "instead of starting fresh")
    lifecycle.add_argument("--allow-model-swap", action="store_true",
                           help="with --resume and --model: accept a model "
                                "whose fingerprint differs from the one "
                                "the checkpoint was saved with")
    lifecycle.add_argument("--interference", type=int, nargs="*",
                           default=None,
                           help="interference scenario ids mixed into "
                                "retrain corpora (default: stream-only "
                                "retraining)")
    lifecycle.add_argument("--seed", type=int, default=0)
    _add_jobs_argument(lifecycle)
    _add_trace_argument(lifecycle)
    return parser


def _cmd_inventory(args, out) -> int:
    from repro.datasets.configs import TABLE1_RUNS

    print(f"{'#':>2}  {'service':<10} {'CPU/MEM':<12} {'par':<4} "
          f"{'traffic':<18} bottleneck", file=out)
    for run in TABLE1_RUNS:
        limits = (
            f"{run.cpu_limit or '-'}/"
            f"{f'{run.mem_limit / 2**30:.0f}GB' if run.mem_limit else '-'}"
        )
        print(
            f"{run.run_id:>2}  {run.service:<10} {limits:<12} "
            f"{run.parallel_with or '-':<4} {run.traffic:<18} {run.bottleneck}",
            file=out,
        )
    return 0


def _cmd_dataset(args, out) -> int:
    import numpy as np

    from repro.datasets.configs import run_by_id
    from repro.datasets.generate import build_training_corpus

    runs = [run_by_id(i) for i in args.runs] if args.runs else None
    print(f"Generating corpus ({args.duration}s per run)...", file=out)
    corpus = build_training_corpus(
        duration=args.duration, seed=args.seed, runs=runs, n_jobs=args.jobs
    )
    print(
        f"  {corpus.X.shape[0]} samples x {corpus.X.shape[1]} metrics, "
        f"{corpus.saturated_fraction:.0%} saturated",
        file=out,
    )
    for row in corpus.summary():
        print("  ".join(f"{key}={value}" for key, value in row.items()), file=out)
    if args.out:
        np.savez_compressed(
            args.out, X=corpus.X, y=corpus.y, groups=corpus.groups
        )
        print(f"Saved to {args.out}.", file=out)
    return 0


def _cmd_train(args, out) -> int:
    from repro.core.model import MonitorlessModel
    from repro.datasets.configs import run_by_id
    from repro.datasets.generate import build_training_corpus

    runs = [run_by_id(i) for i in args.runs] if args.runs else None
    print(f"Generating corpus ({args.duration}s per run)...", file=out)
    corpus = build_training_corpus(
        duration=args.duration, seed=args.seed, runs=runs, n_jobs=args.jobs
    )
    print(
        f"  {corpus.X.shape[0]} samples x {corpus.X.shape[1]} metrics, "
        f"{corpus.saturated_fraction:.0%} saturated",
        file=out,
    )
    print(f"Training ({args.trees} trees)...", file=out)
    model = MonitorlessModel(
        classifier_params={
            "n_estimators": args.trees,
            "n_jobs": args.jobs,
            "tree_method": args.tree_method,
        },
        random_state=args.seed,
    )
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    model.save(args.out)
    print(f"Saved to {args.out} "
          f"({model.n_engineered_features_} engineered features).", file=out)
    return 0


def _cmd_gridsearch(args, out) -> int:
    import numpy as np

    from repro.datasets.configs import run_by_id
    from repro.datasets.generate import build_training_corpus
    from repro.ml.forest import RandomForestClassifier
    from repro.ml.model_selection import GridSearchCV, GroupKFold

    runs = [run_by_id(i) for i in args.runs] if args.runs else None
    print(f"Generating corpus ({args.duration}s per run)...", file=out)
    corpus = build_training_corpus(
        duration=args.duration, seed=args.seed, runs=runs, n_jobs=args.jobs
    )
    n_groups = len(np.unique(corpus.groups))
    folds = min(args.folds, n_groups)
    # The paper's Table-2 forest axes (tree count fixed by --trees).
    grid = {
        "min_samples_leaf": [10, 20, 40],
        "criterion": ["gini", "entropy"],
    }
    print(
        f"Grid search: {len(grid['min_samples_leaf']) * len(grid['criterion'])}"
        f" candidates x {folds} run-grouped folds...",
        file=out,
    )
    search = GridSearchCV(
        RandomForestClassifier(
            n_estimators=args.trees,
            tree_method=args.tree_method,
            random_state=args.seed,
        ),
        grid,
        cv=GroupKFold(n_splits=folds),
        scoring="f1",
        n_jobs=args.jobs,
    )
    search.fit(corpus.X, corpus.y, groups=corpus.groups)
    for row in sorted(
        search.results_, key=lambda r: r["mean_score"], reverse=True
    ):
        params = ", ".join(f"{k}={v}" for k, v in row["params"].items())
        print(f"  F1={row['mean_score']:.4f}  {params}", file=out)
    best = ", ".join(f"{k}={v}" for k, v in search.best_params_.items())
    print(f"Best: {best} (F1={search.best_score_:.4f})", file=out)
    return 0


def _cmd_evaluate(args, out) -> int:
    from repro.core.model import MonitorlessModel
    from repro.datasets.experiments import (
        elgg_scenario,
        evaluate_detectors,
        multitenant_scenario,
        sockshop_windows,
    )

    model = MonitorlessModel.load(args.model)
    window = None
    if args.scenario == "elgg":
        scenario = elgg_scenario(duration=args.duration, seed=args.seed)
    else:
        teastore, sockshop = multitenant_scenario(
            duration=args.duration, seed=args.seed
        )
        scenario = teastore if args.scenario == "teastore" else sockshop
        if args.scenario == "sockshop":
            window = sockshop_windows(args.duration)
    comparison = evaluate_detectors(scenario, model, k=args.k, window=window)
    for row in comparison.table():
        print("  ".join(f"{key}={value}" for key, value in row.items()), file=out)
    return 0


def _cmd_explain(args, out) -> int:
    from repro.core.interpret import SurrogateTree
    from repro.core.model import MonitorlessModel
    from repro.datasets.generate import build_training_corpus

    model = MonitorlessModel.load(args.model)
    print(f"Top {args.top} features by importance:", file=out)
    for name, weight in model.feature_importances(top=args.top):
        print(f"  {weight:.4f}  {name}", file=out)

    corpus = build_training_corpus(duration=args.duration, seed=args.seed)
    features = model.transform(corpus.X, corpus.meta, corpus.groups)
    predictions = model.classifier_.predict(features)
    surrogate = SurrogateTree(max_depth=3, min_samples_leaf=30).fit(
        features, predictions, model.pipeline_.feature_names_
    )
    print(
        f"\nSurrogate scaling rules (depth {surrogate.depth}, "
        f"{surrogate.n_leaves} rules):",
        file=out,
    )
    for rule in surrogate.rules()[:8]:
        print(f"  {rule}", file=out)
    print(
        f"\n(surrogate fidelity: {surrogate.fidelity(features, predictions):.1%})",
        file=out,
    )
    return 0


def _cmd_stream(args, out) -> int:
    import time

    from repro.apps.sockshop import sockshop_application
    from repro.apps.teastore import teastore_application
    from repro.cluster.simulation import ClusterSimulation, Placement
    from repro.core.model import MonitorlessModel
    from repro.datasets.experiments import (
        evaluation_nodes,
        sockshop_placements,
        teastore_placements,
    )
    from repro.orchestrator.autoscaler import ScalingRules
    from repro.orchestrator.loop import Orchestrator
    from repro.orchestrator.policies import MonitorlessPolicy
    from repro.telemetry.agent import TelemetryAgent
    from repro.workloads.locust import staggered_locust_runs
    from repro.workloads.traces import teastore_trace

    model = MonitorlessModel.load(args.model)
    simulation = ClusterSimulation(evaluation_nodes(), seed=args.seed)
    simulation.deploy(teastore_application(), teastore_placements())
    simulation.deploy(sockshop_application(), sockshop_placements())
    agent = TelemetryAgent(seed=args.seed)
    policy = MonitorlessPolicy(
        model, agent, window=16, streaming=not args.batch
    )
    rules = ScalingRules(
        placements={
            "auth": Placement(node="M2", cpu_limit=2.0, memory_limit=4 * 2**30),
            "recommender": Placement(
                node="M2", cpu_limit=1.0, memory_limit=4 * 2**30
            ),
            "webui": Placement(node="M2", cpu_limit=1.0, memory_limit=4 * 2**30),
        },
        replica_lifespan=120,
        scale_groups=(("auth", "recommender"),),
    )
    orchestrator = Orchestrator(simulation, "teastore", policy, rules)

    duration = args.duration
    workloads = {
        "teastore": teastore_trace(duration=duration, seed=args.seed + 7),
        "sockshop": staggered_locust_runs(
            total_duration=duration,
            starts=tuple(int(duration * f) for f in (1 / 7, 3 / 7, 5 / 7)),
            run_duration=duration // 7,
            hatch_seconds=int(duration // 7 * 0.7),
        ),
    }
    mode = "batch" if args.batch else "streaming"
    print(f"Running the {mode} closed loop for {duration}s...", file=out)
    orchestrator.start()
    started = time.perf_counter()
    for t in range(duration):
        orchestrator.tick(
            {app: series[t] for app, series in workloads.items()}
        )
    elapsed = time.perf_counter() - started
    result = orchestrator.finish()
    print(
        "  ".join(f"{key}={value}" for key, value in result.as_row().items()),
        file=out,
    )
    print(
        f"{duration / elapsed:.0f} ticks/s ({elapsed:.2f}s wall, "
        f"{result.total_scale_outs} scale-outs)",
        file=out,
    )
    return 0


def _cmd_obs(args, out) -> int:
    from repro import obs
    from repro.apps.teastore import teastore_application
    from repro.cluster.simulation import ClusterSimulation, Placement
    from repro.core.thresholds import ThresholdBaseline
    from repro.datasets.experiments import evaluation_nodes, teastore_placements
    from repro.orchestrator.autoscaler import ScalingRules
    from repro.orchestrator.loop import Orchestrator
    from repro.orchestrator.policies import MonitorlessPolicy, ThresholdPolicy
    from repro.telemetry.agent import TelemetryAgent
    from repro.workloads.patterns import linear_ramp

    simulation = ClusterSimulation(evaluation_nodes(), seed=args.seed)
    simulation.deploy(teastore_application(), teastore_placements())
    agent = TelemetryAgent(seed=args.seed)
    if args.model:
        from repro.core.model import MonitorlessModel

        policy = MonitorlessPolicy(
            MonitorlessModel.load(args.model), agent, window=16, streaming=True
        )
    else:
        policy = ThresholdPolicy(
            ThresholdBaseline(
                kind="cpu-or-mem", cpu_threshold=80.0, mem_threshold=80.0
            ),
            agent,
        )
    rules = ScalingRules(
        placements={
            "auth": Placement(node="M2", cpu_limit=2.0, memory_limit=4 * 2**30),
            "recommender": Placement(
                node="M2", cpu_limit=1.0, memory_limit=4 * 2**30
            ),
            "webui": Placement(node="M2", cpu_limit=1.0, memory_limit=4 * 2**30),
        },
        replica_lifespan=120,
        scale_groups=(("auth", "recommender"),),
    )
    orchestrator = Orchestrator(simulation, "teastore", policy, rules)
    # A saturating ramp: enough load that the policy fires and the
    # autoscaler/fault counters have something to show at any duration.
    workload = linear_ramp(args.duration, 10, 240)

    obs.reset()
    obs.enable()
    try:
        result = orchestrator.run({"teastore": workload})
    finally:
        obs.disable()
    print(
        f"Drove {args.duration} instrumented ticks with the "
        f"{policy.name} policy ({result.total_scale_outs} scale-outs).",
        file=out,
    )
    snapshot = obs.snapshot()
    if args.format in ("text", "all"):
        print("\n== span tree ==", file=out)
        print(
            obs.render_span_tree(obs.span_roots(), dropped=obs.dropped_spans()),
            file=out,
        )
    if args.format in ("json", "all"):
        print("\n== metrics (json) ==", file=out)
        print(obs.metrics_to_json(snapshot), file=out)
    if args.format in ("prom", "all"):
        print("\n== metrics (prometheus) ==", file=out)
        print(obs.metrics_to_prometheus(snapshot), file=out, end="")
    return 0


def _small_solo_model(args, out):
    """Load ``--model`` or train the small 6-run, 15-tree stand-in.

    The stand-in is trained purely on solo-tenant Table-1 runs, which
    is exactly what the interference transfer eval needs as a baseline.
    """
    from repro.core.model import MonitorlessModel

    if args.model:
        return MonitorlessModel.load(args.model)
    print("No --model given; training a small 6-run model...", file=out)
    from repro.datasets.configs import run_by_id
    from repro.datasets.generate import build_training_corpus

    runs = [run_by_id(i) for i in (1, 2, 7, 9, 12, 24)]
    corpus = build_training_corpus(
        duration=80, calibration_duration=100, seed=3, runs=runs
    )
    model = MonitorlessModel(
        classifier_params={"n_estimators": 15}, random_state=args.seed
    )
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    return model


def _cmd_chaos(args, out) -> int:
    import json

    from repro.reliability.chaos import ChaosConfig, run_chaos

    model = _small_solo_model(args, out)
    config = ChaosConfig(
        dropout_probability=args.dropout,
        staleness_budget=args.budget,
        failsafe=args.failsafe,
        seed=args.seed,
        antagonist=args.antagonist,
        antagonist_rate=args.antagonist_rate,
    )
    report = run_chaos(
        model, duration=args.duration, seed=args.seed, config=config
    )
    width = max(len(row["quantity"]) for row in report.rows())
    for row in report.rows():
        print(f"  {row['quantity']:<{width}}  {row['value']}", file=out)
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"Report written to {args.report}", file=out)
    if not report.within_bound:
        print(
            f"SLO-violation delta {report.violation_delta} exceeds the "
            f"documented bound {report.violation_bound:.0f}.",
            file=out,
        )
        return 1
    return 0


def _cmd_fleet(args, out) -> int:
    import time

    from repro.fleet.orchestrator import (
        FleetOrchestrator,
        default_fleet_workloads,
        make_fleet_specs,
    )

    model = _small_solo_model(args, out)
    specs = make_fleet_specs(args.cells, base_seed=args.seed, kind=args.kind)
    workloads = default_fleet_workloads(args.cells, args.ticks, seed=args.seed)
    orchestrator = FleetOrchestrator(
        specs, model,
        n_shards=args.shards,
        n_jobs=args.jobs,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
    )
    n_containers = 7 * args.cells
    print(
        f"Driving {args.cells} {args.kind} cells ({n_containers} containers)"
        f" for {args.ticks} ticks over {orchestrator.n_shards} shard(s)...",
        file=out,
    )
    started = time.perf_counter()
    result = orchestrator.run(workloads)
    elapsed = time.perf_counter() - started
    decisions = sum(len(d) for d in result.decisions)
    violations = sum(
        float(cell.violations.sum()) for cell in result.cells.values()
    )
    print(
        f"  {decisions} saturation decisions, {result.total_scale_outs} "
        f"scale-outs, {violations:.0f} SLO violation-ticks",
        file=out,
    )
    if result.counters["demotions"] or result.counters["failsafe_ticks"]:
        counters = "  ".join(
            f"{key}={value}" for key, value in result.counters.items()
        )
        print(f"  fallback: {counters}", file=out)
    print(
        f"{args.ticks / elapsed:.1f} ticks/s "
        f"({n_containers * args.ticks / elapsed:,.0f} container-ticks/s, "
        f"{elapsed:.2f}s wall)",
        file=out,
    )
    return 0


def _cmd_interference(args, out) -> int:
    import json

    from repro.datasets.interference import (
        build_interference_corpus,
        transfer_eval,
    )

    model = _small_solo_model(args, out)
    print(
        f"Building interference corpus ({args.duration}s per scenario)...",
        file=out,
    )
    corpus = build_interference_corpus(
        duration=args.duration,
        calibration_duration=args.calibration_duration,
        seed=args.seed,
        n_jobs=args.jobs,
    )
    for row in corpus.summary():
        print("  ".join(f"{key}={value}" for key, value in row.items()), file=out)
    result = transfer_eval(model, corpus)
    print("Solo->interference transfer:", file=out)
    for key in (
        "interference_recall",
        "self_recall",
        "false_alarm_interference",
        "false_alarm_solo",
        "false_alarm_delta",
    ):
        value = result[key]
        shown = "n/a" if value is None else f"{value:.3f}"
        print(f"  {key:<26} {shown}", file=out)
    for row in result["per_scenario"]:
        print(
            "  " + "  ".join(f"{key}={value}" for key, value in row.items()),
            file=out,
        )
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"Report written to {args.report}", file=out)
    return 0


def _lifecycle_model(args, out):
    """Load ``--model`` or train the champion the scenario defaults
    are tuned for (the 6-run stand-in with (1, 5) temporal windows)."""
    from repro.core.model import MonitorlessModel

    if args.model:
        return MonitorlessModel.load(args.model)
    print("No --model given; training a small 6-run model...", file=out)
    from repro.core.features.pipeline import PipelineConfig
    from repro.datasets.configs import run_by_id
    from repro.datasets.generate import build_training_corpus

    runs = [run_by_id(i) for i in (1, 2, 7, 9, 12, 24)]
    corpus = build_training_corpus(
        duration=80, calibration_duration=100, seed=3, runs=runs
    )
    model = MonitorlessModel(
        pipeline_config=PipelineConfig(temporal_windows=(1, 5)),
        classifier_params={"n_estimators": 15},
        random_state=0,
    )
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    return model


def _cmd_lifecycle(args, out) -> int:
    import contextlib
    import json
    import tempfile

    from repro.lifecycle import DriftScenarioConfig, DriftScenarioRunner

    config = DriftScenarioConfig(
        duration=args.duration,
        seed=args.seed,
        interference_scenario_ids=tuple(args.interference or ()),
        n_jobs=args.jobs,
    )
    with contextlib.ExitStack() as stack:
        if args.resume:
            if not args.checkpoint:
                print("--resume needs --checkpoint.", file=out)
                return 2
            model = None
            if args.model:
                from repro.core.model import MonitorlessModel

                model = MonitorlessModel.load(args.model)
            runner = DriftScenarioRunner.resume(
                args.checkpoint,
                config,
                model=model,
                allow_model_swap=args.allow_model_swap,
            )
            print(f"Resumed from tick {runner.t}.", file=out)
        else:
            model = _lifecycle_model(args, out)
            registry_dir = args.registry
            if registry_dir is None:
                registry_dir = stack.enter_context(
                    tempfile.TemporaryDirectory()
                )
            runner = DriftScenarioRunner(model, registry_dir, config)
        print(
            f"Driving the drift scenario for {config.duration} ticks "
            f"(onset at {config.onset_tick})...",
            file=out,
        )
        runner.run_until(
            checkpoint_path=args.checkpoint,
            checkpoint_interval=(
                args.checkpoint_interval if args.checkpoint else 0
            ),
        )
        result = runner.finish()
    for entry in result.history:
        version = f" v{entry['version']}" if entry["version"] else ""
        print(
            f"  t={entry['tick']:>4}  {entry['event']:<16}{version}  "
            f"{entry['reason']}",
            file=out,
        )
    print(
        f"onset={result.onset_tick}  detection={result.detection_tick}  "
        f"retrain={result.retrain_tick}  promotion={result.promotion_tick}  "
        f"champion=v{result.champion_version}",
        file=out,
    )
    print(
        f"{result.violations} SLO violation-ticks, "
        f"{result.scale_outs} scale-outs",
        file=out,
    )
    if args.report:
        with open(args.report, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
            handle.write("\n")
        print(f"Report written to {args.report}", file=out)
    return 0


_COMMANDS = {
    "inventory": _cmd_inventory,
    "dataset": _cmd_dataset,
    "train": _cmd_train,
    "gridsearch": _cmd_gridsearch,
    "evaluate": _cmd_evaluate,
    "explain": _cmd_explain,
    "stream": _cmd_stream,
    "obs": _cmd_obs,
    "chaos": _cmd_chaos,
    "fleet": _cmd_fleet,
    "interference": _cmd_interference,
    "lifecycle": _cmd_lifecycle,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    tracing = getattr(args, "trace", False)
    if tracing:
        from repro import obs

        obs.reset()
        obs.enable()
    try:
        code = _COMMANDS[args.command](args, out)
    finally:
        if tracing:
            from repro import obs

            obs.disable()
    if tracing and code == 0:
        _print_observability(out)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
