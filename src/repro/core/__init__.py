"""The paper's primary contribution: the *monitorless* method.

- :mod:`repro.core.labeling` -- KPI knee detection (Savitzky-Golay +
  Kneedle) producing the saturation threshold :math:`\\Upsilon` and
  binary ground-truth labels (paper section 2.2).
- :mod:`repro.core.features` -- the 6-step feature-engineering
  pipeline: binary utilization levels, log scaling, standardization,
  random-forest / PCA reduction, temporal AVG/LAG features and
  multiplicative cross-domain interactions (section 3.3).
- :mod:`repro.core.model` -- :class:`MonitorlessModel`, the trained
  saturation classifier facade.
- :mod:`repro.core.aggregation` -- per-application aggregation of
  per-instance predictions (logical OR, section 4).
- :mod:`repro.core.thresholds` -- the optimally-tuned static-threshold
  baselines (CPU / MEM / CPU-OR-MEM / CPU-AND-MEM).
- :mod:`repro.core.evaluation` -- lag-tolerant confusion counts and
  the :math:`F1_2` / :math:`Acc_2` scores (section 4, "lagged metrics").
"""

from repro.core.adaptation import CoralAligner, ImportanceWeighter
from repro.core.aggregation import aggregate_or
from repro.core.evaluation import LaggedConfusion, lagged_confusion
from repro.core.interpret import LimeExplainer, SurrogateTree
from repro.core.labeling import KneedleLabeler, MultiLevelLabeler, kneedle
from repro.core.model import MonitorlessModel

__all__ = [
    "MonitorlessModel",
    "KneedleLabeler",
    "MultiLevelLabeler",
    "kneedle",
    "LaggedConfusion",
    "lagged_confusion",
    "aggregate_or",
    "CoralAligner",
    "ImportanceWeighter",
    "SurrogateTree",
    "LimeExplainer",
]
