"""The :class:`MonitorlessModel` facade: pipeline + classifier.

Bundles the feature-engineering pipeline (section 3.3) with a binary
saturation classifier (section 3.4) behind a small API:

>>> model = MonitorlessModel()                      # doctest: +SKIP
>>> model.fit(X_raw, meta, y, groups)               # doctest: +SKIP
>>> saturated = model.predict(X_live, meta)         # doctest: +SKIP

Six classifier families are supported, matching the paper's
comparison; ``random_forest`` (the paper's winner) is the default with
the paper's tuned hyper-parameters: 250 trees, ``min_samples_leaf=20``,
information-gain splitting, no class weights.  The default prediction
threshold of 0.4 implements the paper's FN-averse operating point.
"""

from __future__ import annotations

import inspect
import pickle
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.core.features.meta import FeatureMeta
from repro.core.features.pipeline import MonitorlessPipeline, PipelineConfig
from repro.ml.boosting import AdaBoostClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbm import GradientBoostingClassifier
from repro.ml.linear import LinearSVC, LogisticRegression
from repro.ml.neural import MLPClassifier

__all__ = [
    "MonitorlessModel",
    "ModelStream",
    "CLASSIFIERS",
    "make_classifier",
    "predict_proba_trusted",
]

# Per-class cache of whether predict_proba accepts ``check_input``;
# probed once with inspect instead of try/except per tick.
_CHECK_INPUT_SUPPORT: dict[type, bool] = {}


def _supports_check_input(classifier) -> bool:
    cls = type(classifier)
    cached = _CHECK_INPUT_SUPPORT.get(cls)
    if cached is None:
        try:
            parameters = inspect.signature(cls.predict_proba).parameters
            cached = "check_input" in parameters
        except (AttributeError, TypeError, ValueError):
            cached = False
        _CHECK_INPUT_SUPPORT[cls] = cached
    return cached


def predict_proba_trusted(classifier, features: np.ndarray) -> np.ndarray:
    """``predict_proba`` skipping input re-validation where supported.

    The streaming and fleet serving paths hand the classifier feature
    matrices they already own and validated (pipeline output buffers),
    so the per-call ``check_array`` pass is pure overhead there.  Tree
    and forest classifiers expose ``check_input=False`` for exactly
    this; classifiers without the parameter get the ordinary call.
    Results are identical either way -- only the validation is skipped.
    """
    if _supports_check_input(classifier):
        return classifier.predict_proba(features, check_input=False)
    return classifier.predict_proba(features)

# Factory defaults follow the paper's grid-search winners (Table 2,
# underlined values).  Tree count / depth are scaled down from the
# paper's testbed-sized values where noted; callers can override.
CLASSIFIERS: dict[str, tuple[type, dict[str, Any]]] = {
    "random_forest": (
        RandomForestClassifier,
        # Paper: n_estimators=250; reduced default for tractability on a
        # single host -- benchmarks pass the paper value explicitly.
        {
            "n_estimators": 60,
            "min_samples_leaf": 20,
            "min_samples_split": 20,
            "criterion": "entropy",
            "class_weight": None,
        },
    ),
    "xgboost": (
        GradientBoostingClassifier,
        # Paper: max_depth=64 (effectively unlimited); 12 is already
        # effectively unlimited at our training sizes.
        {"min_child_weight": 1.0, "max_depth": 12, "gamma": 0.0, "n_estimators": 60},
    ),
    "adaboost": (
        AdaBoostClassifier,
        {
            "n_estimators": 50,
            "algorithm": "SAMME.R",
            "DT_criterion": "gini",
            "DT_splitter": "best",
            "DT_min_samples_split": 5,
        },
    ),
    "logistic_regression": (
        LogisticRegression,
        {"C": 1.0, "tol": 0.1},
    ),
    "svc": (
        LinearSVC,
        {"C": 10.0, "tol": 0.01, "penalty": "l1"},
    ),
    "neural_net": (
        MLPClassifier,
        {
            "activation_function1": "relu",
            "activation_function2": "relu",
            "activation_function3": "sigmoid",
        },
    ),
}


def make_classifier(name: str, random_state=0, **overrides):
    """Instantiate one of the paper's six classifiers by name."""
    if name not in CLASSIFIERS:
        raise ValueError(
            f"Unknown classifier {name!r}; choose from {sorted(CLASSIFIERS)}."
        )
    cls, defaults = CLASSIFIERS[name]
    params = {**defaults, **overrides}
    return cls(random_state=random_state, **params)


class MonitorlessModel:
    """End-to-end saturation predictor over raw platform metrics.

    Parameters
    ----------
    pipeline_config:
        Feature-engineering switches; defaults to the paper's chosen
        configuration (normalize / filter / temporal+interactions /
        filter).
    classifier:
        One of ``random_forest``, ``xgboost``, ``adaboost``,
        ``logistic_regression``, ``svc``, ``neural_net``.
    prediction_threshold:
        Positive-class probability cutoff; 0.4 (the paper's value)
        trades false positives for fewer false negatives.  Only
        classifiers exposing ``predict_proba`` honour it; margin-based
        classifiers fall back to their sign rule.
    classifier_params:
        Overrides forwarded to the classifier factory.
    """

    def __init__(
        self,
        pipeline_config: PipelineConfig | None = None,
        classifier: str = "random_forest",
        prediction_threshold: float = 0.4,
        random_state=0,
        classifier_params: dict[str, Any] | None = None,
    ):
        if not 0.0 < prediction_threshold < 1.0:
            raise ValueError("prediction_threshold must be in (0, 1).")
        self.pipeline_config = pipeline_config or PipelineConfig()
        self.classifier_name = classifier
        self.prediction_threshold = prediction_threshold
        self.random_state = random_state
        self.classifier_params = dict(classifier_params or {})
        self.pipeline_: MonitorlessPipeline | None = None
        self.classifier_ = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        meta: Sequence[FeatureMeta],
        y: np.ndarray,
        groups: np.ndarray | None = None,
    ) -> "MonitorlessModel":
        """Fit pipeline and classifier on labeled raw metric samples.

        ``groups`` carries the training-run id of each sample so that
        temporal features and per-run feature filtering behave as in
        the paper.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y).ravel().astype(np.int64)
        self.pipeline_ = MonitorlessPipeline(
            self.pipeline_config, random_state=self.random_state
        )
        X_features, _ = self.pipeline_.fit_transform(X, meta, y, groups)
        self.classifier_ = make_classifier(
            self.classifier_name,
            random_state=self.random_state,
            **self.classifier_params,
        )
        self.classifier_.fit(X_features, y)
        self.n_engineered_features_ = X_features.shape[1]
        return self

    def refit_classifier(
        self,
        features: np.ndarray,
        y: np.ndarray,
        *,
        classifier_params: dict[str, Any] | None = None,
        random_state=None,
    ) -> "MonitorlessModel":
        """A new model sharing this fitted pipeline, classifier refit.

        The model-lifecycle retrain path: ``features`` are already
        *engineered* rows (pipeline output -- buffered serving batches
        and/or :meth:`transform`-ed corpora).  The feature pipeline is
        frozen within a lineage so a retrained challenger scores the
        exact batch the champion scores during shadow serving, and a
        promotion never invalidates per-container pipeline streams.

        The returned model aliases ``pipeline_`` (read-only by
        convention) and owns a freshly fitted classifier.
        """
        self._check_fitted()
        features = np.asarray(features, dtype=np.float64)
        y = np.asarray(y).ravel().astype(np.int64)
        if features.ndim != 2 or features.shape[1] != self.n_engineered_features_:
            raise ValueError(
                f"refit_classifier expects engineered rows with "
                f"{self.n_engineered_features_} features; got "
                f"{features.shape}."
            )
        clone = MonitorlessModel(
            pipeline_config=self.pipeline_config,
            classifier=self.classifier_name,
            prediction_threshold=self.prediction_threshold,
            random_state=(
                self.random_state if random_state is None else random_state
            ),
            classifier_params={
                **self.classifier_params,
                **(classifier_params or {}),
            },
        )
        clone.pipeline_ = self.pipeline_
        clone.classifier_ = make_classifier(
            clone.classifier_name,
            random_state=clone.random_state,
            **clone.classifier_params,
        )
        clone.classifier_.fit(features, y)
        clone.n_engineered_features_ = features.shape[1]
        return clone

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.pipeline_ is None or self.classifier_ is None:
            raise RuntimeError("MonitorlessModel must be fitted first.")

    def transform(
        self, X: np.ndarray, meta: Sequence[FeatureMeta], groups=None
    ) -> np.ndarray:
        """Raw metrics -> engineered feature matrix."""
        self._check_fitted()
        features, _ = self.pipeline_.transform(
            np.asarray(X, dtype=np.float64), meta, groups
        )
        return features

    def predict_proba(
        self, X: np.ndarray, meta: Sequence[FeatureMeta], groups=None
    ) -> np.ndarray:
        """Positive-class (saturation) probability per sample."""
        self._check_fitted()
        features = self.transform(X, meta, groups)
        if not hasattr(self.classifier_, "predict_proba"):
            raise AttributeError(
                f"{self.classifier_name} exposes no probabilities; use predict()."
            )
        return self.classifier_.predict_proba(features)[:, 1]

    def predict(
        self, X: np.ndarray, meta: Sequence[FeatureMeta], groups=None
    ) -> np.ndarray:
        """Binary saturation prediction per sample (1 = saturated)."""
        self._check_fitted()
        features = self.transform(X, meta, groups)
        if hasattr(self.classifier_, "predict_proba"):
            positive = self.classifier_.predict_proba(features)[:, 1]
            return (positive >= self.prediction_threshold).astype(np.int64)
        return np.asarray(self.classifier_.predict(features)).astype(np.int64)

    def feature_importances(self, top: int | None = None) -> list[tuple[str, float]]:
        """(name, importance) pairs sorted descending (Table 4 view).

        Only available for the tree-ensemble classifiers.
        """
        self._check_fitted()
        importances = getattr(self.classifier_, "feature_importances_", None)
        if importances is None:
            raise AttributeError(
                f"{self.classifier_name} does not expose feature importances."
            )
        names = self.pipeline_.feature_names_
        order = np.argsort(importances)[::-1]
        if top is not None:
            order = order[:top]
        return [(names[i], float(importances[i])) for i in order]

    # ------------------------------------------------------------------
    # Streaming inference
    # ------------------------------------------------------------------
    def stream(self) -> "ModelStream":
        """A per-tick prediction stream over one live metric series.

        Push one raw 1040-metric row per second and get the engineered
        feature row / saturation verdict back without recomputing any
        history.  Open one stream per container.
        """
        self._check_fitted()
        return ModelStream(self)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Serialise the fitted model (pipeline + classifier) to disk."""
        self._check_fitted()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as handle:
            pickle.dump(self, handle)

    @staticmethod
    def load(path: str | Path) -> "MonitorlessModel":
        """Load a model previously written by :meth:`save`."""
        with Path(path).open("rb") as handle:
            model = pickle.load(handle)
        if not isinstance(model, MonitorlessModel):
            raise TypeError(f"{path} does not contain a MonitorlessModel.")
        return model


class ModelStream:
    """Streaming inference over one metric series: pipeline stream +
    per-row classification.

    The fitted model is shared and read-only; only the O(1) temporal
    state lives here.  ``transform_tick`` stacked over time equals the
    batch ``model.transform`` of the stacked rows to within 1e-9 (the
    pipeline's streaming contract), so per-tick verdicts agree with
    the batch path on the same series.
    """

    def __init__(self, model: MonitorlessModel):
        self.model = model
        self._pipeline_stream = model.pipeline_.stream()

    @property
    def ticks(self) -> int:
        """Rows pushed so far."""
        return self._pipeline_stream.ticks

    def transform_tick(self, row: np.ndarray) -> np.ndarray:
        """Raw metric row -> engineered feature row."""
        return self._pipeline_stream.push(row)

    def predict_proba_tick(self, row: np.ndarray) -> float:
        """Raw metric row -> saturation probability."""
        features = self.transform_tick(row)
        classifier = self.model.classifier_
        if not hasattr(classifier, "predict_proba"):
            raise AttributeError(
                f"{self.model.classifier_name} exposes no probabilities; "
                "use predict_tick()."
            )
        return float(predict_proba_trusted(classifier, features[None, :])[0, 1])

    def predict_tick(self, row: np.ndarray) -> int:
        """Raw metric row -> binary saturation verdict (1 = saturated)."""
        features = self.transform_tick(row)
        classifier = self.model.classifier_
        if hasattr(classifier, "predict_proba"):
            positive = predict_proba_trusted(classifier, features[None, :])[0, 1]
            return int(positive >= self.model.prediction_threshold)
        return int(np.asarray(classifier.predict(features[None, :]))[0])
