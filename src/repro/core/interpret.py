"""Model interpretability (paper section 5, "Interpretability").

Two tools the paper proposes for turning the forest into something an
application developer can read:

- :class:`SurrogateTree` -- distill the model into a depth-restricted
  decision tree trained on the model's *own predictions*, then render
  its paths as human-readable scaling rules
  ("IF C-CPU-VERYHIGH > 0.5 AND network.tcp.currestab > 103 THEN
  saturated").
- :class:`LimeExplainer` -- LIME-style local explanations (Ribeiro et
  al., 2016): perturb one sample, query the model, and fit a weighted
  sparse linear model whose coefficients rank the locally most
  influential platform metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import check_array, check_random_state
from repro.ml.tree import DecisionTreeClassifier

__all__ = ["ScalingRule", "SurrogateTree", "LimeExplanation", "LimeExplainer"]


@dataclass(frozen=True)
class ScalingRule:
    """One root-to-leaf path of the surrogate tree."""

    conditions: tuple[str, ...]
    prediction: int  # 1 = saturated
    confidence: float  # leaf purity
    support: float  # fraction of training samples reaching the leaf

    def __str__(self) -> str:
        verdict = "saturated" if self.prediction == 1 else "not saturated"
        clause = " AND ".join(self.conditions) if self.conditions else "TRUE"
        return (
            f"IF {clause} THEN {verdict} "
            f"(confidence {self.confidence:.2f}, support {self.support:.2f})"
        )


class SurrogateTree:
    """Distill a black-box saturation model into readable rules.

    Parameters
    ----------
    max_depth:
        Depth restriction; 3-4 keeps rules short enough to read.
    min_samples_leaf:
        Minimum support per rule.
    """

    def __init__(self, max_depth: int = 3, min_samples_leaf: int = 20,
                 random_state=0):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state

    def fit(
        self,
        X: np.ndarray,
        model_predictions: np.ndarray,
        feature_names: list[str],
    ) -> "SurrogateTree":
        """Fit the surrogate on the *model's* predictions (not labels)."""
        X = check_array(X)
        model_predictions = np.asarray(model_predictions).ravel()
        if X.shape[0] != model_predictions.shape[0]:
            raise ValueError("X and model_predictions must align.")
        if X.shape[1] != len(feature_names):
            raise ValueError("feature_names must describe every column.")
        self.feature_names_ = list(feature_names)
        self.tree_ = DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            random_state=self.random_state,
        )
        self.tree_.fit(X, model_predictions)
        self._n_samples = X.shape[0]
        self._leaf_counts = np.bincount(
            self.tree_._apply(X), minlength=self.tree_.n_nodes_
        )
        return self

    def fidelity(self, X: np.ndarray, model_predictions: np.ndarray) -> float:
        """Fraction of samples where surrogate and model agree."""
        if not hasattr(self, "tree_"):
            raise RuntimeError("SurrogateTree must be fitted first.")
        return float(
            np.mean(self.tree_.predict(check_array(X)) ==
                    np.asarray(model_predictions).ravel())
        )

    @property
    def depth(self) -> int:
        """Depth of the fitted surrogate (<= ``max_depth``)."""
        if not hasattr(self, "tree_"):
            raise RuntimeError("SurrogateTree must be fitted first.")
        return self.tree_.depth_

    @property
    def n_leaves(self) -> int:
        """Rule count of the fitted surrogate (one rule per leaf)."""
        if not hasattr(self, "tree_"):
            raise RuntimeError("SurrogateTree must be fitted first.")
        return self.tree_.n_leaves_

    def rules(self) -> list[ScalingRule]:
        """All root-to-leaf paths as scaling rules, saturated first."""
        if not hasattr(self, "tree_"):
            raise RuntimeError("SurrogateTree must be fitted first.")
        tree = self.tree_
        rules: list[ScalingRule] = []

        def walk(node: int, conditions: list[str]) -> None:
            if tree.tree_feature_[node] == -1:
                distribution = tree.tree_value_[node]
                prediction = int(tree.classes_[np.argmax(distribution)])
                rules.append(
                    ScalingRule(
                        conditions=tuple(conditions),
                        prediction=prediction,
                        confidence=float(np.max(distribution)),
                        support=float(
                            self._leaf_counts[node] / max(self._n_samples, 1)
                        ),
                    )
                )
                return
            name = self.feature_names_[tree.tree_feature_[node]]
            threshold = tree.tree_threshold_[node]
            walk(
                tree.tree_left_[node],
                conditions + [f"{name} <= {threshold:.3g}"],
            )
            walk(
                tree.tree_right_[node],
                conditions + [f"{name} > {threshold:.3g}"],
            )

        walk(0, [])
        rules.sort(key=lambda rule: (-rule.prediction, -rule.support))
        return rules


@dataclass(frozen=True)
class LimeExplanation:
    """A local explanation for one sample."""

    feature_weights: tuple[tuple[str, float], ...]  # sorted by |weight|
    local_prediction: float
    model_prediction: float
    intercept: float

    def top(self, k: int = 5) -> list[tuple[str, float]]:
        return list(self.feature_weights[:k])


class LimeExplainer:
    """Perturbation-based local linear explanations.

    For a sample ``x``: draw Gaussian perturbations around ``x``
    (scaled by the training-data standard deviation), query the model's
    saturation probability, weight perturbations by an RBF proximity
    kernel, and fit ridge-regularised weighted least squares.  The
    coefficients are the local feature influences.
    """

    def __init__(
        self,
        training_data: np.ndarray,
        feature_names: list[str],
        n_samples: int = 500,
        kernel_width: float | None = None,
        ridge: float = 1e-3,
        random_state=0,
    ):
        training_data = check_array(training_data)
        if training_data.shape[1] != len(feature_names):
            raise ValueError("feature_names must describe every column.")
        self.feature_names = list(feature_names)
        self.scale_ = training_data.std(axis=0)
        self.scale_[self.scale_ == 0.0] = 1.0
        self.n_samples = n_samples
        d = training_data.shape[1]
        self.kernel_width = kernel_width or np.sqrt(d) * 0.75
        self.ridge = ridge
        self.random_state = random_state

    def explain(self, x: np.ndarray, predict_proba) -> LimeExplanation:
        """Explain ``predict_proba`` (positive-class probability) at ``x``.

        ``predict_proba`` maps an ``(n, d)`` matrix to an ``(n,)``
        probability vector.
        """
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape[0] != len(self.feature_names):
            raise ValueError("x has the wrong dimensionality.")
        rng = check_random_state(self.random_state)
        noise = rng.normal(size=(self.n_samples, x.shape[0]))
        perturbed = x + noise * self.scale_
        perturbed[0] = x  # include the anchor itself

        probabilities = np.asarray(predict_proba(perturbed), dtype=np.float64)
        normalized_distance = np.linalg.norm(noise, axis=1)
        weights = np.exp(-(normalized_distance**2) / self.kernel_width**2)

        # Weighted ridge regression in standardized coordinates.
        Z = (perturbed - x) / self.scale_
        W = weights
        A = Z.T @ (Z * W[:, None]) + self.ridge * np.eye(Z.shape[1])
        b = Z.T @ (W * probabilities)
        coefficients = np.linalg.solve(A, b)
        intercept = float(
            np.average(probabilities - Z @ coefficients, weights=W)
        )

        order = np.argsort(np.abs(coefficients))[::-1]
        ranked = tuple(
            (self.feature_names[i], float(coefficients[i])) for i in order
        )
        return LimeExplanation(
            feature_weights=ranked,
            local_prediction=float(intercept),
            model_prediction=float(probabilities[0]),
            intercept=intercept,
        )
