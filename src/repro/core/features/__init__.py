"""The monitorless feature-engineering pipeline (paper section 3.3).

Feature matrices travel together with per-column :class:`FeatureMeta`
records so that every step can reason about *what* a column is:

- :mod:`repro.core.features.binary` -- hot-encoded utilization levels
  (LOW/MED/HIGH, plus VERYHIGH/EXTREME for CPU) for host and container
  CPU/memory utilization (section 3.3.1; 16 extra features).
- :mod:`repro.core.features.scaling` -- logarithmic scaling of
  byte-valued metrics without a known maximum (section 3.3.2).
- :mod:`repro.core.features.temporal` -- X-AVG / X-LAG variants for
  X in {1, 5, 15} (section 3.3.5).
- :mod:`repro.core.features.interactions` -- multiplicative pairs of
  features from different resource domains (section 3.3.6).
- :mod:`repro.core.features.selection` -- random-forest top-30-union
  filtering, PCA reduction and zero-variance removal (section 3.3.4).
- :mod:`repro.core.features.pipeline` -- the ordered 6-step pipeline
  and the grid search over its optional steps (section 3.3.7).
"""

from repro.core.features.binary import BinaryLevelFeatures
from repro.core.features.interactions import InteractionFeatures
from repro.core.features.meta import Domain, FeatureMeta, Scope
from repro.core.features.pipeline import (
    FeaturePipeline,
    MonitorlessPipeline,
    PipelineConfig,
    PipelineStream,
)
from repro.core.features.scaling import LogScaler
from repro.core.features.selection import (
    PCAReducer,
    RandomForestFilter,
    VarianceFilter,
)
from repro.core.features.temporal import TemporalFeatures, TemporalState

__all__ = [
    "FeatureMeta",
    "Domain",
    "Scope",
    "BinaryLevelFeatures",
    "LogScaler",
    "TemporalFeatures",
    "TemporalState",
    "InteractionFeatures",
    "RandomForestFilter",
    "PCAReducer",
    "VarianceFilter",
    "MonitorlessPipeline",
    "FeaturePipeline",
    "PipelineStream",
    "PipelineConfig",
]
