"""Feature-reduction steps (paper section 3.3.4).

Two alternatives plus a final cleanup:

- :class:`RandomForestFilter` -- train a random forest on each
  training run (dataset) separately, rank features by impurity
  importance, and keep the *union* of each run's top-30 (features
  below the top 30 carry weight < 1/#features).  The paper's union is
  117 features.
- :class:`PCAReducer` -- project onto principal components (the paper
  keeps 50 components / 99.99% of variance); resulting features are
  latent and lose physical interpretability.
- :class:`VarianceFilter` -- drop zero-variance columns (they carry no
  information and break standardisation downstream).
"""

from __future__ import annotations

import numpy as np

from repro.core.features.meta import FeatureMeta
from repro.ml.decomposition import PCA
from repro.ml.forest import RandomForestClassifier

__all__ = ["RandomForestFilter", "PCAReducer", "VarianceFilter"]


class RandomForestFilter:
    """Keep the union of per-run top-k features by forest importance.

    Parameters
    ----------
    top_k:
        Features kept per training run (paper: 30).
    per_group:
        When True (paper behaviour) one forest is trained per group
        (training run) and the union of top-k sets is kept; when False
        a single forest ranks features globally.
    importance_floor:
        Additional cut: features whose importance is below
        ``importance_floor / n_features`` are not kept even inside the
        top-k (the paper notes everything below the top 30 fell under
        weight 1/#features).
    n_estimators, max_depth, random_state:
        Forest configuration for the ranking model; modest defaults
        keep the filter fast without changing the ranking materially.
    """

    def __init__(
        self,
        top_k: int = 30,
        per_group: bool = True,
        importance_floor: float = 0.0,
        n_estimators: int = 30,
        max_depth: int | None = 12,
        random_state=0,
    ):
        self.top_k = top_k
        self.per_group = per_group
        self.importance_floor = importance_floor
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.random_state = random_state

    def _rank_one(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Indices of the top-k features for one dataset."""
        if len(np.unique(y)) < 2:
            return np.array([], dtype=np.int64)  # unlabeled-variance run
        forest = RandomForestClassifier(
            n_estimators=self.n_estimators,
            max_depth=self.max_depth,
            random_state=self.random_state,
        )
        forest.fit(X, y)
        importances = forest.feature_importances_
        order = np.argsort(importances)[::-1][: self.top_k]
        floor = self.importance_floor / max(X.shape[1], 1)
        return order[importances[order] > floor]

    def fit(
        self,
        X: np.ndarray,
        meta: list[FeatureMeta],
        y: np.ndarray,
        groups: np.ndarray | None = None,
    ) -> "RandomForestFilter":
        if y is None:
            raise ValueError("RandomForestFilter is supervised; y is required.")
        y = np.asarray(y)
        selected: set[int] = set()
        if self.per_group and groups is not None:
            groups = np.asarray(groups)
            for group in np.unique(groups):
                mask = groups == group
                selected.update(self._rank_one(X[mask], y[mask]).tolist())
        else:
            selected.update(self._rank_one(X, y).tolist())
        if not selected:
            # Pathological input (every run single-class): keep everything
            # rather than emit an empty matrix.
            selected = set(range(X.shape[1]))
        self.selected_ = np.asarray(sorted(selected), dtype=np.int64)
        self.n_features_in_ = len(meta)
        return self

    def transform(
        self, X: np.ndarray, meta: list[FeatureMeta]
    ) -> tuple[np.ndarray, list[FeatureMeta]]:
        if not hasattr(self, "selected_"):
            raise RuntimeError("RandomForestFilter must be fitted first.")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} columns; filter was fitted with "
                f"{self.n_features_in_}."
            )
        return X[:, self.selected_], [meta[i] for i in self.selected_]

    def fit_transform(self, X, meta, y, groups=None):
        return self.fit(X, meta, y, groups).transform(X, meta)

    def transform_tick(self, row: np.ndarray) -> np.ndarray:
        """Streaming mode: column subset of one row."""
        if not hasattr(self, "selected_"):
            raise RuntimeError("RandomForestFilter must be fitted first.")
        return row[self.selected_]


class PCAReducer:
    """PCA projection; output features become latent components."""

    def __init__(self, n_components=0.9999, max_components: int = 50):
        self.n_components = n_components
        self.max_components = max_components

    def fit(self, X: np.ndarray, meta: list[FeatureMeta], y=None, groups=None) -> "PCAReducer":
        self.pca_ = PCA(n_components=self.n_components).fit(X)
        self.keep_ = min(self.pca_.n_components_, self.max_components)
        self.n_features_in_ = len(meta)
        return self

    def transform(
        self, X: np.ndarray, meta: list[FeatureMeta]
    ) -> tuple[np.ndarray, list[FeatureMeta]]:
        if not hasattr(self, "pca_"):
            raise RuntimeError("PCAReducer must be fitted first.")
        projected = self.pca_.transform(X)[:, : self.keep_]
        new_meta = [FeatureMeta.latent(i) for i in range(self.keep_)]
        return projected, new_meta

    def fit_transform(self, X, meta, y=None, groups=None):
        return self.fit(X, meta, y, groups).transform(X, meta)

    def transform_tick(self, row: np.ndarray) -> np.ndarray:
        """Streaming mode: project one row onto the kept components.

        The only pipeline step that is not bitwise-identical to its
        batch counterpart: BLAS may evaluate a 1-row product with a
        different kernel than a T-row product, so agreement is to
        floating-point accuracy (far inside the pipeline's 1e-9
        contract), not exact.
        """
        if not hasattr(self, "pca_"):
            raise RuntimeError("PCAReducer must be fitted first.")
        return self.pca_.transform(row[None, :])[0, : self.keep_]


class VarianceFilter:
    """Drop columns whose training variance is (numerically) zero."""

    def __init__(self, threshold: float = 0.0):
        self.threshold = threshold

    def fit(self, X: np.ndarray, meta: list[FeatureMeta], y=None, groups=None) -> "VarianceFilter":
        variances = X.var(axis=0)
        self.selected_ = np.flatnonzero(variances > self.threshold)
        if self.selected_.size == 0:
            raise ValueError("All features have zero variance; nothing to keep.")
        self.n_features_in_ = len(meta)
        return self

    def transform(
        self, X: np.ndarray, meta: list[FeatureMeta]
    ) -> tuple[np.ndarray, list[FeatureMeta]]:
        if not hasattr(self, "selected_"):
            raise RuntimeError("VarianceFilter must be fitted first.")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} columns; filter was fitted with "
                f"{self.n_features_in_}."
            )
        return X[:, self.selected_], [meta[i] for i in self.selected_]

    def fit_transform(self, X, meta, y=None, groups=None):
        return self.fit(X, meta, y, groups).transform(X, meta)

    def transform_tick(self, row: np.ndarray) -> np.ndarray:
        """Streaming mode: column subset of one row."""
        if not hasattr(self, "selected_"):
            raise RuntimeError("VarianceFilter must be fitted first.")
        return row[self.selected_]
