"""The ordered feature-engineering pipeline and its grid search
(paper section 3.3.7).

Steps, in the paper's order:

1. create binary level features and log-scale byte-valued features
   (always on);
2. normalize (StandardScaler) -- optional;
3. first reduction: random-forest filter, PCA, or none;
4. create time-dependent (AVG/LAG) and multiplicative features --
   each optional;
5. second reduction: filter, PCA, or none;
6. remove zero-variance features (always on).

The combination *no first reduction + multiplicative features* is
rejected, as in the paper, because it explodes the feature count
(1040 raw metrics would yield ~500k products).

:func:`grid_search_pipeline` evaluates each admissible configuration
with grouped cross-validation using a random-forest scorer, mirroring
how the paper picked its pipeline configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro import obs
from repro.core.features.binary import BinaryLevelFeatures
from repro.core.features.interactions import InteractionFeatures
from repro.core.features.meta import FeatureMeta
from repro.core.features.scaling import LogScaler
from repro.core.features.selection import PCAReducer, RandomForestFilter, VarianceFilter
from repro.core.features.temporal import TemporalFeatures
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import f1_score
from repro.ml.model_selection import GroupKFold, KFold
from repro.ml.preprocessing import StandardScaler

__all__ = [
    "PipelineConfig",
    "MonitorlessPipeline",
    "FeaturePipeline",
    "PipelineStream",
    "grid_search_pipeline",
]

_REDUCTIONS = (None, "filter", "pca")


@dataclass(frozen=True)
class PipelineConfig:
    """Switches for the optional pipeline steps.

    The paper's selected configuration is the default: normalize,
    filter, temporal + interactions, filter again.
    """

    normalize: bool = True
    reduction1: str | None = "filter"
    temporal: bool = True
    interactions: bool = True
    reduction2: str | None = "filter"
    temporal_windows: tuple[int, ...] = (1, 5, 15)
    filter_top_k: int = 30
    pca_components: float = 0.9999

    def __post_init__(self):
        if self.reduction1 not in _REDUCTIONS or self.reduction2 not in _REDUCTIONS:
            raise ValueError("Reductions must be None, 'filter' or 'pca'.")
        if self.interactions and self.reduction1 is None:
            raise ValueError(
                "interactions without a first reduction step is practically "
                "unfeasible (exponential feature blow-up); the paper excludes "
                "this combination from its grid."
            )

    def describe(self) -> str:
        """Short config label for logs and benchmark rows."""
        parts = [
            "norm" if self.normalize else "raw",
            self.reduction1 or "none",
            "+".join(
                name
                for flag, name in ((self.temporal, "time"), (self.interactions, "mult"))
                if flag
            )
            or "none",
            self.reduction2 or "none",
        ]
        return "/".join(parts)


def admissible_configs(
    *,
    temporal_windows: tuple[int, ...] = (1, 5, 15),
    filter_top_k: int = 30,
) -> list[PipelineConfig]:
    """Every admissible combination of the optional steps (paper grid)."""
    configs = []
    for normalize in (False, True):
        for reduction1 in _REDUCTIONS:
            for temporal in (False, True):
                for interactions in (False, True):
                    if interactions and reduction1 is None:
                        continue
                    for reduction2 in _REDUCTIONS:
                        configs.append(
                            PipelineConfig(
                                normalize=normalize,
                                reduction1=reduction1,
                                temporal=temporal,
                                interactions=interactions,
                                reduction2=reduction2,
                                temporal_windows=temporal_windows,
                                filter_top_k=filter_top_k,
                            )
                        )
    return configs


class MonitorlessPipeline:
    """Fit/transform implementation of the six-step pipeline.

    ``fit_transform`` requires labels ``y`` (the RF filter is
    supervised) and per-sample ``groups`` (run ids) so that temporal
    windows never cross run boundaries and the filter can rank per run.
    """

    def __init__(self, config: PipelineConfig | None = None, random_state=0):
        self.config = config or PipelineConfig()
        self.random_state = random_state

    def _make_reduction(self, kind: str | None):
        if kind is None:
            return None
        if kind == "filter":
            return RandomForestFilter(
                top_k=self.config.filter_top_k, random_state=self.random_state
            )
        if kind == "pca":
            return PCAReducer(n_components=self.config.pca_components)
        raise ValueError(f"Unknown reduction: {kind!r}")

    def fit_transform(
        self,
        X: np.ndarray,
        meta: Sequence[FeatureMeta],
        y: np.ndarray,
        groups: np.ndarray | None = None,
    ) -> tuple[np.ndarray, list[FeatureMeta]]:
        X = np.asarray(X, dtype=np.float64)
        meta = list(meta)
        if X.shape[1] != len(meta):
            raise ValueError("meta must describe every column of X.")

        # Step 1: binary levels + log scaling.
        self.binary_ = BinaryLevelFeatures()
        X, meta = self.binary_.fit_transform(X, meta, y)
        self.log_ = LogScaler()
        X, meta = self.log_.fit_transform(X, meta, y)

        # Step 2: normalization.
        if self.config.normalize:
            self.scaler_ = StandardScaler()
            X = self.scaler_.fit_transform(X)
        else:
            self.scaler_ = None

        # Step 3: first reduction.
        self.reduction1_ = self._make_reduction(self.config.reduction1)
        if self.reduction1_ is not None:
            X, meta = self.reduction1_.fit_transform(X, meta, y, groups)

        # Step 4: temporal and multiplicative features.
        if self.config.temporal:
            self.temporal_ = TemporalFeatures(windows=self.config.temporal_windows)
            X, meta = self.temporal_.fit_transform(X, meta, y, groups)
        else:
            self.temporal_ = None
        if self.config.interactions:
            self.interactions_ = InteractionFeatures()
            X, meta = self.interactions_.fit_transform(X, meta, y)
        else:
            self.interactions_ = None

        # Step 5: second reduction.
        self.reduction2_ = self._make_reduction(self.config.reduction2)
        if self.reduction2_ is not None:
            X, meta = self.reduction2_.fit_transform(X, meta, y, groups)

        # Step 6: zero-variance removal.
        self.variance_ = VarianceFilter()
        X, meta = self.variance_.fit_transform(X, meta, y)

        self.output_meta_ = meta
        return X, meta

    def transform(
        self,
        X: np.ndarray,
        meta: Sequence[FeatureMeta],
        groups: np.ndarray | None = None,
    ) -> tuple[np.ndarray, list[FeatureMeta]]:
        if not hasattr(self, "variance_"):
            raise RuntimeError("Pipeline must be fit_transform-ed first.")
        X = np.asarray(X, dtype=np.float64)
        meta = list(meta)
        with obs.trace("pipeline.transform"):
            X, meta = self.binary_.transform(X, meta)
            X, meta = self.log_.transform(X, meta)
            if self.scaler_ is not None:
                X = self.scaler_.transform(X)
            if self.reduction1_ is not None:
                X, meta = self.reduction1_.transform(X, meta)
            if self.temporal_ is not None:
                X, meta = self.temporal_.transform(X, meta, groups)
            if self.interactions_ is not None:
                X, meta = self.interactions_.transform(X, meta)
            if self.reduction2_ is not None:
                X, meta = self.reduction2_.transform(X, meta)
            X, meta = self.variance_.transform(X, meta)
        obs.inc("pipeline.transform_rows", X.shape[0])
        return X, meta

    @property
    def feature_names_(self) -> list[str]:
        """Names of the output features after fitting."""
        if not hasattr(self, "output_meta_"):
            raise RuntimeError("Pipeline must be fit_transform-ed first.")
        return [feature.name for feature in self.output_meta_]

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def stream(self) -> "PipelineStream":
        """A stateful per-tick view of the fitted pipeline.

        One stream per independent metric series (one per container);
        the fitted parameters stay frozen and shared, only the O(1)
        rolling temporal state lives in the stream.
        """
        if not hasattr(self, "variance_"):
            raise RuntimeError("Pipeline must be fit_transform-ed first.")
        return PipelineStream(self)

    def transform_tick(self, row: np.ndarray) -> np.ndarray:
        """Push one raw metric row through the pipeline incrementally.

        Convenience wrapper around a single internal
        :class:`PipelineStream` (created on first call, reset with
        :meth:`reset_stream`): successive calls are treated as
        successive ticks of ONE series.  For several concurrent series
        hold one :meth:`stream` each instead.
        """
        if not hasattr(self, "_default_stream") or self._default_stream is None:
            self._default_stream = self.stream()
        return self._default_stream.push(row)

    def reset_stream(self) -> None:
        """Forget the internal :meth:`transform_tick` series state."""
        self._default_stream = None


class PipelineStream:
    """Incremental (per-tick) execution of a fitted pipeline.

    Mirrors :meth:`MonitorlessPipeline.transform` step by step on
    single rows, with the temporal step backed by an O(1)
    :class:`~repro.core.features.temporal.TemporalState` instead of a
    growing history.  Stacked outputs equal the batch transform of the
    stacked inputs to within 1e-9 (bitwise for filter-based configs;
    the PCA projection is the one step where BLAS may differ in the
    last bits).
    """

    def __init__(self, pipeline: MonitorlessPipeline):
        if not hasattr(pipeline, "variance_"):
            raise RuntimeError("Pipeline must be fit_transform-ed first.")
        self.pipeline = pipeline
        self.temporal_state = (
            pipeline.temporal_.make_state()
            if pipeline.temporal_ is not None
            else None
        )
        self.ticks = 0
        self.imputed_ticks = 0
        self._last_clean: np.ndarray | None = None

    def push(self, row: np.ndarray, imputed: bool = False) -> np.ndarray:
        """One raw metric row -> one engineered feature row.

        ``imputed=True`` flags a row whose values were partly or fully
        carried forward by the resilience layer; it is transformed
        normally but counted in :attr:`imputed_ticks`.  Any NaN entries
        are masked to the last clean input (0.0 before one exists)
        *before* the temporal step -- a NaN pushed into the cumulative
        :class:`~repro.core.features.temporal.TemporalState` would
        poison every subsequent rolling feature irrecoverably.
        """
        pipeline = self.pipeline
        row = np.asarray(row, dtype=np.float64)
        if row.ndim != 1:
            raise ValueError("push expects a single 1-D metric row.")
        nan_mask = np.isnan(row)
        if nan_mask.any():
            row = row.copy()
            row[nan_mask] = (
                0.0 if self._last_clean is None else self._last_clean[nan_mask]
            )
            imputed = True
            obs.inc("pipeline.nan_masked_values", float(nan_mask.sum()))
        self._last_clean = row
        if imputed:
            self.imputed_ticks += 1
            obs.inc("pipeline.imputed_ticks")
        with obs.trace("pipeline.transform_tick"):
            with obs.trace("pipeline.step.binary"):
                row = pipeline.binary_.transform_tick(row)
            with obs.trace("pipeline.step.log"):
                row = pipeline.log_.transform_tick(row)
            if pipeline.scaler_ is not None:
                with obs.trace("pipeline.step.normalize"):
                    row = pipeline.scaler_.transform_tick(row)
            if pipeline.reduction1_ is not None:
                with obs.trace("pipeline.step.reduction1"):
                    row = pipeline.reduction1_.transform_tick(row)
            if pipeline.temporal_ is not None:
                with obs.trace("pipeline.step.temporal"):
                    row = pipeline.temporal_.transform_tick(
                        row, self.temporal_state
                    )
            if pipeline.interactions_ is not None:
                with obs.trace("pipeline.step.interactions"):
                    row = pipeline.interactions_.transform_tick(row)
            if pipeline.reduction2_ is not None:
                with obs.trace("pipeline.step.reduction2"):
                    row = pipeline.reduction2_.transform_tick(row)
            with obs.trace("pipeline.step.variance"):
                row = pipeline.variance_.transform_tick(row)
        obs.inc("pipeline.ticks")
        self.ticks += 1
        return row


# The streaming-era name for the pipeline; both names are public API.
FeaturePipeline = MonitorlessPipeline


@dataclass
class PipelineSearchResult:
    """Score of one pipeline configuration in the grid search."""

    config: PipelineConfig
    mean_f1: float
    fold_f1: np.ndarray
    n_features: int


def grid_search_pipeline(
    X: np.ndarray,
    meta: Sequence[FeatureMeta],
    y: np.ndarray,
    groups: np.ndarray | None = None,
    *,
    configs: Iterable[PipelineConfig] | None = None,
    n_splits: int = 5,
    n_estimators: int = 30,
    random_state=0,
) -> list[PipelineSearchResult]:
    """Score pipeline configurations with grouped CV + random forest.

    Returns results sorted best-first.  The paper evaluates the steps
    with "a random forest algorithm with default parameters"; we use a
    smaller forest by default to keep the search tractable (the
    *ranking* of configurations is what matters).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    configs = list(configs) if configs is not None else admissible_configs()
    if groups is not None and len(np.unique(groups)) >= n_splits:
        splitter = GroupKFold(n_splits=n_splits)
    else:
        splitter = KFold(n_splits=n_splits, shuffle=True, random_state=random_state)

    results = []
    for config in configs:
        fold_scores = []
        n_features = 0
        for train_idx, valid_idx in splitter.split(X, y, groups):
            pipeline = MonitorlessPipeline(config, random_state=random_state)
            train_groups = None if groups is None else np.asarray(groups)[train_idx]
            valid_groups = None if groups is None else np.asarray(groups)[valid_idx]
            X_train, _ = pipeline.fit_transform(
                X[train_idx], meta, y[train_idx], train_groups
            )
            X_valid, _ = pipeline.transform(X[valid_idx], meta, valid_groups)
            n_features = X_train.shape[1]
            model = RandomForestClassifier(
                n_estimators=n_estimators, random_state=random_state
            )
            model.fit(X_train, y[train_idx])
            fold_scores.append(f1_score(y[valid_idx], model.predict(X_valid)))
        results.append(
            PipelineSearchResult(
                config=config,
                mean_f1=float(np.mean(fold_scores)),
                fold_f1=np.asarray(fold_scores),
                n_features=n_features,
            )
        )
    results.sort(key=lambda r: r.mean_f1, reverse=True)
    return results
