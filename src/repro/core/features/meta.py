"""Per-feature metadata carried alongside the numeric matrix.

Each column of the training matrix corresponds to one
:class:`FeatureMeta` describing its origin (host vs container), its
resource domain (CPU, memory, ...) and its semantics (utilization,
byte-valued, binary, temporal, interaction).  The feature-engineering
steps dispatch on this metadata: e.g. the binary-level step only
applies to utilization columns, the log-scaling step only to
byte-valued columns, and the interaction step only multiplies columns
from *different* domains.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = ["Domain", "Scope", "FeatureMeta", "infer_domain"]


class Domain(str, enum.Enum):
    """Resource domain of a platform metric."""

    CPU = "cpu"
    MEMORY = "memory"
    NETWORK = "network"
    DISK = "disk"
    FILESYSTEM = "filesystem"
    KERNEL = "kernel"
    OTHER = "other"
    LATENT = "latent"  # post-PCA components have no physical domain


class Scope(str, enum.Enum):
    """Whether a metric describes the host or one container."""

    HOST = "host"
    CONTAINER = "container"


# Longest-prefix rules mapping PCP metric names to domains.
_PREFIX_DOMAINS: list[tuple[str, Domain]] = [
    ("kernel.all.cpu", Domain.CPU),
    ("kernel.percpu.cpu", Domain.CPU),
    ("hinv.ncpu", Domain.CPU),
    ("cgroup.cpusched", Domain.CPU),
    ("cgroup.cpuacct", Domain.CPU),
    ("cgroup.cpu", Domain.CPU),
    ("cgroup.memory", Domain.MEMORY),
    ("cgroup.blkio", Domain.DISK),
    ("mem.", Domain.MEMORY),
    ("swap.", Domain.MEMORY),
    ("network.", Domain.NETWORK),
    ("hinv.ninterface", Domain.NETWORK),
    ("disk.", Domain.DISK),
    ("vfs.", Domain.FILESYSTEM),
    ("filesys.", Domain.FILESYSTEM),
    ("kernel.", Domain.KERNEL),
    ("proc.", Domain.KERNEL),
]


def infer_domain(metric_name: str) -> Domain:
    """Best-effort domain from a PCP-style dotted metric name."""
    for prefix, domain in _PREFIX_DOMAINS:
        if metric_name.startswith(prefix):
            return domain
    return Domain.OTHER


@dataclass(frozen=True)
class FeatureMeta:
    """Immutable description of one feature column.

    Attributes
    ----------
    name:
        Human-readable feature name; engineered features compose names
        the way the paper's Table 4 does (``a x b``, ``...-AVG4``,
        ``...-LAGGED15``).
    domain:
        Resource domain used by the interaction step.
    scope:
        Host- or container-level.
    utilization:
        True for metrics on a relative 0-100 scale (binary-level step
        applies to CPU/memory utilization only).
    bytes_like:
        True for byte-valued metrics without a known maximum (log-scale
        step applies).
    binary:
        True for hot-encoded level features.
    temporal:
        True for AVG/LAG-derived features (excluded from interactions).
    interaction:
        True for multiplicative features.
    """

    name: str
    domain: Domain = Domain.OTHER
    scope: Scope = Scope.HOST
    utilization: bool = False
    bytes_like: bool = False
    binary: bool = False
    temporal: bool = False
    interaction: bool = False

    def derived(self, suffix: str, **changes) -> "FeatureMeta":
        """A copy of this meta renamed with ``suffix`` and updated flags."""
        return replace(self, name=f"{self.name}{suffix}", **changes)

    @staticmethod
    def latent(index: int) -> "FeatureMeta":
        """Meta for a PCA component (no physical interpretation)."""
        return FeatureMeta(name=f"PC-{index}", domain=Domain.LATENT)
