"""Logarithmic scaling of byte-valued metrics (paper section 3.3.2).

Byte-valued metrics without a known maximum (e.g. bytes read from an
I/O device) cannot be converted to a relative scale.  To emphasise
magnitude over exact value -- and so reduce dependence on the training
hardware -- the paper transforms them to a logarithmic scale.  We use
``log1p`` (log(1+x)) so that zero stays zero and negative rates (which
should not occur, but robustness is cheap) are clamped.
"""

from __future__ import annotations

import numpy as np

from repro.core.features.meta import FeatureMeta

__all__ = ["LogScaler"]


class LogScaler:
    """Apply ``log1p`` in place to every ``bytes_like`` column."""

    def fit(self, X: np.ndarray, meta: list[FeatureMeta], y=None) -> "LogScaler":
        self.columns_ = [
            index for index, feature in enumerate(meta) if feature.bytes_like
        ]
        self.n_features_in_ = len(meta)
        return self

    def transform(
        self, X: np.ndarray, meta: list[FeatureMeta]
    ) -> tuple[np.ndarray, list[FeatureMeta]]:
        if not hasattr(self, "columns_"):
            raise RuntimeError("LogScaler must be fitted first.")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} columns; step was fitted with "
                f"{self.n_features_in_}."
            )
        if not self.columns_:
            return X, list(meta)
        X = X.copy()
        cols = np.asarray(self.columns_)
        X[:, cols] = np.log1p(np.maximum(X[:, cols], 0.0))
        new_meta = list(meta)
        for index in self.columns_:
            new_meta[index] = new_meta[index].derived("-LOG", bytes_like=False)
        return X, new_meta

    def fit_transform(self, X, meta, y=None):
        return self.fit(X, meta, y).transform(X, meta)

    def transform_tick(self, row: np.ndarray) -> np.ndarray:
        """Streaming mode: ``log1p`` the byte-valued entries of one row."""
        if not hasattr(self, "columns_"):
            raise RuntimeError("LogScaler must be fitted first.")
        if row.shape != (self.n_features_in_,):
            raise ValueError(
                f"row has shape {row.shape}; step was fitted with "
                f"{self.n_features_in_} columns."
            )
        if not self.columns_:
            return row
        row = row.copy()
        cols = np.asarray(self.columns_)
        row[cols] = np.log1p(np.maximum(row[cols], 0.0))
        return row
