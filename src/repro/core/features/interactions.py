"""Multiplicative cross-domain features (paper section 3.3.6).

The paper multiplies all pairs of features from *different* resource
domains (e.g. a CPU feature with a network feature) -- this step turned
out to be crucial: nearly every top-30 feature in Table 4 is such a
product (``network.tcp.currestab x C-CPU-HIGH``, ...).  Time-dependent
features are excluded from pairing to bound the blow-up.

For latent (post-PCA) inputs there is no domain structure; all pairs
``i < j`` are formed up to ``max_pairs``.
"""

from __future__ import annotations

import numpy as np

from repro.core.features.meta import Domain, FeatureMeta

__all__ = ["InteractionFeatures"]


class InteractionFeatures:
    """Append products of feature pairs from different domains.

    Parameters
    ----------
    max_pairs:
        Safety cap on the number of generated products; crossing it
        raises rather than silently truncating (a silent cap would make
        "we combined all pairs" a lie).
    """

    def __init__(self, max_pairs: int = 50_000):
        self.max_pairs = max_pairs

    def fit(self, X: np.ndarray, meta: list[FeatureMeta], y=None) -> "InteractionFeatures":
        eligible = [
            index for index, feature in enumerate(meta) if not feature.temporal
        ]
        pairs: list[tuple[int, int]] = []
        for position, i in enumerate(eligible):
            for j in eligible[position + 1 :]:
                if (
                    meta[i].domain != meta[j].domain
                    or meta[i].domain == Domain.LATENT
                ):
                    pairs.append((i, j))
        if len(pairs) > self.max_pairs:
            raise ValueError(
                f"Interaction step would create {len(pairs)} features "
                f"(cap {self.max_pairs}); apply a reduction step first, as "
                "the paper does (section 3.3.7)."
            )
        self.pairs_ = pairs
        self.n_features_in_ = len(meta)
        # Product meta built once at fit time (transform would otherwise
        # rebuild thousands of dataclasses per online prediction).
        self.product_meta_ = [
            FeatureMeta(
                name=f"{meta[i].name} x {meta[j].name}",
                domain=meta[i].domain,
                scope=meta[i].scope,
                interaction=True,
            )
            for i, j in pairs
        ]
        return self

    def transform(
        self, X: np.ndarray, meta: list[FeatureMeta]
    ) -> tuple[np.ndarray, list[FeatureMeta]]:
        if not hasattr(self, "pairs_"):
            raise RuntimeError("InteractionFeatures must be fitted first.")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} columns; step was fitted with "
                f"{self.n_features_in_}."
            )
        if not self.pairs_:
            return X, list(meta)
        if not hasattr(self, "_left_index"):
            self._left_index = np.asarray([i for i, _ in self.pairs_])
            self._right_index = np.asarray([j for _, j in self.pairs_])
        products = X[:, self._left_index] * X[:, self._right_index]
        return np.hstack([X, products]), list(meta) + self.product_meta_

    def fit_transform(self, X, meta, y=None):
        return self.fit(X, meta, y).transform(X, meta)

    def transform_tick(self, row: np.ndarray) -> np.ndarray:
        """Streaming mode: append the pair products for one row."""
        if not hasattr(self, "pairs_"):
            raise RuntimeError("InteractionFeatures must be fitted first.")
        if row.shape != (self.n_features_in_,):
            raise ValueError(
                f"row has shape {row.shape}; step was fitted with "
                f"{self.n_features_in_} columns."
            )
        if not self.pairs_:
            return row
        if not hasattr(self, "_left_index"):
            self._left_index = np.asarray([i for i, _ in self.pairs_])
            self._right_index = np.asarray([j for _, j in self.pairs_])
        return np.concatenate(
            [row, row[self._left_index] * row[self._right_index]]
        )
