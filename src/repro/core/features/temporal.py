"""Time-dependent feature variants (paper section 3.3.5).

For every feature the paper adds ``X-AVG`` (mean over the last X+1
samples, current included) and ``X-LAG`` (value X samples ago) for
``X in {1, 5, 15}``, embedding 15 seconds of context into each
one-second snapshot.  Table 4 names these ``...-AVG4`` /
``...-LAGGED15`` style; we render ``-AVGk`` and ``-LAGGEDk``.

Windows never cross run boundaries: pass ``groups`` (one id per sample,
contiguous per run) and each run is warmed up independently -- the
first samples of a run see shortened windows / zero lag, exactly what
an online agent observes right after a container starts.
"""

from __future__ import annotations

import numpy as np

from repro.core.features.meta import FeatureMeta

__all__ = ["TemporalFeatures", "TemporalState", "rolling_average", "lagged"]


def _rolling_average_2d(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing mean along axis 0 of a (T, k) matrix, warm-up shortened."""
    n = values.shape[0]
    if window == 1 or n == 0:
        return values.copy()
    cumulative = np.cumsum(values, axis=0)
    index = np.arange(n)
    start = np.maximum(0, index - window + 1)
    before_start = np.where(
        (start > 0)[:, None], cumulative[start - 1], 0.0
    )
    averaged = (cumulative - before_start) / (index - start + 1)[:, None]
    # Cumulative-sum differencing accumulates rounding error with the
    # running total, which can push a window's mean outside the window's
    # own value range (visible as ``avg > max`` on long constant
    # series).  A mean is bounded by its window extremes, so clamp.
    lo = values.copy()
    hi = values.copy()
    for offset in range(1, min(window, n)):
        np.minimum(lo[offset:], values[: n - offset], out=lo[offset:])
        np.maximum(hi[offset:], values[: n - offset], out=hi[offset:])
    return np.clip(averaged, lo, hi)


def _lagged_2d(values: np.ndarray, lag: int) -> np.ndarray:
    """Shift along axis 0; warm-up repeats the first row."""
    n = values.shape[0]
    if lag == 0 or n == 0:
        return values.copy()
    result = np.empty_like(values)
    result[:lag] = values[0]
    result[lag:] = values[:-lag]
    return result


def rolling_average(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing mean over ``window`` samples with warm-up shortening."""
    values = np.asarray(values, dtype=np.float64)
    if window < 1:
        raise ValueError("window must be >= 1.")
    if values.size == 0:
        return values.copy()
    return _rolling_average_2d(values[:, None], window)[:, 0]


def lagged(values: np.ndarray, lag: int) -> np.ndarray:
    """Series shifted by ``lag`` samples; warm-up repeats the first value."""
    values = np.asarray(values, dtype=np.float64)
    if lag < 0:
        raise ValueError("lag must be non-negative.")
    if values.size == 0:
        return values.copy()
    return _lagged_2d(values[:, None], lag)[:, 0]


def _group_slices(groups: np.ndarray | None, n: int) -> list[slice]:
    if groups is None:
        return [slice(0, n)]
    groups = np.asarray(groups)
    if groups.shape[0] != n:
        raise ValueError("groups must align with X.")
    slices = []
    start = 0
    for t in range(1, n + 1):
        if t == n or groups[t] != groups[start]:
            slices.append(slice(start, t))
            start = t
    return slices


class TemporalState:
    """O(1)-per-tick rolling state for streaming AVG/LAG features.

    Holds, for the ``k`` source columns of a fitted
    :class:`TemporalFeatures`:

    - the running cumulative sum (the same sequential additions
      ``np.cumsum`` performs, so trailing averages computed as
      cumulative differences are bitwise equal to the batch path);
    - ring buffers of the last ``max(windows) + 1`` cumulative rows and
      the last ``max(windows)`` raw rows;
    - the run's first row (batch lag warm-up repeats it).

    Memory is O(max_window x k) regardless of stream length.  One state
    corresponds to one run / one container; never share it across
    series (that is what ``groups`` prevents in batch mode).
    """

    def __init__(self, n_columns: int, windows: tuple[int, ...]):
        self.t = 0
        max_window = max(windows) if windows else 1
        self.cumulative = np.zeros(n_columns)
        self._cum_ring = np.zeros((max_window + 2, n_columns))
        self._raw_ring = np.zeros((max_window + 1, n_columns))
        self._first: np.ndarray | None = None

    def cumulative_before(self, t: int) -> np.ndarray:
        """The cumulative row after tick ``t`` (must still be retained)."""
        return self._cum_ring[t % self._cum_ring.shape[0]]

    def raw_at(self, t: int) -> np.ndarray:
        """The raw source row of tick ``t`` (must still be retained)."""
        return self._raw_ring[t % self._raw_ring.shape[0]]

    @property
    def first_row(self) -> np.ndarray:
        if self._first is None:
            raise ValueError("State is empty; push a row first.")
        return self._first

    def window_extremes(self, t: int, x_value: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-column (min, max) over the trailing ``x_value + 1`` rows
        ending at tick ``t`` (warm-up shortened), for the same clamp the
        batch path applies to cumulative-difference averages."""
        count = min(x_value, t) + 1
        rows = np.stack([self.raw_at(t - i) for i in range(count)])
        return rows.min(axis=0), rows.max(axis=0)

    def push(self, source: np.ndarray) -> None:
        """Advance the state by one tick's source columns."""
        self.cumulative = self.cumulative + source
        self._cum_ring[self.t % self._cum_ring.shape[0]] = self.cumulative
        self._raw_ring[self.t % self._raw_ring.shape[0]] = source
        if self.t == 0:
            self._first = source.copy()
        self.t += 1


class TemporalFeatures:
    """Append ``X-AVG`` / ``X-LAG`` columns for each non-binary feature.

    Parameters
    ----------
    windows:
        The X values; the paper uses (1, 5, 15).
    include_binary:
        The paper's Table 4 contains averaged binary features
        (``C-CPU-VERYHIGH-AVG14``), so binary columns are included by
        default.
    """

    def __init__(self, windows: tuple[int, ...] = (1, 5, 15), include_binary: bool = True):
        if any(w < 1 for w in windows):
            raise ValueError("All windows must be >= 1.")
        self.windows = tuple(windows)
        self.include_binary = include_binary

    def fit(self, X: np.ndarray, meta: list[FeatureMeta], y=None) -> "TemporalFeatures":
        self.columns_ = [
            index
            for index, feature in enumerate(meta)
            if not feature.temporal and (self.include_binary or not feature.binary)
        ]
        self.n_features_in_ = len(meta)
        # Output meta is a pure function of the input meta; build it once
        # (per-tick online transforms would otherwise spend their time
        # constructing dataclasses).
        derived: list[FeatureMeta] = []
        for x_value in self.windows:
            for index in self.columns_:
                derived.append(meta[index].derived(f"-AVG{x_value}", temporal=True))
            for index in self.columns_:
                derived.append(
                    meta[index].derived(f"-LAGGED{x_value}", temporal=True)
                )
        self.derived_meta_ = derived
        return self

    def transform(
        self,
        X: np.ndarray,
        meta: list[FeatureMeta],
        groups: np.ndarray | None = None,
    ) -> tuple[np.ndarray, list[FeatureMeta]]:
        if not hasattr(self, "columns_"):
            raise RuntimeError("TemporalFeatures must be fitted first.")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} columns; step was fitted with "
                f"{self.n_features_in_}."
            )
        if not self.columns_:
            return X, list(meta)
        slices = _group_slices(groups, X.shape[0])
        source = X[:, self.columns_]
        # One (T, k) pass per window per run keeps this vectorized even
        # in per-tick online prediction (tiny T, many columns).
        blocks: list[np.ndarray] = []
        for x_value in self.windows:
            averaged = np.empty_like(source)
            shifted = np.empty_like(source)
            for run in slices:
                averaged[run] = _rolling_average_2d(source[run], x_value + 1)
                shifted[run] = _lagged_2d(source[run], x_value)
            blocks.append(averaged)
            blocks.append(shifted)
        return np.hstack([X, *blocks]), list(meta) + self.derived_meta_

    def fit_transform(self, X, meta, y=None, groups=None):
        return self.fit(X, meta, y).transform(X, meta, groups)

    def make_state(self) -> TemporalState:
        """A fresh rolling state for one streamed run / container."""
        if not hasattr(self, "columns_"):
            raise RuntimeError("TemporalFeatures must be fitted first.")
        return TemporalState(len(self.columns_), self.windows)

    def transform_tick(
        self, row: np.ndarray, state: TemporalState
    ) -> np.ndarray:
        """Streaming mode: one row -> row with AVG/LAG columns appended.

        Trailing averages are computed as cumulative-sum differences --
        the exact arithmetic of the batch path's ``np.cumsum`` -- and
        the warm-up prefix (shortened averages, first-row lags) follows
        the same rules, so stacked outputs are bitwise identical to
        :meth:`transform` over the same rows.
        """
        if not hasattr(self, "columns_"):
            raise RuntimeError("TemporalFeatures must be fitted first.")
        if row.shape != (self.n_features_in_,):
            raise ValueError(
                f"row has shape {row.shape}; step was fitted with "
                f"{self.n_features_in_} columns."
            )
        if not self.columns_:
            return row
        source = row[self.columns_]
        state.push(source)
        t = state.t - 1  # 0-based index of the row just pushed
        blocks = [row]
        for x_value in self.windows:
            if x_value == 0:
                averaged = source.copy()
            else:
                if t > x_value:
                    averaged = (
                        state.cumulative
                        - state.cumulative_before(t - x_value - 1)
                    ) / (x_value + 1)
                else:
                    averaged = state.cumulative / (t + 1)
                # The same window-extremes clamp as the batch path.
                lo, hi = state.window_extremes(t, x_value)
                averaged = np.clip(averaged, lo, hi)
            if x_value == 0:
                shifted = source.copy()
            elif t >= x_value:
                shifted = state.raw_at(t - x_value).copy()
            else:
                shifted = state.first_row.copy()
            blocks.append(averaged)
            blocks.append(shifted)
        return np.concatenate(blocks)
