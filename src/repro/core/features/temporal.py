"""Time-dependent feature variants (paper section 3.3.5).

For every feature the paper adds ``X-AVG`` (mean over the last X+1
samples, current included) and ``X-LAG`` (value X samples ago) for
``X in {1, 5, 15}``, embedding 15 seconds of context into each
one-second snapshot.  Table 4 names these ``...-AVG4`` /
``...-LAGGED15`` style; we render ``-AVGk`` and ``-LAGGEDk``.

Windows never cross run boundaries: pass ``groups`` (one id per sample,
contiguous per run) and each run is warmed up independently -- the
first samples of a run see shortened windows / zero lag, exactly what
an online agent observes right after a container starts.
"""

from __future__ import annotations

import numpy as np

from repro.core.features.meta import FeatureMeta

__all__ = ["TemporalFeatures", "rolling_average", "lagged"]


def _rolling_average_2d(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing mean along axis 0 of a (T, k) matrix, warm-up shortened."""
    n = values.shape[0]
    if window == 1 or n == 0:
        return values.copy()
    cumulative = np.cumsum(values, axis=0)
    index = np.arange(n)
    start = np.maximum(0, index - window + 1)
    before_start = np.where(
        (start > 0)[:, None], cumulative[start - 1], 0.0
    )
    return (cumulative - before_start) / (index - start + 1)[:, None]


def _lagged_2d(values: np.ndarray, lag: int) -> np.ndarray:
    """Shift along axis 0; warm-up repeats the first row."""
    n = values.shape[0]
    if lag == 0 or n == 0:
        return values.copy()
    result = np.empty_like(values)
    result[:lag] = values[0]
    result[lag:] = values[:-lag]
    return result


def rolling_average(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing mean over ``window`` samples with warm-up shortening."""
    values = np.asarray(values, dtype=np.float64)
    if window < 1:
        raise ValueError("window must be >= 1.")
    if values.size == 0:
        return values.copy()
    return _rolling_average_2d(values[:, None], window)[:, 0]


def lagged(values: np.ndarray, lag: int) -> np.ndarray:
    """Series shifted by ``lag`` samples; warm-up repeats the first value."""
    values = np.asarray(values, dtype=np.float64)
    if lag < 0:
        raise ValueError("lag must be non-negative.")
    if values.size == 0:
        return values.copy()
    return _lagged_2d(values[:, None], lag)[:, 0]


def _group_slices(groups: np.ndarray | None, n: int) -> list[slice]:
    if groups is None:
        return [slice(0, n)]
    groups = np.asarray(groups)
    if groups.shape[0] != n:
        raise ValueError("groups must align with X.")
    slices = []
    start = 0
    for t in range(1, n + 1):
        if t == n or groups[t] != groups[start]:
            slices.append(slice(start, t))
            start = t
    return slices


class TemporalFeatures:
    """Append ``X-AVG`` / ``X-LAG`` columns for each non-binary feature.

    Parameters
    ----------
    windows:
        The X values; the paper uses (1, 5, 15).
    include_binary:
        The paper's Table 4 contains averaged binary features
        (``C-CPU-VERYHIGH-AVG14``), so binary columns are included by
        default.
    """

    def __init__(self, windows: tuple[int, ...] = (1, 5, 15), include_binary: bool = True):
        if any(w < 1 for w in windows):
            raise ValueError("All windows must be >= 1.")
        self.windows = tuple(windows)
        self.include_binary = include_binary

    def fit(self, X: np.ndarray, meta: list[FeatureMeta], y=None) -> "TemporalFeatures":
        self.columns_ = [
            index
            for index, feature in enumerate(meta)
            if not feature.temporal and (self.include_binary or not feature.binary)
        ]
        self.n_features_in_ = len(meta)
        # Output meta is a pure function of the input meta; build it once
        # (per-tick online transforms would otherwise spend their time
        # constructing dataclasses).
        derived: list[FeatureMeta] = []
        for x_value in self.windows:
            for index in self.columns_:
                derived.append(meta[index].derived(f"-AVG{x_value}", temporal=True))
            for index in self.columns_:
                derived.append(
                    meta[index].derived(f"-LAGGED{x_value}", temporal=True)
                )
        self.derived_meta_ = derived
        return self

    def transform(
        self,
        X: np.ndarray,
        meta: list[FeatureMeta],
        groups: np.ndarray | None = None,
    ) -> tuple[np.ndarray, list[FeatureMeta]]:
        if not hasattr(self, "columns_"):
            raise RuntimeError("TemporalFeatures must be fitted first.")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} columns; step was fitted with "
                f"{self.n_features_in_}."
            )
        if not self.columns_:
            return X, list(meta)
        slices = _group_slices(groups, X.shape[0])
        source = X[:, self.columns_]
        # One (T, k) pass per window per run keeps this vectorized even
        # in per-tick online prediction (tiny T, many columns).
        blocks: list[np.ndarray] = []
        for x_value in self.windows:
            averaged = np.empty_like(source)
            shifted = np.empty_like(source)
            for run in slices:
                averaged[run] = _rolling_average_2d(source[run], x_value + 1)
                shifted[run] = _lagged_2d(source[run], x_value)
            blocks.append(averaged)
            blocks.append(shifted)
        return np.hstack([X, *blocks]), list(meta) + self.derived_meta_

    def fit_transform(self, X, meta, y=None, groups=None):
        return self.fit(X, meta, y).transform(X, meta, groups)
