"""Hot-encoded utilization-level features (paper section 3.3.1).

CPU and memory utilization are strong saturation indicators; the paper
augments each CPU/memory utilization metric (host and container) with
boolean level features:

- ``LOW``    utilization < 50%
- ``MEDIUM`` 50% <= utilization <= 80%
- ``HIGH``   utilization > 80%

and, for CPU only, additionally:

- ``VERYHIGH``  utilization > 90%
- ``EXTREME``   utilization > 95%

Host + container CPU (5 each) and host + container memory (3 each)
yield the paper's 16 additional binary features.  Table 4 shows the
paper also refers to EXTREME as ``SUPERHIGH``; we keep ``EXTREME``.
"""

from __future__ import annotations

import numpy as np

from repro.core.features.meta import Domain, FeatureMeta

__all__ = ["BinaryLevelFeatures", "CPU_LEVELS", "MEMORY_LEVELS"]

# (suffix, lower bound exclusive, upper bound inclusive); None = unbounded.
CPU_LEVELS: list[tuple[str, float | None, float | None]] = [
    ("LOW", None, 50.0),
    ("MEDIUM", 50.0, 80.0),
    ("HIGH", 80.0, None),
    ("VERYHIGH", 90.0, None),
    ("EXTREME", 95.0, None),
]
MEMORY_LEVELS: list[tuple[str, float | None, float | None]] = [
    ("LOW", None, 50.0),
    ("MEDIUM", 50.0, 80.0),
    ("HIGH", 80.0, None),
]


def _level_column(values: np.ndarray, low, high) -> np.ndarray:
    mask = np.ones_like(values, dtype=bool)
    if low is not None:
        mask &= values > low
    if high is not None:
        mask &= values <= high
    return mask.astype(np.float64)


class BinaryLevelFeatures:
    """Append level indicators for every CPU/memory utilization column.

    Stateless between fit and transform (thresholds are fixed by the
    paper), but follows the fit/transform protocol so the pipeline can
    treat all steps uniformly.
    """

    def fit(self, X: np.ndarray, meta: list[FeatureMeta], y=None) -> "BinaryLevelFeatures":
        self.input_meta_ = list(meta)
        self.source_columns_: list[tuple[int, list]] = []
        for index, feature in enumerate(meta):
            if not feature.utilization:
                continue
            if feature.domain == Domain.CPU:
                self.source_columns_.append((index, CPU_LEVELS))
            elif feature.domain == Domain.MEMORY:
                self.source_columns_.append((index, MEMORY_LEVELS))
        return self

    def transform(
        self, X: np.ndarray, meta: list[FeatureMeta]
    ) -> tuple[np.ndarray, list[FeatureMeta]]:
        if not hasattr(self, "source_columns_"):
            raise RuntimeError("BinaryLevelFeatures must be fitted first.")
        if X.shape[1] != len(self.input_meta_):
            raise ValueError(
                f"X has {X.shape[1]} columns; step was fitted with "
                f"{len(self.input_meta_)}."
            )
        new_columns: list[np.ndarray] = []
        new_meta: list[FeatureMeta] = []
        for index, levels in self.source_columns_:
            source = self.input_meta_[index]
            prefix = "C" if source.scope.value == "container" else "H"
            kind = "CPU" if source.domain == Domain.CPU else "MEM"
            for suffix, low, high in levels:
                new_columns.append(_level_column(X[:, index], low, high))
                new_meta.append(
                    FeatureMeta(
                        name=f"{prefix}-{kind}-{suffix}",
                        domain=source.domain,
                        scope=source.scope,
                        binary=True,
                    )
                )
        if not new_columns:
            return X, list(meta)
        return (
            np.column_stack([X, np.column_stack(new_columns)]),
            list(meta) + new_meta,
        )

    def fit_transform(self, X, meta, y=None):
        return self.fit(X, meta, y).transform(X, meta)

    def transform_tick(self, row: np.ndarray) -> np.ndarray:
        """Streaming mode: one raw row -> row with level columns appended.

        Thresholds are pure per-sample comparisons, so the output is
        bitwise identical to the matching row of :meth:`transform`.
        """
        if not hasattr(self, "source_columns_"):
            raise RuntimeError("BinaryLevelFeatures must be fitted first.")
        if row.shape != (len(self.input_meta_),):
            raise ValueError(
                f"row has shape {row.shape}; step was fitted with "
                f"{len(self.input_meta_)} columns."
            )
        if not self.source_columns_:
            return row
        levels = [
            1.0
            if (low is None or value > low) and (high is None or value <= high)
            else 0.0
            for index, columns in self.source_columns_
            for value in (row[index],)
            for _, low, high in columns
        ]
        return np.concatenate([row, levels])
