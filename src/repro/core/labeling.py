"""Ground-truth labeling of resource saturation (paper section 2.2).

A service driven by a linearly-increasing workload shows a KPI (e.g.
throughput) that rises proportionally until a saturation knee, after
which it flattens.  The paper finds that knee with the *Kneedle*
algorithm (Satopaa et al., 2011) applied to a Savitzky-Golay-smoothed
curve:

1. smooth ``f(alpha) = beta`` with a Savitzky-Golay filter;
2. normalize both axes to the unit square;
3. compute the difference curve ``beta_i - alpha_i``;
4. candidate knees are the local maxima of that curve; the chosen
   maximum's KPI value is the saturation threshold ``Upsilon``.

Samples with KPI above ``Upsilon`` are labeled saturated (1), the rest
non-saturated (0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import savgol_filter

__all__ = [
    "KneeResult",
    "kneedle",
    "KneedleLabeler",
    "MultiLevelLabeler",
    "savitzky_golay",
]


def savitzky_golay(
    values: np.ndarray, window_length: int = 11, polyorder: int = 3
) -> np.ndarray:
    """Savitzky-Golay smoothing with defensive window handling.

    The window is clipped to the series length (and forced odd), so
    short calibration runs do not crash the labeler.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("savitzky_golay expects a 1-D series.")
    n = values.size
    if n < 3:
        return values.copy()
    window = min(window_length, n if n % 2 == 1 else n - 1)
    if window % 2 == 0:
        window -= 1
    window = max(window, 3)
    order = min(polyorder, window - 1)
    return savgol_filter(values, window_length=window, polyorder=order)


def _normalize_unit(values: np.ndarray) -> np.ndarray:
    low, high = float(np.min(values)), float(np.max(values))
    if high == low:
        return np.zeros_like(values)
    return (values - low) / (high - low)


def _local_maxima(values: np.ndarray) -> np.ndarray:
    """Indices of strict-or-plateau local maxima of a 1-D series."""
    n = values.size
    if n < 3:
        return np.array([], dtype=np.int64)
    left = np.r_[True, values[1:] >= values[:-1]]
    right = np.r_[values[:-1] >= values[1:], True]
    interior = np.zeros(n, dtype=bool)
    interior[1:-1] = True
    candidates = left & right & interior
    # Collapse plateaus to their first index.
    indices = np.flatnonzero(candidates)
    if indices.size == 0:
        return indices
    keep = [indices[0]]
    for idx in indices[1:]:
        if idx != keep[-1] + 1 or values[idx] != values[keep[-1]]:
            keep.append(idx)
    return np.asarray(keep, dtype=np.int64)


@dataclass(frozen=True)
class KneeResult:
    """Outcome of one Kneedle run.

    Attributes
    ----------
    knee_index:
        Index of the chosen knee in the input arrays.
    knee_x, knee_y:
        Workload intensity and raw KPI value at the knee (``knee_y`` is
        the saturation threshold :math:`\\Upsilon`).
    smoothed:
        The Savitzky-Golay-smoothed KPI curve.
    difference:
        The normalized difference curve ``beta - alpha``.
    candidates:
        Indices of all local maxima of the difference curve.
    """

    knee_index: int
    knee_x: float
    knee_y: float
    smoothed: np.ndarray
    difference: np.ndarray
    candidates: np.ndarray


def kneedle(
    x: np.ndarray,
    y: np.ndarray,
    *,
    window_length: int = 11,
    polyorder: int = 3,
    concave_down: bool = False,
    choose: int | None = None,
) -> KneeResult:
    """Find the knee of a KPI-vs-workload curve.

    Parameters
    ----------
    x, y:
        Workload intensity and observed KPI.
    concave_down:
        Set when the curve has negative concavity; the paper flips
        both axes (``v <- max(v) - v``) and applies the same method.
    choose:
        The paper "manually chooses" among candidate local maxima; pass
        an index into ``result.candidates`` to override the default of
        taking the global maximum of the difference curve.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length.")
    if x.size < 5:
        raise ValueError("Need at least 5 points to locate a knee.")

    smoothed = savitzky_golay(y, window_length, polyorder)
    x_work = x.copy()
    y_work = smoothed.copy()
    if concave_down:
        x_work = np.max(x_work) - x_work
        y_work = np.max(y_work) - y_work

    alpha = _normalize_unit(x_work)
    beta = _normalize_unit(y_work)
    difference = beta - alpha

    candidates = _local_maxima(difference)
    if candidates.size == 0:
        # Degenerate (e.g. perfectly linear) curve: fall back to the
        # global maximum of the difference curve.
        knee_index = int(np.argmax(difference))
        candidates = np.asarray([knee_index], dtype=np.int64)
    if choose is not None:
        if not 0 <= choose < candidates.size:
            raise ValueError(
                f"choose={choose} out of range for {candidates.size} candidates."
            )
        knee_index = int(candidates[choose])
    else:
        knee_index = int(candidates[np.argmax(difference[candidates])])

    return KneeResult(
        knee_index=knee_index,
        knee_x=float(x[knee_index]),
        knee_y=float(smoothed[knee_index]),
        smoothed=smoothed,
        difference=difference,
        candidates=candidates,
    )


class KneedleLabeler:
    """Derive the saturation threshold from a linear-ramp calibration run
    and label arbitrary KPI series against it.

    This is the paper's :math:`\\tilde{\\mathcal{P}}_{\\mathcal{A}}`:
    ``label(t) = 1`` iff ``kpi(t) > Upsilon``.

    Parameters
    ----------
    window_length, polyorder:
        Savitzky-Golay settings (tunable per the paper; visual
        inspection recommended).
    concave_down:
        Whether the KPI decreases with load (e.g. availability) rather
        than increasing (e.g. throughput).
    margin:
        Relative slack applied to the knee value: a saturated system's
        throughput sits *at* capacity, i.e. essentially at the knee, so
        the decision threshold is placed ``margin`` below it (above it
        for concave-down KPIs) to keep capacity-pinned samples on the
        saturated side of the measurement noise.
    """

    def __init__(
        self,
        window_length: int = 11,
        polyorder: int = 3,
        concave_down: bool = False,
        margin: float = 0.02,
    ):
        if not 0.0 <= margin < 1.0:
            raise ValueError("margin must be in [0, 1).")
        self.window_length = window_length
        self.polyorder = polyorder
        self.concave_down = concave_down
        self.margin = margin
        self.threshold_: float | None = None
        self.knee_: KneeResult | None = None

    def fit(self, workload: np.ndarray, kpi: np.ndarray, *, choose=None) -> "KneedleLabeler":
        """Run Kneedle on a calibration ramp to obtain ``threshold_``."""
        self.knee_ = kneedle(
            workload,
            kpi,
            window_length=self.window_length,
            polyorder=self.polyorder,
            concave_down=self.concave_down,
            choose=choose,
        )
        factor = (1.0 + self.margin) if self.concave_down else (1.0 - self.margin)
        self.threshold_ = self.knee_.knee_y * factor
        return self

    def label(self, kpi: np.ndarray) -> np.ndarray:
        """Binary saturation labels for a KPI series (1 = saturated)."""
        if self.threshold_ is None:
            raise RuntimeError("KneedleLabeler must be fitted first.")
        kpi = np.asarray(kpi, dtype=np.float64)
        if self.concave_down:
            return (kpi < self.threshold_).astype(np.int64)
        return (kpi > self.threshold_).astype(np.int64)

    def fit_label(self, workload, kpi, *, choose=None) -> np.ndarray:
        """Fit on the run and label the same run."""
        return self.fit(workload, kpi, choose=choose).label(kpi)


class MultiLevelLabeler:
    """Multi-class saturation states (paper section 2.2's note that
    "one can also apply more complex state descriptions based on
    multiple classes").

    Splits the KPI range below the Kneedle threshold into graded
    levels: with ``levels=(0.7,)`` the classes are

    - 0 (*normal*):    kpi <= 0.7 * Upsilon
    - 1 (*warning*):   0.7 * Upsilon < kpi <= Upsilon
    - 2 (*saturated*): kpi > Upsilon

    Any strictly-increasing tuple of fractions in (0, 1) works; the
    number of classes is ``len(levels) + 2``.
    """

    def __init__(
        self,
        levels: tuple[float, ...] = (0.7,),
        window_length: int = 11,
        polyorder: int = 3,
        margin: float = 0.02,
    ):
        if not levels:
            raise ValueError("levels must contain at least one fraction.")
        if any(not 0.0 < level < 1.0 for level in levels):
            raise ValueError("levels must be fractions in (0, 1).")
        if list(levels) != sorted(set(levels)):
            raise ValueError("levels must be strictly increasing.")
        self.levels = tuple(levels)
        self._binary = KneedleLabeler(
            window_length=window_length, polyorder=polyorder, margin=margin
        )
        self.boundaries_: np.ndarray | None = None

    @property
    def n_classes(self) -> int:
        return len(self.levels) + 2

    def fit(self, workload: np.ndarray, kpi: np.ndarray) -> "MultiLevelLabeler":
        """Calibrate the saturation threshold and the graded boundaries."""
        self._binary.fit(workload, kpi)
        upsilon = self._binary.threshold_
        self.boundaries_ = np.asarray(
            [fraction * upsilon for fraction in self.levels] + [upsilon]
        )
        return self

    @property
    def threshold_(self) -> float:
        if self.boundaries_ is None:
            raise RuntimeError("MultiLevelLabeler must be fitted first.")
        return float(self.boundaries_[-1])

    def label(self, kpi: np.ndarray) -> np.ndarray:
        """Class index per sample: 0 = normal ... n-1 = saturated."""
        if self.boundaries_ is None:
            raise RuntimeError("MultiLevelLabeler must be fitted first.")
        kpi = np.asarray(kpi, dtype=np.float64)
        return np.searchsorted(self.boundaries_, kpi, side="left").astype(
            np.int64
        )

    def to_binary(self, labels: np.ndarray) -> np.ndarray:
        """Collapse graded labels back to the paper's binary task."""
        labels = np.asarray(labels)
        return (labels >= self.n_classes - 1).astype(np.int64)
