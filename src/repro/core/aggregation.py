"""Application-level aggregation of per-instance predictions (section 4).

Monitorless predicts saturation per service instance; the application
verdict for scaling is the logical OR over all instances:

    y_hat(A, t) = OR over I in S, S in A of y_hat(I, t)

OR is appropriate for scaling (a saturated component should be scaled
even if end-to-end latency has not degraded yet) but generates more
false positives as the number of services grows -- the Sockshop
experiment (section 4.2.3) motivates alternative aggregators, provided
here for ablation: majority vote and k-of-n.
"""

from __future__ import annotations

import numpy as np

__all__ = ["aggregate_or", "aggregate_majority", "aggregate_k_of_n", "stack_predictions"]


def stack_predictions(per_instance: dict[str, np.ndarray] | list[np.ndarray]) -> np.ndarray:
    """Stack per-instance 0/1 series into an (n_instances, n_samples) array."""
    series = (
        list(per_instance.values())
        if isinstance(per_instance, dict)
        else list(per_instance)
    )
    if not series:
        raise ValueError("Need at least one instance prediction series.")
    arrays = [np.asarray(s).ravel().astype(np.int64) for s in series]
    lengths = {a.shape[0] for a in arrays}
    if len(lengths) != 1:
        raise ValueError(f"Instance series have mismatched lengths: {sorted(lengths)}.")
    return np.vstack(arrays)


def aggregate_or(per_instance) -> np.ndarray:
    """Application is saturated iff any instance is (the paper's rule)."""
    stacked = stack_predictions(per_instance)
    return stacked.max(axis=0)


def aggregate_majority(per_instance) -> np.ndarray:
    """Application is saturated iff more than half the instances are."""
    stacked = stack_predictions(per_instance)
    return (stacked.sum(axis=0) * 2 > stacked.shape[0]).astype(np.int64)


def aggregate_k_of_n(per_instance, k: int) -> np.ndarray:
    """Application is saturated iff at least ``k`` instances are."""
    if k < 1:
        raise ValueError("k must be >= 1.")
    stacked = stack_predictions(per_instance)
    return (stacked.sum(axis=0) >= k).astype(np.int64)
