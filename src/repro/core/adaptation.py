"""Domain adaptation for unseen applications (paper section 5,
"Calibration").

Monitorless may face applications whose resource-usage patterns differ
substantially from the training services.  The paper proposes
experimenting with *unsupervised* domain adaptation -- no labels exist
in the target domain.  Two standard techniques are provided:

- :class:`CoralAligner` -- CORrelation ALignment (Sun et al., 2016):
  whiten the source feature covariance and re-color it with the target
  covariance, so the classifier trains on features whose second-order
  statistics match the deployment domain.
- :class:`ImportanceWeighter` -- covariate-shift correction: estimate
  ``p_target(x) / p_source(x)`` with a logistic domain discriminator
  and re-train the classifier with those weights, emphasising training
  samples that look like the target domain.

Both operate on *engineered* features (post-pipeline) and need only
unlabeled target-domain samples, which any deployment produces for
free.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, check_array, check_is_fitted
from repro.ml.linear import LogisticRegression

__all__ = ["CoralAligner", "ImportanceWeighter"]


def _regularized_covariance(X: np.ndarray, eps: float) -> np.ndarray:
    centered = X - X.mean(axis=0)
    denominator = max(X.shape[0] - 1, 1)
    return centered.T @ centered / denominator + eps * np.eye(X.shape[1])


def _matrix_power(matrix: np.ndarray, power: float) -> np.ndarray:
    """Symmetric PSD matrix power via eigendecomposition."""
    eigenvalues, eigenvectors = np.linalg.eigh(matrix)
    eigenvalues = np.maximum(eigenvalues, 1e-12)
    return (eigenvectors * eigenvalues**power) @ eigenvectors.T


class CoralAligner(BaseEstimator):
    """CORAL: align source second-order statistics to the target's.

    ``fit(source, target)`` learns the whitening/re-coloring transform
    ``A = C_s^{-1/2} C_t^{1/2}``; ``transform`` maps source-domain
    features into the target domain.  Train the classifier on
    ``transform(X_source)`` and predict on raw target features.
    """

    def __init__(self, eps: float = 1e-3):
        if eps <= 0:
            raise ValueError("eps must be positive.")
        self.eps = eps

    def fit(self, X_source, X_target) -> "CoralAligner":
        X_source = check_array(X_source)
        X_target = check_array(X_target)
        if X_source.shape[1] != X_target.shape[1]:
            raise ValueError("Source and target must share the feature space.")
        source_cov = _regularized_covariance(X_source, self.eps)
        target_cov = _regularized_covariance(X_target, self.eps)
        self.transform_ = _matrix_power(source_cov, -0.5) @ _matrix_power(
            target_cov, 0.5
        )
        self.source_mean_ = X_source.mean(axis=0)
        self.target_mean_ = X_target.mean(axis=0)
        return self

    def transform(self, X) -> np.ndarray:
        """Map source-domain samples into the target domain."""
        check_is_fitted(self, "transform_")
        X = check_array(X)
        return (X - self.source_mean_) @ self.transform_ + self.target_mean_

    def fit_transform(self, X_source, X_target) -> np.ndarray:
        return self.fit(X_source, X_target).transform(X_source)

    def alignment_distance(self, X_source, X_target) -> float:
        """Frobenius distance between domain covariances (diagnostic).

        Large values indicate a domain gap worth adapting for; after
        ``transform`` the distance should shrink substantially.
        """
        source_cov = _regularized_covariance(check_array(X_source), self.eps)
        target_cov = _regularized_covariance(check_array(X_target), self.eps)
        return float(np.linalg.norm(source_cov - target_cov, ord="fro"))


class ImportanceWeighter(BaseEstimator):
    """Covariate-shift sample weights from a domain discriminator.

    A logistic regression is trained to distinguish source (label 0)
    from target (label 1) samples; the density ratio
    ``p_t(x)/p_s(x) = p(target|x) / (1 - p(target|x)) * n_s/n_t``
    becomes a per-sample training weight, clipped to
    ``[1/max_weight, max_weight]`` for stability.
    """

    def __init__(self, max_weight: float = 10.0, max_iter: int = 30,
                 random_state=0):
        if max_weight <= 1.0:
            raise ValueError("max_weight must exceed 1.")
        self.max_weight = max_weight
        self.max_iter = max_iter
        self.random_state = random_state

    def fit(self, X_source, X_target) -> "ImportanceWeighter":
        X_source = check_array(X_source)
        X_target = check_array(X_target)
        if X_source.shape[1] != X_target.shape[1]:
            raise ValueError("Source and target must share the feature space.")
        X = np.vstack([X_source, X_target])
        domain = np.concatenate(
            [np.zeros(len(X_source)), np.ones(len(X_target))]
        )
        # Standardize for the linear discriminator's benefit.
        self.center_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        # Strong regularisation: the discriminator should only pick up
        # systematic domain shift, not sampling noise (which would turn
        # into spurious weight spread).
        self.discriminator_ = LogisticRegression(
            C=0.05, max_iter=self.max_iter, random_state=self.random_state
        )
        self.discriminator_.fit((X - self.center_) / self.scale_, domain)
        self.ratio_correction_ = len(X_source) / max(len(X_target), 1)
        return self

    def weights(self, X_source) -> np.ndarray:
        """Importance weights for the given source samples."""
        check_is_fitted(self, "discriminator_")
        X_source = check_array(X_source)
        probability = self.discriminator_.predict_proba(
            (X_source - self.center_) / self.scale_
        )[:, 1]
        probability = np.clip(probability, 1e-6, 1 - 1e-6)
        ratio = probability / (1.0 - probability) * self.ratio_correction_
        ratio = np.clip(ratio, 1.0 / self.max_weight, self.max_weight)
        # Normalise to mean 1 so the effective training size is unchanged.
        return ratio / ratio.mean()

    def domain_separability(self, X_source, X_target) -> float:
        """Discriminator accuracy on held-in data (diagnostic).

        ~0.5 means the domains are indistinguishable (no shift);
        ~1.0 means a severe domain gap.
        """
        check_is_fitted(self, "discriminator_")
        X = np.vstack([check_array(X_source), check_array(X_target)])
        domain = np.concatenate(
            [np.zeros(len(X_source)), np.ones(len(X_target))]
        )
        predictions = self.discriminator_.predict(
            (X - self.center_) / self.scale_
        )
        return float(np.mean(predictions == domain))
