"""Lag-tolerant evaluation metrics (paper section 4, "Metrics").

Saturated applications answer slowly, so platform metrics and the
ground-truth KPI labels drift apart by a second or two.  The paper
therefore scores with *lagged* confusion counts at distance ``k``:

- a raw false positive at time ``t`` counts as a true negative
  (``TN_k``) if a ground-truth "saturated" sample occurs within
  ``[t+1, t+k]`` -- the early warning was correct, just early;
- a raw false negative at time ``t`` counts as a true positive
  (``TP_k``) if a positive *prediction* occurred within ``[t-k, t-1]``
  -- the saturation was flagged, just earlier than the label;
- a *late* prediction (after the client already observed saturation)
  stays incorrect.

The paper uses ``k=2`` (bounded by its 3-second peak response times)
and reports ``F1_2`` and ``Acc_2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LaggedConfusion", "lagged_confusion", "f1_lagged", "accuracy_lagged"]


@dataclass(frozen=True)
class LaggedConfusion:
    """Lag-tolerant confusion counts and derived scores."""

    tn: int
    fp: int
    fn: int
    tp: int
    k: int

    @property
    def f1(self) -> float:
        """Sorensen-Dice coefficient ``2TP / (2TP + FP + FN)``."""
        denominator = 2 * self.tp + self.fp + self.fn
        return 2 * self.tp / denominator if denominator else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tn + self.fp + self.fn + self.tp
        return (self.tp + self.tn) / total if total else 0.0

    @property
    def precision(self) -> float:
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    def as_row(self) -> dict[str, float]:
        """Row in the shape of the paper's Tables 5/6/8."""
        return {
            f"TN_{self.k}": self.tn,
            f"FP_{self.k}": self.fp,
            f"FN_{self.k}": self.fn,
            f"TP_{self.k}": self.tp,
            f"F1_{self.k}": round(self.f1, 3),
            f"Acc_{self.k}": round(self.accuracy, 3),
        }


def lagged_confusion(y_true, y_pred, k: int = 2) -> LaggedConfusion:
    """Compute ``TN_k / FP_k / FN_k / TP_k`` for binary label series.

    ``y_true`` and ``y_pred`` must be time-ordered 0/1 arrays sampled at
    the same interval.  ``k=0`` degenerates to the ordinary confusion
    counts.
    """
    y_true = np.asarray(y_true).ravel().astype(np.int64)
    y_pred = np.asarray(y_pred).ravel().astype(np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same length.")
    if k < 0:
        raise ValueError("k must be non-negative.")
    invalid = set(np.unique(np.concatenate([y_true, y_pred]))) - {0, 1}
    if invalid:
        raise ValueError(f"Labels must be binary 0/1; found {sorted(invalid)}.")

    n = y_true.size
    truth = y_true.astype(bool)
    predicted = y_pred.astype(bool)

    # saturation_ahead[t]: any ground-truth saturation in [t+1, t+k].
    # prediction_behind[t]: any positive prediction in [t-k, t-1].
    saturation_ahead = np.zeros(n, dtype=bool)
    prediction_behind = np.zeros(n, dtype=bool)
    for offset in range(1, k + 1):
        if offset < n:
            saturation_ahead[:-offset] |= truth[offset:]
            prediction_behind[offset:] |= predicted[:-offset]

    raw_fp = ~truth & predicted
    raw_fn = truth & ~predicted
    forgiven_fp = raw_fp & saturation_ahead  # early warning -> TN_k
    forgiven_fn = raw_fn & prediction_behind  # early detection -> TP_k

    tp = int(np.sum(truth & predicted)) + int(np.sum(forgiven_fn))
    tn = int(np.sum(~truth & ~predicted)) + int(np.sum(forgiven_fp))
    fp = int(np.sum(raw_fp)) - int(np.sum(forgiven_fp))
    fn = int(np.sum(raw_fn)) - int(np.sum(forgiven_fn))
    return LaggedConfusion(tn=tn, fp=fp, fn=fn, tp=tp, k=k)


def f1_lagged(y_true, y_pred, k: int = 2) -> float:
    """Convenience wrapper returning only :math:`F1_k`."""
    return lagged_confusion(y_true, y_pred, k).f1


def accuracy_lagged(y_true, y_pred, k: int = 2) -> float:
    """Convenience wrapper returning only :math:`Acc_k`."""
    return lagged_confusion(y_true, y_pred, k).accuracy
