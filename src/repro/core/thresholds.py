"""Optimally-tuned static-threshold baselines (paper section 4).

The paper compares monitorless against four baselines built from
relative CPU and memory utilization of each service instance:

- ``CPU``          instance saturated iff cpu >= theta_cpu
- ``MEM``          instance saturated iff mem >= theta_mem
- ``CPU-OR-MEM``   cpu >= theta_cpu or mem >= theta_mem
- ``CPU-AND-MEM``  cpu >= theta_cpu and mem >= theta_mem

Instance verdicts aggregate to the application with logical OR.  The
baselines are given an *unfair* advantage: thresholds are tuned
a-posteriori on the full evaluation data (including ground truth) to
maximize the lagged F1 -- they represent the best possible static rule.

Following the paper, the combined detectors reuse the *individually*
optimal CPU and MEM thresholds (Tables 5/6/8 annotate thresholds only
on the CPU and MEM rows; the OR combination inherits MEM's behaviour
-- which is exactly why CPU-OR-MEM collapses together with MEM on
TeaStore and Sockshop).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.aggregation import aggregate_or
from repro.core.evaluation import LaggedConfusion, lagged_confusion

__all__ = ["ThresholdBaseline", "tune_threshold_baseline", "BASELINE_KINDS"]

BASELINE_KINDS = ("cpu", "mem", "cpu-or-mem", "cpu-and-mem")


@dataclass(frozen=True)
class ThresholdBaseline:
    """A tuned static-threshold saturation detector.

    ``cpu_threshold`` / ``mem_threshold`` are percentages in [0, 100];
    whichever the ``kind`` does not use is ``None``.
    """

    kind: str
    cpu_threshold: float | None
    mem_threshold: float | None

    def predict_instance(
        self, cpu_util: np.ndarray, mem_util: np.ndarray
    ) -> np.ndarray:
        """Per-instance 0/1 saturation series from utilization series."""
        cpu_util = np.asarray(cpu_util, dtype=np.float64)
        mem_util = np.asarray(mem_util, dtype=np.float64)
        if self.kind == "cpu":
            return (cpu_util >= self.cpu_threshold).astype(np.int64)
        if self.kind == "mem":
            return (mem_util >= self.mem_threshold).astype(np.int64)
        cpu_hit = cpu_util >= self.cpu_threshold
        mem_hit = mem_util >= self.mem_threshold
        if self.kind == "cpu-or-mem":
            return (cpu_hit | mem_hit).astype(np.int64)
        if self.kind == "cpu-and-mem":
            return (cpu_hit & mem_hit).astype(np.int64)
        raise ValueError(f"Unknown baseline kind: {self.kind!r}")

    def predict_application(
        self, utilizations: list[tuple[np.ndarray, np.ndarray]]
    ) -> np.ndarray:
        """OR-aggregate over a list of (cpu_util, mem_util) instance pairs."""
        return aggregate_or(
            [self.predict_instance(cpu, mem) for cpu, mem in utilizations]
        )

    def label(self) -> str:
        """Row label in the style of the paper's tables, e.g. ``CPU (97%)``."""
        if self.kind == "cpu":
            return f"CPU ({self.cpu_threshold:.0f}%)"
        if self.kind == "mem":
            return f"MEM ({self.mem_threshold:.0f}%)"
        return self.kind.upper()


def _candidate_thresholds(step: float) -> np.ndarray:
    return np.arange(step, 100.0 + step / 2, step)


def tune_threshold_baseline(
    kind: str,
    utilizations: list[tuple[np.ndarray, np.ndarray]],
    y_true: np.ndarray,
    *,
    k: int = 2,
    step: float = 1.0,
) -> tuple[ThresholdBaseline, LaggedConfusion]:
    """Find the threshold(s) maximizing :math:`F1_k` on the given data.

    Single-threshold baselines scan [step, 100]; ties break toward
    higher thresholds (fewer positives), mirroring how an operator
    would configure a rule.  The combined ``cpu-or-mem`` /
    ``cpu-and-mem`` detectors reuse the individually-optimal CPU and
    MEM thresholds, as the paper does.
    """
    if kind not in BASELINE_KINDS:
        raise ValueError(f"kind must be one of {BASELINE_KINDS}.")
    y_true = np.asarray(y_true).ravel()
    candidates = _candidate_thresholds(step)

    def evaluate(baseline: ThresholdBaseline) -> LaggedConfusion:
        return lagged_confusion(
            y_true, baseline.predict_application(utilizations), k
        )

    def tune_single(single_kind: str) -> ThresholdBaseline:
        best_score = -1.0
        best_theta = candidates[-1]
        for theta in candidates:
            candidate = ThresholdBaseline(
                kind=single_kind,
                cpu_threshold=theta if single_kind == "cpu" else None,
                mem_threshold=theta if single_kind == "mem" else None,
            )
            score = evaluate(candidate).f1
            if score >= best_score:
                best_score = score
                best_theta = theta
        return ThresholdBaseline(
            kind=single_kind,
            cpu_threshold=best_theta if single_kind == "cpu" else None,
            mem_threshold=best_theta if single_kind == "mem" else None,
        )

    if kind in ("cpu", "mem"):
        best = tune_single(kind)
    else:
        cpu_best = tune_single("cpu")
        mem_best = tune_single("mem")
        best = ThresholdBaseline(
            kind=kind,
            cpu_threshold=cpu_best.cpu_threshold,
            mem_threshold=mem_best.mem_threshold,
        )
    return best, evaluate(best)
