"""Training datasets (Table 1) and evaluation scenarios (section 4).

- :mod:`repro.datasets.configs` -- the 25 training-run configurations
  of the paper's Table 1 (service, cgroup limits, parallel partner,
  traffic pattern, intended bottleneck).
- :mod:`repro.datasets.generate` -- simulate the runs, discover each
  run's saturation threshold with a calibration ramp (Kneedle), label
  the samples and assemble the training corpus.
- :mod:`repro.datasets.experiments` -- the three evaluation scenarios:
  Elgg three-tier (Table 5), the TeaStore/Sockshop multi-tenant
  deployment (Tables 6-8, Figure 3).
- :mod:`repro.datasets.interference` -- neighbour-caused degradation
  corpora (victim at constant sub-knee load vs a co-located antagonist)
  and the solo->interference transfer evaluation.
"""

from repro.datasets.configs import TABLE1_RUNS, RunConfig, sessions
from repro.datasets.generate import (
    LabeledRun,
    TrainingCorpus,
    build_training_corpus,
    generate_session,
)
from repro.datasets.interference import (
    INTERFERENCE_SCENARIOS,
    InterferenceCorpus,
    InterferenceRun,
    InterferenceScenario,
    build_interference_corpus,
    transfer_eval,
)

__all__ = [
    "RunConfig",
    "TABLE1_RUNS",
    "sessions",
    "LabeledRun",
    "TrainingCorpus",
    "generate_session",
    "build_training_corpus",
    "InterferenceScenario",
    "InterferenceRun",
    "InterferenceCorpus",
    "INTERFERENCE_SCENARIOS",
    "build_interference_corpus",
    "transfer_eval",
]
