"""Training-corpus generation: simulate, calibrate, label, assemble.

For every session (a Table-1 run, or a pair of runs executing in
parallel for interference):

1. **Calibrate**: each run executes alone under a linearly-increasing
   load; Kneedle on the observed throughput yields the saturation
   threshold :math:`\\Upsilon` (paper section 2.2).
2. **Simulate**: the session's applications run together on the
   training host under their Table-1 traffic patterns.
3. **Label**: every second is labeled saturated iff the run's
   application throughput KPI exceeds :math:`\\Upsilon` (section 2.3);
   a small observation noise models real measurement jitter.
4. **Collect**: the telemetry agent produces each container's
   ``M_{I,t}`` rows; rows carry their run id as the CV group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.node import MACHINES
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.core.features.meta import FeatureMeta
from repro.core.labeling import KneedleLabeler
from repro.datasets.configs import TABLE1_RUNS, RunConfig, sessions
from repro.parallel import parallel_map
from repro.telemetry.agent import TelemetryAgent
from repro.telemetry.catalog import MetricCatalog, default_catalog
from repro.workloads.patterns import linear_ramp

__all__ = [
    "LabeledRun",
    "TrainingCorpus",
    "calibrate_threshold",
    "calibration_cache_info",
    "clear_calibration_cache",
    "generate_session",
    "build_training_corpus",
]

_KPI_NOISE = 0.01  # 1% relative observation noise on the throughput KPI


@dataclass
class LabeledRun:
    """One run's labeled samples."""

    config: RunConfig
    X: np.ndarray  # (T, n_metrics) platform-metric samples
    y: np.ndarray  # (T,) saturation labels
    threshold: float  # the discovered Upsilon
    throughput: np.ndarray  # the KPI used for labeling
    observed_bottleneck: str  # modal bottleneck among saturated ticks

    @property
    def saturated_fraction(self) -> float:
        return float(self.y.mean())


@dataclass
class TrainingCorpus:
    """The assembled corpus: samples, labels, CV groups, column meta."""

    X: np.ndarray
    y: np.ndarray
    groups: np.ndarray  # run id per row
    meta: list[FeatureMeta]
    runs: list[LabeledRun]

    @property
    def saturated_fraction(self) -> float:
        return float(self.y.mean())

    def summary(self) -> list[dict]:
        """Per-run digest (run id, samples, saturation, bottleneck)."""
        return [
            {
                "run": run.config.run_id,
                "service": run.config.service,
                "traffic": run.config.traffic,
                "samples": int(run.y.size),
                "saturated": round(run.saturated_fraction, 3),
                "intended_bottleneck": run.config.bottleneck,
                "observed_bottleneck": run.observed_bottleneck,
            }
            for run in self.runs
        ]


def _placement(config: RunConfig, node: str) -> Placement:
    return Placement(
        node=node, cpu_limit=config.cpu_limit, memory_limit=config.mem_limit
    )


# The calibration ramp is a pure function of the fields below -- the
# run id, traffic pattern and intended-bottleneck label play no part in
# it -- so repeated sessions reusing an app/limit combination (e.g.
# Table-1 runs 3 and 4) and repeated corpus builds in one process skip
# the expensive doubling-ramp simulations entirely.  Per-run observation
# noise is applied *after* the cache, so thresholds are bitwise
# identical with and without a cache hit.
_RAMP_CACHE: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
_RAMP_CACHE_STATS = {"hits": 0, "misses": 0}


def _ramp_cache_key(config: RunConfig, duration: int, node: str, seed: int):
    return (
        config.service,
        config.demand_scale,
        config.mix,
        config.io_heavy,
        config.fsync_bound,
        config.cpu_limit,
        config.mem_limit,
        config.rate_low,
        config.rate_high,
        duration,
        node,
        seed,
    )


def calibration_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the in-process calibration-ramp cache."""
    return {**_RAMP_CACHE_STATS, "size": len(_RAMP_CACHE)}


def clear_calibration_cache() -> None:
    """Drop every cached calibration ramp (and reset the counters)."""
    _RAMP_CACHE.clear()
    _RAMP_CACHE_STATS.update(hits=0, misses=0)


def _calibration_ramp(
    config: RunConfig, duration: int, node: str, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """The noise-free calibration ramp and its observed throughput."""
    key = _ramp_cache_key(config, duration, node, seed)
    cached = _RAMP_CACHE.get(key)
    if cached is not None:
        _RAMP_CACHE_STATS["hits"] += 1
        return cached
    _RAMP_CACHE_STATS["misses"] += 1

    def ramp_run(low: float, high: float) -> tuple[np.ndarray, np.ndarray]:
        simulation = ClusterSimulation({node: MACHINES[node]}, seed=seed)
        application = config.application()
        simulation.deploy(
            application,
            {name: [_placement(config, node)] for name in application.services},
        )
        ramp = linear_ramp(duration, low, high)
        result = simulation.run({application.name: ramp})
        return ramp, result.kpi(application.name, "throughput")

    # Phase 1: find the capacity region, doubling the ramp top until the
    # KPI visibly flattens.
    high = config.rate_high * 1.3
    low = max(config.rate_low * 0.1, 1.0)
    for _ in range(6):
        ramp, throughput = ramp_run(low, high)
        if throughput[-1] < 0.9 * ramp[-1]:
            break
        high *= 2.0

    # Phase 2: re-ramp to ~1.6x the estimated capacity so the knee sits
    # well inside the run and is sampled densely.
    capacity_estimate = float(np.max(throughput))
    ramp, throughput = ramp_run(
        max(capacity_estimate * 0.05, 1.0), capacity_estimate * 1.6
    )
    # Cached arrays are shared across callers; freeze them so a caller
    # mutating its "own" ramp cannot silently corrupt later sessions.
    ramp.setflags(write=False)
    throughput.setflags(write=False)
    _RAMP_CACHE[key] = (ramp, throughput)
    return ramp, throughput


def calibrate_threshold(
    config: RunConfig,
    *,
    duration: int = 300,
    node: str = "training",
    seed: int = 0,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Discover the run's saturation threshold with a linear ramp.

    Returns ``(threshold, ramp_load, observed_throughput)``.

    If the configured ramp never reaches saturation (throughput still
    tracks the offered load at the ramp's top), the ramp is extended --
    doubled up to five times -- until a knee appears, mirroring how an
    operator keeps increasing the calibration load until the KPI
    flattens (section 2.2).
    """
    rng = np.random.default_rng(seed + config.run_id)
    ramp, throughput = _calibration_ramp(config, duration, node, seed)
    observed = throughput * (1.0 + rng.normal(0.0, _KPI_NOISE, throughput.size))
    labeler = KneedleLabeler(window_length=21).fit(ramp, observed)
    return float(labeler.threshold_), ramp, observed


def generate_session(
    session: tuple[RunConfig, ...],
    *,
    duration: int = 600,
    calibration_duration: int = 300,
    node: str = "training",
    seed: int = 0,
    agent: TelemetryAgent | None = None,
) -> list[LabeledRun]:
    """Simulate one session and return each run's labeled samples."""
    agent = agent or TelemetryAgent(seed=seed)

    thresholds = {
        config.run_id: calibrate_threshold(
            config,
            duration=calibration_duration,
            node=node,
            seed=seed,
        )[0]
        for config in session
    }

    simulation = ClusterSimulation({node: MACHINES[node]}, seed=seed)
    workloads = {}
    applications = {}
    for config in session:
        application = config.application()
        # Two Cassandra runs in one session would collide on the app name;
        # suffix with the run id to keep deployments distinct.
        application.name = f"{application.name}-{config.run_id}"
        applications[config.run_id] = application
        simulation.deploy(
            application,
            {name: [_placement(config, node)] for name in application.services},
        )
        workloads[application.name] = config.workload(duration, seed=seed)
    result = simulation.run(workloads)

    rng = np.random.default_rng(seed + 1000)
    labeled: list[LabeledRun] = []
    for config in session:
        application = applications[config.run_id]
        throughput = result.kpi(application.name, "throughput")
        observed = throughput * (
            1.0 + rng.normal(0.0, _KPI_NOISE, throughput.size)
        )
        y = (observed > thresholds[config.run_id]).astype(np.int64)
        containers = [
            c for c in result.containers if c.application == application.name
        ]
        X = np.vstack(
            [agent.instance_matrix(c, result.nodes) for c in containers]
        )
        y_full = np.tile(y, len(containers))
        saturated_bottlenecks = [
            tick.bottleneck
            for container in containers
            for tick, label in zip(container.history, y)
            if label == 1
        ]
        # When a run never saturates (interference partners at constant
        # sub-knee load), the limiting factor is still the modal
        # highest-utilization resource across the run.
        all_bottlenecks = saturated_bottlenecks or [
            tick.bottleneck for container in containers for tick in container.history
        ]
        values, counts = np.unique(all_bottlenecks, return_counts=True)
        modal = str(values[np.argmax(counts)])
        labeled.append(
            LabeledRun(
                config=config,
                X=X,
                y=y_full,
                threshold=thresholds[config.run_id],
                throughput=observed,
                observed_bottleneck=modal,
            )
        )
    return labeled


def _generate_session_task(task, arrays) -> list[LabeledRun]:
    """Simulate/calibrate/label one session; runs in-process or in a
    pool worker.

    The telemetry agent is rebuilt per call from ``(catalog, seed)``;
    its metric streams are keyed by node/container name and seed, never
    by call order, so a per-worker agent emits the same rows the shared
    serial agent would.
    """
    session, duration, calibration_duration, seed, catalog = task
    agent = TelemetryAgent(catalog=catalog, seed=seed)
    return generate_session(
        session,
        duration=duration,
        calibration_duration=calibration_duration,
        seed=seed,
        agent=agent,
    )


def build_training_corpus(
    *,
    duration: int = 600,
    calibration_duration: int = 300,
    seed: int = 0,
    runs: list[RunConfig] | None = None,
    interference_scenarios: list | None = None,
    catalog: MetricCatalog | None = None,
    n_jobs: int | None = None,
) -> TrainingCorpus:
    """Generate the full Table-1 corpus (all sessions).

    ``n_jobs`` simulates sessions in parallel worker processes.  Each
    session draws only from RNGs keyed by the corpus seed (workload
    noise, KPI noise, metric synthesis), so the corpus is bitwise
    identical at every ``n_jobs``.

    ``interference_scenarios`` opt-in mixes neighbour-contention
    samples (see :mod:`repro.datasets.interference`) into the corpus:
    each scenario's victim rows join ``X``/``y`` with the *scenario id*
    as their CV group (ids 101+ never collide with Table-1 run ids).
    ``runs=[]`` with scenarios builds a pure-interference corpus -- the
    shape the drift-triggered retrainer uses.
    """
    catalog = catalog or default_catalog()
    tasks = [
        (session, duration, calibration_duration, seed, catalog)
        for session in sessions(runs if runs is not None else TABLE1_RUNS)
    ]
    all_runs: list[LabeledRun] = []
    for labeled in parallel_map(
        _generate_session_task, tasks, n_jobs=n_jobs, chunk_size=1
    ):
        all_runs.extend(labeled)
    parts_X = [run.X for run in all_runs]
    parts_y = [run.y for run in all_runs]
    parts_groups = [
        np.full(run.y.size, run.config.run_id) for run in all_runs
    ]
    if interference_scenarios:
        # Imported lazily: interference.py itself imports the
        # calibration machinery from this module.
        from repro.datasets.interference import build_interference_corpus

        contention = build_interference_corpus(
            duration=duration,
            calibration_duration=calibration_duration,
            seed=seed,
            scenarios=list(interference_scenarios),
            catalog=catalog,
            n_jobs=n_jobs,
        )
        parts_X.append(contention.X)
        parts_y.append(contention.y)
        parts_groups.append(contention.groups)
    if not parts_X:
        raise ValueError(
            "build_training_corpus needs at least one run or "
            "interference scenario."
        )
    return TrainingCorpus(
        X=np.vstack(parts_X),
        y=np.concatenate(parts_y),
        groups=np.concatenate(parts_groups),
        meta=catalog.feature_meta(),
        runs=all_runs,
    )
