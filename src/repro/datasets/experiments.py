"""The paper's evaluation scenarios (section 4).

Three applications never seen in training:

- **Elgg three-tier** (section 4.1, Table 5): Elgg front-end + InnoDB +
  Memcache on one training-class host; the front-end has 1 core / 4 GB
  and receives ``sinnoise1000`` scaled to one tenth.
- **Multi-tenant TeaStore + Sockshop** (section 4.2, Tables 6-8,
  Figure 3): both storefronts distributed over the M1/M2/M3 trio,
  TeaStore driven by the bursty multi-daily-pattern trace, Sockshop by
  three staggered Locust ramps.

Each scenario provides ground-truth labels (application KPI against a
Kneedle-calibrated threshold), per-instance utilization series for the
threshold baselines, and per-instance metric matrices for monitorless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.base import ApplicationModel
from repro.apps.elgg import elgg_application
from repro.apps.sockshop import sockshop_application
from repro.apps.teastore import teastore_application
from repro.cluster.node import MACHINES, NodeSpec
from repro.cluster.resources import GIB
from repro.cluster.simulation import ClusterSimulation, Placement, SimulationResult
from repro.core.aggregation import aggregate_or
from repro.core.evaluation import LaggedConfusion, lagged_confusion
from repro.core.labeling import KneedleLabeler
from repro.core.model import MonitorlessModel
from repro.core.thresholds import BASELINE_KINDS, tune_threshold_baseline
from repro.telemetry.agent import TelemetryAgent
from repro.workloads.locust import staggered_locust_runs
from repro.workloads.patterns import linear_ramp, sinnoise
from repro.workloads.traces import teastore_trace

__all__ = [
    "Scenario",
    "elgg_scenario",
    "multitenant_scenario",
    "sockshop_windows",
    "calibrate_application",
    "evaluate_detectors",
    "DetectorComparison",
]

_KPI_NOISE = 0.01


# ----------------------------------------------------------------------
# Placements
# ----------------------------------------------------------------------
def elgg_placements() -> dict[str, list[Placement]]:
    """Elgg deployment: all three tiers on one host, front-end limited."""
    return {
        "elgg-web": [Placement(node="host", cpu_limit=1.0, memory_limit=4 * GIB)],
        "innodb": [Placement(node="host", memory_limit=8 * GIB)],
        "memcache": [Placement(node="host", memory_limit=4 * GIB)],
    }


def teastore_placements() -> dict[str, list[Placement]]:
    """TeaStore over M1/M2/M3 (section 4.2.1); Auth gets 2 cores."""
    gib4 = 4 * GIB

    def place(node, cores=1.0):
        return [Placement(node=node, cpu_limit=cores, memory_limit=gib4)]

    return {
        "recommender": place("M1"),
        "auth": place("M1", 2.0),
        "registry": place("M1"),
        "db": place("M2"),
        "persistence": place("M2"),
        "webui": place("M3"),
        "imageprovider": place("M3"),
    }


def sockshop_placements() -> dict[str, list[Placement]]:
    """Sockshop over M1/M2/M3; the *-DB services get 2 cores."""
    gib4 = 4 * GIB

    def place(node, cores=1.0):
        return [Placement(node=node, cpu_limit=cores, memory_limit=gib4)]

    return {
        "catalogue": place("M1"),
        "catalogue-db": place("M1", 2.0),
        "front-end": place("M1"),
        "queue": place("M1"),
        "edge-router": place("M2"),
        "carts": place("M2"),
        "carts-db": place("M2", 2.0),
        "orders": place("M2"),
        "orders-db": place("M2", 2.0),
        "payment": place("M2"),
        "queue-master": place("M2"),
        "user": place("M3"),
        "user-db": place("M3", 2.0),
        "shipping": place("M3"),
    }


def evaluation_nodes() -> dict[str, NodeSpec]:
    """The M1/M2/M3 trio."""
    return {name: MACHINES[name] for name in ("M1", "M2", "M3")}


# ----------------------------------------------------------------------
# Threshold calibration for whole applications
# ----------------------------------------------------------------------
def calibrate_application(
    application_factory,
    placements: dict[str, list[Placement]],
    nodes: dict[str, NodeSpec],
    *,
    duration: int = 400,
    start_rate: float = 1.0,
    max_rate: float = 2000.0,
    seed: int = 0,
) -> float:
    """Kneedle threshold from a linear-ramp run of the app in isolation.

    Extends the ramp (doubling, up to five times) until the throughput
    KPI flattens, as an operator would.
    """
    high = max_rate

    def ramp_run(high_rate):
        simulation = ClusterSimulation(dict(nodes), seed=seed)
        application = application_factory()
        simulation.deploy(application, placements)
        ramp = linear_ramp(duration, start_rate, high_rate)
        result = simulation.run({application.name: ramp})
        return ramp, result.kpi(application.name, "throughput")

    for _ in range(6):
        ramp, throughput = ramp_run(high)
        if throughput[-1] < 0.9 * ramp[-1]:
            break
        high *= 2.0
    capacity = float(np.max(throughput))
    ramp, throughput = ramp_run(capacity * 1.6)
    rng = np.random.default_rng(seed)
    observed = throughput * (1.0 + rng.normal(0.0, _KPI_NOISE, throughput.size))
    labeler = KneedleLabeler(window_length=21).fit(ramp, observed)
    return float(labeler.threshold_)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
@dataclass
class Scenario:
    """A finished evaluation run for one application."""

    application: ApplicationModel
    result: SimulationResult
    workload: np.ndarray
    y_true: np.ndarray  # app-level ground truth (thr KPI vs Upsilon)
    threshold: float
    agent: TelemetryAgent

    def containers(self):
        return [
            c
            for c in self.result.containers
            if c.application == self.application.name
        ]

    def utilizations(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """(cpu%, mem%) per container, for the threshold baselines."""
        return [
            self.agent.utilization_series(c, self.result.nodes)
            for c in self.containers()
        ]

    def instance_predictions(
        self, model: MonitorlessModel
    ) -> dict[str, np.ndarray]:
        """Per-container monitorless prediction series.

        Cached per model instance: several benches (Tables 6/8,
        Figure 3) score the same scenario with the same model.
        """
        cache = getattr(self, "_prediction_cache", None)
        if cache is None:
            cache = {}
            self._prediction_cache = cache
        key = id(model)
        if key not in cache:
            meta = self.agent.catalog.feature_meta()
            predictions = {}
            for container in self.containers():
                matrix = self.agent.instance_matrix(container, self.result.nodes)
                predictions[container.name] = model.predict(matrix, meta)
            cache[key] = predictions
        return {name: series.copy() for name, series in cache[key].items()}


def _ground_truth(
    result: SimulationResult, app_name: str, threshold: float, seed: int
) -> np.ndarray:
    throughput = result.kpi(app_name, "throughput")
    rng = np.random.default_rng(seed + 99)
    observed = throughput * (1.0 + rng.normal(0.0, _KPI_NOISE, throughput.size))
    return (observed > threshold).astype(np.int64)


def elgg_scenario(
    *, duration: int = 2450, seed: int = 0, agent: TelemetryAgent | None = None
) -> Scenario:
    """The Table-5 experiment: Elgg under sinnoise1000 / 10."""
    nodes = {"host": MACHINES["training"]}
    placements = elgg_placements()
    threshold = calibrate_application(
        elgg_application, placements, nodes, max_rate=150.0, seed=seed
    )
    simulation = ClusterSimulation(nodes, seed=seed)
    application = elgg_application()
    simulation.deploy(application, placements)
    workload = sinnoise(duration, 1.0, 100.0, seed=seed + 5)
    result = simulation.run({application.name: workload})
    agent = agent or TelemetryAgent(seed=seed)
    y_true = _ground_truth(result, application.name, threshold, seed)
    return Scenario(
        application=application,
        result=result,
        workload=workload,
        y_true=y_true,
        threshold=threshold,
        agent=agent,
    )


def multitenant_scenario(
    *,
    duration: int = 7000,
    seed: int = 0,
    agent: TelemetryAgent | None = None,
) -> tuple[Scenario, Scenario]:
    """The section-4.2 deployment: TeaStore + Sockshop on M1/M2/M3.

    Returns ``(teastore_scenario, sockshop_scenario)`` sharing one
    simulation run (each sees the other as interference).
    """
    nodes = evaluation_nodes()
    tea_threshold = calibrate_application(
        teastore_application, teastore_placements(), nodes,
        max_rate=1000.0, seed=seed,
    )
    sock_threshold = calibrate_application(
        sockshop_application, sockshop_placements(), nodes,
        max_rate=1200.0, seed=seed,
    )

    simulation = ClusterSimulation(nodes, seed=seed)
    teastore = teastore_application()
    sockshop = sockshop_application()
    simulation.deploy(teastore, teastore_placements())
    simulation.deploy(sockshop, sockshop_placements())

    tea_load = teastore_trace(duration=duration, seed=seed + 7)
    sock_load = staggered_locust_runs(
        total_duration=duration,
        starts=tuple(int(duration * f) for f in (1 / 7, 3 / 7, 5 / 7)),
        run_duration=duration // 7,
        hatch_seconds=int(duration // 7 * 0.7),
    )
    result = simulation.run({"teastore": tea_load, "sockshop": sock_load})
    agent = agent or TelemetryAgent(seed=seed)

    tea = Scenario(
        application=teastore,
        result=result,
        workload=tea_load,
        y_true=_ground_truth(result, "teastore", tea_threshold, seed),
        threshold=tea_threshold,
        agent=agent,
    )
    sock = Scenario(
        application=sockshop,
        result=result,
        workload=sock_load,
        y_true=_ground_truth(result, "sockshop", sock_threshold, seed + 1),
        threshold=sock_threshold,
        agent=agent,
    )
    return tea, sock


def sockshop_windows(duration: int) -> np.ndarray:
    """Sample indices of the three active Locust windows (Table 8).

    The paper scores Sockshop only over the three 999-sample runs
    (2997 samples total); everything between runs is idle.
    """
    run = duration // 7
    starts = [int(duration * f) for f in (1 / 7, 3 / 7, 5 / 7)]
    indices = np.concatenate(
        [np.arange(start + 1, start + run) for start in starts]
    )
    return indices[indices < duration]


# ----------------------------------------------------------------------
# Detector comparison (Tables 5 / 6 / 8)
# ----------------------------------------------------------------------
@dataclass
class DetectorComparison:
    """All detectors' lagged confusions on one scenario."""

    rows: dict[str, LaggedConfusion]
    labels: dict[str, str]  # detector -> printable label (with thresholds)
    predictions: dict[str, np.ndarray]  # detector -> app-level series

    def table(self) -> list[dict]:
        """Rows in the shape of the paper's Tables 5/6/8."""
        out = []
        for detector, confusion in self.rows.items():
            row = {"algorithm": self.labels[detector]}
            row.update(confusion.as_row())
            out.append(row)
        return out


def evaluate_detectors(
    scenario: Scenario,
    model: MonitorlessModel,
    *,
    k: int = 2,
    window: np.ndarray | None = None,
) -> DetectorComparison:
    """Score monitorless and the four tuned baselines on a scenario.

    ``window`` restricts scoring to a subset of sample indices (the
    Sockshop evaluation windows); baselines are tuned on the same
    restricted samples, preserving their a-posteriori advantage.
    """
    y_true = scenario.y_true
    utilizations = scenario.utilizations()
    per_instance = scenario.instance_predictions(model)
    monitorless_series = aggregate_or(per_instance)

    if window is not None:
        y_true = y_true[window]
        utilizations = [(cpu[window], mem[window]) for cpu, mem in utilizations]
        monitorless_series = monitorless_series[window]

    rows: dict[str, LaggedConfusion] = {}
    labels: dict[str, str] = {}
    predictions: dict[str, np.ndarray] = {}
    for kind in BASELINE_KINDS:
        baseline, confusion = tune_threshold_baseline(
            kind, utilizations, y_true, k=k
        )
        rows[kind] = confusion
        labels[kind] = baseline.label()
        predictions[kind] = baseline.predict_application(utilizations)
    rows["monitorless"] = lagged_confusion(y_true, monitorless_series, k)
    labels["monitorless"] = "monitorless"
    predictions["monitorless"] = monitorless_series
    return DetectorComparison(rows=rows, labels=labels, predictions=predictions)
