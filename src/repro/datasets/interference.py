"""Neighbour-caused degradation corpora and the solo->interference
transfer evaluation.

The Table-1 training corpus saturates each application with *its own*
load.  In production the same symptoms -- throttling, queueing, missed
throughput -- often come from a noisy neighbour on the shared node
instead.  This module builds corpora where a victim runs at a constant
sub-knee rate while a co-located antagonist (:mod:`repro.apps.antagonist`)
switches on mid-run and squeezes one shared resource, so every degraded
second is attributable to the *neighbour* rather than to self-load.

Labels carry the distinction explicitly: ``y`` is the binary degraded
flag (the victim failed to deliver its constant offered rate) and
``cause`` records *why* -- :data:`CAUSE_SELF` when the victim alone is
past its knee, :data:`CAUSE_NEIGHBOR` when an antagonist is active,
:data:`CAUSE_NONE` for clean seconds.

:func:`transfer_eval` then answers the paper-style question: does a
model trained purely on solo-tenant saturation recognise degradation it
has never seen -- the kind caused by somebody else's load?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.antagonist import ANTAGONIST_RATE, antagonist_application
from repro.cluster.node import MACHINES
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.core.features.meta import FeatureMeta
from repro.datasets.configs import RunConfig, run_by_id
from repro.datasets.generate import calibrate_threshold
from repro.parallel import parallel_map
from repro.telemetry.agent import TelemetryAgent
from repro.telemetry.catalog import MetricCatalog, default_catalog
from repro.workloads.patterns import constant

__all__ = [
    "CAUSE_NONE",
    "CAUSE_SELF",
    "CAUSE_NEIGHBOR",
    "InterferenceScenario",
    "InterferenceRun",
    "InterferenceCorpus",
    "INTERFERENCE_SCENARIOS",
    "generate_interference_run",
    "build_interference_corpus",
    "transfer_eval",
]

#: Per-second cause labels.
CAUSE_NONE = 0  # the victim delivered its offered load
CAUSE_SELF = 1  # degraded with no antagonist active (own overload)
CAUSE_NEIGHBOR = 2  # degraded while a co-located antagonist is active

_KPI_NOISE = 0.01  # same 1% observation jitter as the training corpus
_DEGRADED_MARGIN = 0.9  # observed < 90% of offered => degraded second


@dataclass(frozen=True)
class InterferenceScenario:
    """One victim/antagonist colocation experiment.

    ``victim_load`` is a fraction of the victim's calibrated saturation
    threshold (its solo knee): below 1.0 the victim is healthy on its
    own, so any degradation after ``onset`` is the neighbour's doing;
    above 1.0 the victim overloads *itself* (a self-saturation control
    with ``antagonist=None``).  Scenarios without an antagonist and
    ``victim_load < 1`` are clean solo controls for the false-alarm
    baseline.
    """

    scenario_id: int
    victim_run: int  # Table-1 run id providing the victim config
    antagonist: str | None  # "cpu" | "membw" | "disk" | None
    node: str = "M3"
    victim_load: float = 0.6  # fraction of the calibrated knee
    antagonist_rate: float = ANTAGONIST_RATE
    onset: float = 0.4  # fraction of the run when the antagonist starts
    intensity: float = 1.0

    @property
    def label(self) -> str:
        suffix = self.antagonist or "solo"
        return (
            f"#{self.scenario_id} run{self.victim_run}"
            f"@{self.victim_load:g} vs {suffix} on {self.node}"
        )


#: The default scenario set: one antagonist per contention channel
#: against a matched victim, plus solo controls (false-alarm baseline)
#: and one self-saturation control (cause disambiguation).
INTERFERENCE_SCENARIOS: list[InterferenceScenario] = [
    InterferenceScenario(101, 2, "cpu"),  # Solr vs CPU hog -> steal
    InterferenceScenario(102, 7, "membw"),  # Memcache vs DRAM burner
    InterferenceScenario(103, 14, "disk"),  # Cassandra IO vs disk hammer
    InterferenceScenario(104, 12, "cpu"),  # Cassandra vs CPU hog
    InterferenceScenario(111, 2, None),  # solo controls
    InterferenceScenario(112, 7, None),
    InterferenceScenario(121, 2, None, victim_load=1.4),  # self-overload
]


@dataclass
class InterferenceRun:
    """One scenario's labeled victim samples."""

    scenario: InterferenceScenario
    X: np.ndarray  # (T * replicas, n_metrics) victim samples
    y: np.ndarray  # (T * replicas,) degraded flags
    cause: np.ndarray  # (T * replicas,) CAUSE_* per sample
    offered: float  # the constant offered rate (requests/s)
    threshold: float  # the victim's calibrated solo knee
    throughput: np.ndarray  # observed victim KPI (one per tick)
    onset_tick: int  # first tick with the antagonist active

    @property
    def degraded_fraction(self) -> float:
        return float(self.y.mean())


@dataclass
class InterferenceCorpus:
    """The assembled corpus: samples, labels, causes, groups, meta."""

    X: np.ndarray
    y: np.ndarray
    cause: np.ndarray
    groups: np.ndarray  # scenario id per row
    meta: list[FeatureMeta]
    runs: list[InterferenceRun]

    def summary(self) -> list[dict]:
        """Per-scenario digest."""
        return [
            {
                "scenario": run.scenario.scenario_id,
                "victim_run": run.scenario.victim_run,
                "antagonist": run.scenario.antagonist,
                "node": run.scenario.node,
                "victim_load": run.scenario.victim_load,
                "samples": int(run.y.size),
                "degraded": round(run.degraded_fraction, 3),
                "neighbor_caused": round(
                    float((run.cause == CAUSE_NEIGHBOR).mean()), 3
                ),
            }
            for run in self.runs
        ]


def _victim_placement(config: RunConfig, node: str) -> Placement:
    return Placement(
        node=node, cpu_limit=config.cpu_limit, memory_limit=config.mem_limit
    )


def generate_interference_run(
    scenario: InterferenceScenario,
    *,
    duration: int = 600,
    calibration_duration: int = 300,
    seed: int = 0,
    agent: TelemetryAgent | None = None,
) -> InterferenceRun:
    """Simulate one colocation scenario and label the victim's seconds.

    The victim's knee is calibrated solo on the scenario node (same
    cache and noise discipline as the training corpus), then the victim
    runs at ``victim_load`` times that knee while the antagonist -- if
    any -- switches from idle to ``antagonist_rate`` at the onset tick.
    A second is degraded iff the observed victim throughput falls below
    ``0.9x`` the constant offered rate.
    """
    agent = agent or TelemetryAgent(seed=seed)
    victim = run_by_id(scenario.victim_run)
    threshold, _, _ = calibrate_threshold(
        victim, duration=calibration_duration, node=scenario.node, seed=seed
    )
    offered = scenario.victim_load * threshold
    onset_tick = int(round(scenario.onset * duration))

    simulation = ClusterSimulation(
        {scenario.node: MACHINES[scenario.node]}, seed=seed
    )
    application = victim.application()
    application.name = f"{application.name}-{victim.run_id}"
    simulation.deploy(
        application,
        {
            name: [_victim_placement(victim, scenario.node)]
            for name in application.services
        },
    )
    workloads = {application.name: constant(duration, offered)}
    if scenario.antagonist is not None:
        antagonist = antagonist_application(
            scenario.antagonist, scenario.intensity
        )
        simulation.deploy(
            antagonist,
            {
                name: [Placement(node=scenario.node)]
                for name in antagonist.services
            },
        )
        # Idle until onset, then a constant hammering rate.  Zero-rate
        # ticks generate no antagonist work, so the pre-onset window is
        # a true solo baseline on the very same node.
        schedule = np.zeros(duration)
        schedule[onset_tick:] = scenario.antagonist_rate
        workloads[antagonist.name] = schedule
    result = simulation.run(workloads)

    rng = np.random.default_rng(seed + 7000 + scenario.scenario_id)
    throughput = result.kpi(application.name, "throughput")
    observed = throughput * (
        1.0 + rng.normal(0.0, _KPI_NOISE, throughput.size)
    )
    degraded = observed < _DEGRADED_MARGIN * offered
    active = np.zeros(duration, dtype=bool)
    if scenario.antagonist is not None:
        active[onset_tick:] = True
    cause = np.where(
        degraded,
        np.where(active, CAUSE_NEIGHBOR, CAUSE_SELF),
        CAUSE_NONE,
    ).astype(np.int64)

    containers = [
        c for c in result.containers if c.application == application.name
    ]
    X = np.vstack(
        [agent.instance_matrix(c, result.nodes) for c in containers]
    )
    replicas = len(containers)
    return InterferenceRun(
        scenario=scenario,
        X=X,
        y=np.tile(degraded.astype(np.int64), replicas),
        cause=np.tile(cause, replicas),
        offered=float(offered),
        threshold=float(threshold),
        throughput=observed,
        onset_tick=onset_tick,
    )


def _generate_run_task(task, arrays) -> InterferenceRun:
    """One scenario; runs in-process or in a pool worker.

    Like the training-corpus task, the telemetry agent is rebuilt per
    call from ``(catalog, seed)`` and all randomness is keyed by the
    corpus seed and scenario id, never by call order -- so the corpus
    is bitwise identical at every ``n_jobs``.
    """
    scenario, duration, calibration_duration, seed, catalog = task
    agent = TelemetryAgent(catalog=catalog, seed=seed)
    return generate_interference_run(
        scenario,
        duration=duration,
        calibration_duration=calibration_duration,
        seed=seed,
        agent=agent,
    )


def build_interference_corpus(
    *,
    duration: int = 600,
    calibration_duration: int = 300,
    seed: int = 0,
    scenarios: list[InterferenceScenario] | None = None,
    catalog: MetricCatalog | None = None,
    n_jobs: int | None = None,
) -> InterferenceCorpus:
    """Generate the interference corpus (all scenarios)."""
    catalog = catalog or default_catalog()
    if scenarios is None:
        scenarios = INTERFERENCE_SCENARIOS
    tasks = [
        (scenario, duration, calibration_duration, seed, catalog)
        for scenario in scenarios
    ]
    runs = list(
        parallel_map(_generate_run_task, tasks, n_jobs=n_jobs, chunk_size=1)
    )
    X = np.vstack([run.X for run in runs])
    y = np.concatenate([run.y for run in runs])
    cause = np.concatenate([run.cause for run in runs])
    groups = np.concatenate(
        [np.full(run.y.size, run.scenario.scenario_id) for run in runs]
    )
    return InterferenceCorpus(
        X=X,
        y=y,
        cause=cause,
        groups=groups,
        meta=catalog.feature_meta(),
        runs=runs,
    )


def _mean(predictions: np.ndarray, mask: np.ndarray) -> float | None:
    if not mask.any():
        return None
    return float(predictions[mask].mean())


def transfer_eval(model, corpus: InterferenceCorpus) -> dict:
    """Score a solo-trained model on the interference corpus.

    - ``interference_recall``: fraction of neighbour-caused degraded
      seconds the model flags -- the transfer question proper.
    - ``self_recall``: recall on self-overload seconds (the training
      distribution; a sanity ceiling for the transfer number).
    - ``false_alarm_interference`` vs ``false_alarm_solo``: positive
      rate on *clean* seconds of antagonist scenarios vs solo-control
      scenarios; their difference is the false-alarm delta an operator
      would pay for colocation.
    """
    predictions = np.asarray(
        model.predict(corpus.X, corpus.meta, corpus.groups)
    )
    has_antagonist = np.isin(
        corpus.groups,
        [
            run.scenario.scenario_id
            for run in corpus.runs
            if run.scenario.antagonist is not None
        ],
    )
    clean = corpus.y == 0
    fa_interference = _mean(predictions, clean & has_antagonist)
    fa_solo = _mean(predictions, clean & ~has_antagonist)
    delta = (
        fa_interference - fa_solo
        if fa_interference is not None and fa_solo is not None
        else None
    )
    per_scenario = []
    for run in corpus.runs:
        mask = corpus.groups == run.scenario.scenario_id
        per_scenario.append(
            {
                "scenario": run.scenario.scenario_id,
                "label": run.scenario.label,
                "recall_neighbor": _mean(
                    predictions, mask & (corpus.cause == CAUSE_NEIGHBOR)
                ),
                "recall_self": _mean(
                    predictions, mask & (corpus.cause == CAUSE_SELF)
                ),
                "false_alarms": _mean(predictions, mask & clean),
            }
        )
    return {
        "samples": int(predictions.size),
        "interference_recall": _mean(
            predictions, corpus.cause == CAUSE_NEIGHBOR
        ),
        "self_recall": _mean(predictions, corpus.cause == CAUSE_SELF),
        "false_alarm_interference": fa_interference,
        "false_alarm_solo": fa_solo,
        "false_alarm_delta": delta,
        "per_scenario": per_scenario,
    }
