"""The 25 training-run configurations of the paper's Table 1.

Each run names a service, its cgroup limits, an optional parallel
partner (interference), a traffic pattern and the resource bottleneck
the configuration is meant to exercise.  Traffic ranges follow the
paper; where the simulator's demand calibration needs a per-run CPU
scale to land on the intended bottleneck (the paper achieved the same
by varying query classes and JVM sizing), the ``demand_scale`` field
records it explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.cassandra import cassandra_application
from repro.apps.memcache import memcache_application
from repro.apps.solr import solr_application
from repro.cluster.resources import GIB
from repro.workloads.patterns import constant, linear_ramp, sine, sinnoise
from repro.workloads.ycsb import YCSB_MIXES, YcsbWorkload

__all__ = ["RunConfig", "TABLE1_RUNS", "sessions"]


@dataclass(frozen=True)
class RunConfig:
    """One Table-1 row."""

    run_id: int
    service: str  # "solr" | "memcache" | "cassandra"
    cpu_limit: float | None
    mem_limit: float | None  # bytes
    parallel_with: int | None
    traffic: str  # human-readable descriptor, as printed in Table 1
    bottleneck: str  # intended bottleneck, as printed in Table 1
    pattern: str = "sweep"  # sweep | sin | sinnoise | constant
    rate_low: float = 1.0
    rate_high: float = 1000.0
    mix: str | None = None  # YCSB mix for Cassandra
    demand_scale: float = 1.0
    io_heavy: bool = False
    fsync_bound: bool = False

    def application(self):
        """Instantiate this run's application model."""
        if self.service == "solr":
            return solr_application(self.demand_scale)
        if self.service == "memcache":
            return memcache_application(self.demand_scale)
        if self.service == "cassandra":
            return cassandra_application(
                self.mix or "B",
                demand_scale=self.demand_scale,
                io_heavy=self.io_heavy,
                fsync_bound=self.fsync_bound,
            )
        raise ValueError(f"Unknown service {self.service!r}.")

    def workload(self, duration: int, seed: int = 0) -> np.ndarray:
        """The run's load series (requests/second)."""
        if self.pattern == "sin":
            return sine(duration, self.rate_low, self.rate_high)
        if self.pattern == "sinnoise":
            return sinnoise(
                duration, self.rate_low, self.rate_high, seed=seed + self.run_id
            )
        if self.pattern == "constant":
            return constant(duration, self.rate_high)
        if self.pattern == "sweep":
            return YcsbWorkload(
                mix=YCSB_MIXES[self.mix] if self.mix else YCSB_MIXES["B"],
                duration=duration,
                rate_range=(self.rate_low, self.rate_high),
            ).generate()
        raise ValueError(f"Unknown pattern {self.pattern!r}.")

    def calibration_ramp(self, duration: int) -> np.ndarray:
        """Linear ramp past the traffic range for threshold discovery."""
        return linear_ramp(duration, max(self.rate_low * 0.1, 1.0),
                           self.rate_high * 1.3)

    @property
    def label(self) -> str:
        limits = (
            f"{self.cpu_limit or '-'}/"
            f"{f'{self.mem_limit / GIB:.0f}GB' if self.mem_limit else '-'}"
        )
        return f"#{self.run_id} {self.service} {limits} {self.traffic}"


def _solr(run_id, cpu, mem, par, traffic, bottleneck, pattern, scale=1.0):
    return RunConfig(
        run_id=run_id, service="solr", cpu_limit=cpu, mem_limit=mem,
        parallel_with=par, traffic=traffic, bottleneck=bottleneck,
        pattern=pattern, rate_low=1.0, rate_high=1000.0, demand_scale=scale,
    )


def _memc(run_id, cpu, mem, par, low, high, bottleneck, scale=1.0):
    return RunConfig(
        run_id=run_id, service="memcache", cpu_limit=cpu, mem_limit=mem,
        parallel_with=par, traffic=f"{low / 1e3:.0f}K-{high / 1e3:.0f}K R/s",
        bottleneck=bottleneck, pattern="sweep", rate_low=low, rate_high=high,
        demand_scale=scale,
    )


def _cass(run_id, cpu, mem, par, mix, low, high, bottleneck, *, scale=1.0,
          io_heavy=False, fsync=False, pattern="sweep"):
    def fmt(rate):
        return f"{rate / 1e3:.0f}K" if rate >= 1e3 else f"{rate:.0f}"

    return RunConfig(
        run_id=run_id, service="cassandra", cpu_limit=cpu, mem_limit=mem,
        parallel_with=par, traffic=f"{mix}: {fmt(low)}-{fmt(high)} R/s",
        bottleneck=bottleneck, pattern=pattern, rate_low=low, rate_high=high,
        mix=mix, demand_scale=scale, io_heavy=io_heavy, fsync_bound=fsync,
    )


#: The Table-1 inventory.  ``demand_scale`` notes (simulator calibration):
#: runs 3-5 use lighter Solr queries so the 8 GB memory limit (not CPU)
#: binds, matching the paper's IO-Bandwidth label; the 6-core Cassandra
#: runs behave as if per-op CPU cost were roughly halved (smaller JVM),
#: matching the paper's traffic ranges for Container-CPU saturation.
TABLE1_RUNS: list[RunConfig] = [
    _solr(1, 3.0, None, None, "sin1000", "Container-CPU", "sin"),
    _solr(2, None, None, None, "sin1000", "Host-CPU", "sin"),
    _solr(3, None, 8 * GIB, 18, "sinnoise1000", "IO-Bandwidth", "sinnoise", 0.5),
    _solr(4, None, 8 * GIB, 19, "sinnoise1000", "IO-Bandwidth", "sinnoise", 0.5),
    _solr(5, 3.0, 8 * GIB, 20, "sinnoise1000", "IO-Bandwidth", "sinnoise", 0.05),
    _solr(6, 1.5, 8 * GIB, 22, "sinnoise1000", "Container-CPU", "sinnoise"),
    _memc(7, None, None, None, 2e3, 50e3, "Mem-Bandwidth"),
    # Run 8: per-op CPU is higher under the 1-core quota (no batching
    # headroom), so the quota -- not memory bandwidth -- binds.
    _memc(8, 1.0, None, None, 20e3, 85e3, "Container-CPU", scale=1.6),
    _memc(9, None, 8 * GIB, None, 30e3, 52e3, "IO-Queue"),
    _memc(10, None, 4 * GIB, 23, 10e3, 65e3, "IO-Queue"),
    _cass(11, None, None, None, "A", 30e3, 100e3, "Network-Util"),
    _cass(12, None, None, None, "B", 20e3, 70e3, "Host-CPU"),
    _cass(13, None, None, None, "D", 40e3, 90e3, "Network-Util"),
    _cass(14, 20.0, 30 * GIB, None, "A", 300, 1200, "IO-Bandwidth", io_heavy=True),
    _cass(15, 20.0, 30 * GIB, None, "B", 100, 900, "IO-Bandwidth", io_heavy=True),
    _cass(16, 20.0, 30 * GIB, None, "B", 700, 1000, "IO-Bandwidth", io_heavy=True),
    _cass(17, 20.0, 30 * GIB, None, "B", 100, 1000, "IO-Bandwidth", io_heavy=True),
    _cass(18, 6.0, None, 3, "A", 15e3, 25e3, "Container-CPU", scale=0.5),
    _cass(19, 6.0, None, 4, "B", 10e3, 15e3, "Container-CPU", scale=0.55),
    _cass(20, 6.0, None, 5, "D", 10e3, 25e3, "Container-CPU"),
    _cass(21, 6.0, None, None, "A", 5e3, 20e3, "Container-CPU", scale=0.5),
    _cass(22, 6.0, None, 6, "B", 5e3, 20e3, "Container-CPU", scale=0.55),
    _cass(23, 6.0, None, 10, "B", 10e3, 10e3, "Container-CPU",
          scale=0.55, pattern="constant"),
    _cass(24, 1.0, None, None, "F", 200, 200, "IO-Wait", fsync=True,
          pattern="constant"),
    _cass(25, 1.0, None, None, "F", 20, 20, "IO-Wait", fsync=True,
          pattern="constant"),
]

_BY_ID = {run.run_id: run for run in TABLE1_RUNS}


def run_by_id(run_id: int) -> RunConfig:
    """Look up one Table-1 run."""
    return _BY_ID[run_id]


def sessions(runs: list[RunConfig] | None = None) -> list[tuple[RunConfig, ...]]:
    """Group runs into simulation sessions.

    Runs marked as parallel (the ``Par`` column) execute together on
    the training host to produce interference; each pair forms one
    session, every other run executes alone.
    """
    runs = list(TABLE1_RUNS) if runs is None else list(runs)
    by_id = {run.run_id: run for run in runs}
    paired: set[int] = set()
    grouped: list[tuple[RunConfig, ...]] = []
    for run in runs:
        if run.run_id in paired:
            continue
        partner_id = run.parallel_with
        if partner_id is not None and partner_id in by_id and partner_id not in paired:
            grouped.append((run, by_id[partner_id]))
            paired.update({run.run_id, partner_id})
        else:
            grouped.append((run,))
            paired.add(run.run_id)
    return grouped
