"""Runtime observability: metrics registry, span tracing, exporters.

Zero-dependency instrumentation for the repro runtime itself -- the
streaming pipeline, the closed-loop orchestrator, forest fit/predict,
the process pool, telemetry emission, and fault injection all record
through this module (the paper infers *application* health from cheap
platform signals; this layer gives the reproduction's own runtime the
same courtesy).

Everything is **disabled by default** and the disabled path is a single
attribute check per hook, so instrumented hot loops pay near-zero
overhead until someone opts in (``benchmarks/bench_obs.py`` holds the
disabled-mode loop to <=2% overhead):

>>> from repro import obs
>>> obs.enable()
>>> with obs.trace("my.region"):
...     obs.inc("my.events")
>>> obs.snapshot()["counters"]["my.events"]
1.0

Hooks (:func:`inc`, :func:`set_gauge`, :func:`observe`, :func:`trace`)
re-resolve instruments by name on every call, so :func:`reset` gives a
clean slate without stale-handle hazards.  State is process-local:
:func:`repro.parallel.parallel_map` workers inherit a fork-time copy
and their recordings stay worker-side -- the parent's snapshot never
double-counts (the pool reports parent-side queue-wait/execute
timings instead).

Export via :func:`metrics_to_json` / :func:`metrics_to_prometheus` /
:func:`render_span_tree`, or from the command line with
``python -m repro obs`` and the ``--trace`` flag on ``stream`` /
``train`` / ``evaluate``.
"""

from __future__ import annotations

import functools

from repro.obs.export import (
    aggregate_spans,
    metrics_to_json,
    metrics_to_prometheus,
    render_span_tree,
    spans_to_json,
)
from repro.obs.registry import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "enable",
    "disable",
    "enabled",
    "reset",
    "inc",
    "set_gauge",
    "observe",
    "trace",
    "traced",
    "registry",
    "tracer",
    "snapshot",
    "span_roots",
    "dropped_spans",
    "metrics_to_json",
    "metrics_to_prometheus",
    "spans_to_json",
    "render_span_tree",
    "aggregate_spans",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "DEFAULT_SECONDS_BUCKETS",
]


class _ObsState:
    __slots__ = ("enabled", "registry", "tracer")

    def __init__(self):
        self.enabled = False
        self.registry = MetricsRegistry()
        self.tracer = Tracer()


_STATE = _ObsState()


class _NullSpanContext:
    """Shared no-op context manager returned by :func:`trace` when off."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpanContext()


class _SpanContext:
    __slots__ = ("_tracer", "_name")

    def __init__(self, tracer: Tracer, name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> Span:
        return self._tracer.start(self._name)

    def __exit__(self, *exc_info):
        self._tracer.end()
        return False


# ---------------------------------------------------------------------------
# Switch
# ---------------------------------------------------------------------------
def enabled() -> bool:
    """Is observability recording right now?"""
    return _STATE.enabled


def enable(max_spans: int | None = None) -> None:
    """Turn recording on (optionally resizing the span retention cap)."""
    if max_spans is not None:
        _STATE.tracer.max_spans = int(max_spans)
    _STATE.enabled = True


def disable() -> None:
    """Stop recording; accumulated state stays readable until reset."""
    _STATE.enabled = False


def reset() -> None:
    """Drop every metric and span (the switch position is unchanged)."""
    _STATE.registry.reset()
    _STATE.tracer.reset()


# ---------------------------------------------------------------------------
# Hot-path hooks -- each is one attribute check when disabled.
# ---------------------------------------------------------------------------
def inc(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` (no-op while disabled)."""
    if _STATE.enabled:
        _STATE.registry.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op while disabled)."""
    if _STATE.enabled:
        _STATE.registry.gauge(name).set(value)


def observe(name: str, value: float, bounds=None) -> None:
    """Record ``value`` into histogram ``name`` (no-op while disabled)."""
    if _STATE.enabled:
        _STATE.registry.histogram(name, bounds).observe(value)


def trace(name: str):
    """Context manager timing one region as a span.

    While disabled this returns a shared no-op context manager; while
    enabled, spans opened inside another open span become its children.
    """
    if not _STATE.enabled:
        return _NULL_SPAN
    return _SpanContext(_STATE.tracer, name)


def traced(name: str):
    """Decorator form of :func:`trace` for whole-function spans."""

    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not _STATE.enabled:
                return func(*args, **kwargs)
            tracer = _STATE.tracer
            tracer.start(name)
            try:
                return func(*args, **kwargs)
            finally:
                tracer.end()

        return wrapper

    return decorate


# ---------------------------------------------------------------------------
# Introspection
# ---------------------------------------------------------------------------
def registry() -> MetricsRegistry:
    return _STATE.registry


def tracer() -> Tracer:
    return _STATE.tracer


def snapshot() -> dict:
    """Detached copy of every counter/gauge/histogram."""
    return _STATE.registry.snapshot()


def span_roots() -> list[Span]:
    """Finished top-level spans, in completion order."""
    return list(_STATE.tracer.roots)


def dropped_spans() -> int:
    """Spans timed but not retained (beyond the tracer cap)."""
    return _STATE.tracer.dropped
