"""Process-wide metrics registry: counters, gauges, histograms.

Three instrument kinds cover everything the runtime needs to expose:

- :class:`Counter` -- a monotonically increasing float (ticks run,
  rows emitted, readings dropped);
- :class:`Gauge` -- a last-write-wins float (active workers);
- :class:`Histogram` -- fixed-bucket latency/size distribution with
  Prometheus ``le`` (less-or-equal) bucket semantics.

Hot-path recording is O(1): counters and gauges are a single float
store, histograms a binary search over a fixed boundary tuple.  The
registry is plain-dict get-or-create and is **not** shared across
processes -- a :func:`repro.parallel.parallel_map` worker inherits a
fork-time copy and its recordings stay in the worker (no cross-worker
double counting; the parent's registry only ever sees what the parent
process recorded).

Snapshots are deep, detached copies: mutating the registry after
:meth:`MetricsRegistry.snapshot` never changes an earlier snapshot.
:meth:`MetricsRegistry.reset` drops every instrument; callers holding
an instrument object across a reset keep a detached orphan, so
hot paths should record through the :mod:`repro.obs` module functions
(which re-resolve by name) rather than caching instruments.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
]

#: Default histogram boundaries, tuned for sub-second code-path
#: latencies (seconds).  The implicit final bucket is +Inf.
DEFAULT_SECONDS_BUCKETS = (
    1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("Counters only go up; use a Gauge instead.")
        self.value += amount


class Gauge:
    """A value that can go up and down; last write wins."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with ``le`` (<=) bucket semantics.

    ``bounds`` are the finite upper bucket boundaries, ascending; an
    implicit +Inf bucket catches everything above the last bound.  An
    observation equal to a boundary lands in that boundary's bucket
    (Prometheus convention).  Recording is O(log n_buckets) -- one
    binary search and three adds.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "total", "count")

    def __init__(self, name: str, bounds=DEFAULT_SECONDS_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("A histogram needs at least one bucket bound.")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("Bucket bounds must be strictly ascending.")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def cumulative_counts(self) -> list[int]:
        """Per-bound cumulative (``le``) counts, +Inf bucket last."""
        running, out = 0, []
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out


class MetricsRegistry:
    """Named get-or-create store for counters, gauges, and histograms."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_unique(self, name: str, own: dict) -> None:
        for kind, instruments in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if instruments is not own and name in instruments:
                raise ValueError(
                    f"Metric {name!r} is already registered as a {kind}."
                )

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_unique(name, self._counters)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_unique(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds=None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_unique(name, self._histograms)
            instrument = self._histograms[name] = Histogram(
                name, bounds if bounds is not None else DEFAULT_SECONDS_BUCKETS
            )
        return instrument

    def snapshot(self) -> dict:
        """Detached deep copy of every instrument's current state."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "bucket_counts": list(h.bucket_counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh run starts from nothing)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
