"""Exporters: registry snapshots and span trees to JSON / Prometheus.

Metric names use dotted paths internally (``orchestrator.tick_seconds``);
the Prometheus exposition sanitizes them to the ``repro_*`` underscore
convention (``repro_orchestrator_tick_seconds``) with standard
``_bucket{le="..."}`` / ``_sum`` / ``_count`` histogram series.

Raw span trees can hold one node per traced region per tick;
:func:`aggregate_spans` folds them into a per-name-path tree (call
count, total and self seconds) that stays readable for hour-long runs.
"""

from __future__ import annotations

import json
import re

from repro.obs.tracing import Span

__all__ = [
    "metrics_to_json",
    "metrics_to_prometheus",
    "aggregate_spans",
    "render_span_tree",
    "spans_to_json",
]

_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return "repro_" + _PROM_SANITIZE.sub("_", name)


def _prom_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


def metrics_to_json(snapshot: dict, indent: int | None = 2) -> str:
    """Registry snapshot -> JSON document."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def metrics_to_prometheus(snapshot: dict) -> str:
    """Registry snapshot -> Prometheus text exposition format (0.0.4)."""
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_number(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_number(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        running = 0
        for bound, count in zip(
            list(hist["bounds"]) + [float("inf")], hist["bucket_counts"]
        ):
            running += count
            lines.append(
                f'{prom}_bucket{{le="{_prom_number(bound)}"}} {running}'
            )
        lines.append(f"{prom}_sum {hist['sum']!r}")
        lines.append(f"{prom}_count {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Span trees
# ---------------------------------------------------------------------------
def aggregate_spans(roots: list[Span]) -> list[dict]:
    """Fold raw spans into a per-name-path aggregate tree.

    Sibling spans with the same name merge into one node carrying
    ``calls``, ``total_seconds`` and ``self_seconds`` (total minus
    children); children are aggregated recursively.  Node order follows
    first appearance, so the tree reads in execution order.
    """

    def fold(spans: list[Span]) -> list[dict]:
        order: list[str] = []
        grouped: dict[str, list[Span]] = {}
        for span in spans:
            if span.name not in grouped:
                order.append(span.name)
                grouped[span.name] = []
            grouped[span.name].append(span)
        nodes = []
        for name in order:
            group = grouped[name]
            total = sum(s.duration_ns for s in group) / 1e9
            child_total = sum(
                c.duration_ns for s in group for c in s.children
            ) / 1e9
            nodes.append(
                {
                    "name": name,
                    "calls": len(group),
                    "total_seconds": total,
                    "self_seconds": max(0.0, total - child_total),
                    "children": fold(
                        [c for s in group for c in s.children]
                    ),
                }
            )
        return nodes

    return fold(list(roots))


def render_span_tree(roots: list[Span], dropped: int = 0) -> str:
    """Aggregated span tree as indented text (for terminals/logs)."""
    nodes = aggregate_spans(roots)
    if not nodes:
        return "(no spans recorded)"
    lines: list[str] = []

    def emit(node: dict, depth: int) -> None:
        lines.append(
            f"{'  ' * depth}{node['name']:<{max(1, 46 - 2 * depth)}} "
            f"calls={node['calls']:<7d} "
            f"total={node['total_seconds']:.4f}s "
            f"self={node['self_seconds']:.4f}s"
        )
        for child in node["children"]:
            emit(child, depth + 1)

    for node in nodes:
        emit(node, 0)
    if dropped:
        lines.append(f"({dropped} spans beyond the retention cap were timed "
                     "but not stored)")
    return "\n".join(lines)


def spans_to_json(
    roots: list[Span], dropped: int = 0, indent: int | None = 2
) -> str:
    """Aggregated span tree -> JSON document."""
    return json.dumps(
        {"spans": aggregate_spans(roots), "dropped_spans": dropped},
        indent=indent,
    )
