"""Span tracing: parent/child timing trees over the runtime's code paths.

A span is one timed region (``orchestrator.tick``, ``pipeline.step.
temporal``, ...).  Spans opened while another span is open become its
children, so one closed-loop tick yields a tree::

    orchestrator.tick
    ├── simulation.step
    ├── policy.saturated_services
    │   ├── telemetry.emit
    │   └── pipeline.transform_tick
    │       ├── pipeline.step.binary
    │       └── ...
    └── autoscaler.act

Durations come from :func:`time.perf_counter_ns` (monotonic; immune to
wall-clock steps).  The tracer is single-threaded by design -- the
runtime parallelizes with *processes*, and a forked worker inherits a
fork-time copy whose spans stay in the worker.

Retention is bounded: beyond ``max_spans`` retained spans, finished
spans are timed but not stored (``dropped`` counts them), so tracing a
multi-hour loop cannot grow memory without bound.
"""

from __future__ import annotations

import time

__all__ = ["Span", "Tracer"]


class Span:
    """One finished (or still-open) timed region."""

    __slots__ = ("name", "start_ns", "duration_ns", "children")

    def __init__(self, name: str, start_ns: int):
        self.name = name
        self.start_ns = start_ns
        self.duration_ns = 0
        self.children: list[Span] = []

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_ns": self.duration_ns,
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """Collects spans into per-root trees; bounded retention."""

    def __init__(self, max_spans: int = 100_000):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1.")
        self.max_spans = max_spans
        self.roots: list[Span] = []
        self.retained = 0
        self.dropped = 0
        self._stack: list[Span] = []

    def start(self, name: str) -> Span:
        span = Span(name, time.perf_counter_ns())
        self._stack.append(span)
        return span

    def end(self) -> Span:
        if not self._stack:
            raise RuntimeError("Tracer.end() without a matching start().")
        span = self._stack.pop()
        span.duration_ns = time.perf_counter_ns() - span.start_ns
        if self.retained >= self.max_spans and not span.children:
            # Past the cap new leaves are dropped, but a span that
            # already holds retained children is kept so no retained
            # subtree becomes unreachable (the overshoot is bounded by
            # the tree depth).
            self.dropped += 1
        else:
            self.retained += 1
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)
        return span

    def reset(self) -> None:
        self.roots = []
        self._stack = []
        self.retained = 0
        self.dropped = 0
