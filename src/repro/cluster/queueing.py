"""Queueing-theory laws used by the service performance models.

The application models are operational: given per-request demands and
an offered arrival rate, utilization laws give per-resource load and a
response-time law gives latency.  We use the M/M/1 waiting-time shape
``R = S / (1 - rho)``, smoothed and capped so that deep saturation
produces bounded (timeout-limited) latencies instead of infinities,
plus Erlang-C for multi-server stations and a finite backlog model for
drop behaviour.
"""

from __future__ import annotations

import math

__all__ = [
    "utilization",
    "mm1_response_time",
    "erlang_c",
    "mmc_response_time",
    "BacklogQueue",
]


def utilization(offered: float, capacity: float) -> float:
    """Offered load over capacity; infinite capacity yields 0."""
    if capacity <= 0.0:
        return math.inf if offered > 0 else 0.0
    return offered / capacity


def mm1_response_time(
    service_time: float, rho: float, *, max_factor: float = 60.0
) -> float:
    """M/M/1 response time with a saturation cap.

    Below ``rho=1`` this is the textbook ``S / (1 - rho)``; above it
    the queue is unstable and the observed latency is bounded by
    client timeouts, so we cap the stretch factor at ``max_factor``
    (the paper's load generators drop requests at ~3 s).
    """
    if service_time < 0:
        raise ValueError("service_time must be non-negative.")
    if rho < 0:
        raise ValueError("rho must be non-negative.")
    if rho >= 1.0 - 1.0 / max_factor:
        return service_time * max_factor
    return service_time / (1.0 - rho)


def erlang_c(servers: int, offered_erlangs: float) -> float:
    """Erlang-C probability that an arrival must wait (M/M/c).

    Computed with the standard iterative recurrence to avoid factorial
    overflow.  Returns 1.0 when the system is overloaded.
    """
    if servers < 1:
        raise ValueError("servers must be >= 1.")
    if offered_erlangs < 0:
        raise ValueError("offered_erlangs must be non-negative.")
    if offered_erlangs == 0.0:
        return 0.0
    if offered_erlangs >= servers:
        return 1.0
    # inverse of Erlang-B via recurrence, then convert to Erlang-C.
    inv_b = 1.0
    for k in range(1, servers + 1):
        inv_b = 1.0 + inv_b * k / offered_erlangs
    b = 1.0 / inv_b
    rho = offered_erlangs / servers
    c = b / (1.0 - rho + rho * b)
    return min(max(c, 0.0), 1.0)


def mmc_response_time(
    service_time: float, arrival_rate: float, servers: int, *, max_factor: float = 60.0
) -> float:
    """M/M/c mean response time with the same saturation cap as M/M/1."""
    if service_time <= 0.0:
        return 0.0
    offered = arrival_rate * service_time
    rho = offered / servers
    if rho >= 1.0 - 1.0 / max_factor:
        return service_time * max_factor
    wait_probability = erlang_c(servers, offered)
    mu = 1.0 / service_time
    waiting = wait_probability / (servers * mu - arrival_rate)
    return service_time + waiting


class BacklogQueue:
    """Discrete-time queue with finite patience (client timeouts).

    Each tick, ``offer(arrivals, capacity)`` admits work, completes up
    to ``capacity``, carries the remainder as backlog, and drops
    whatever has waited longer than ``timeout`` ticks -- producing the
    dropped-request KPI the paper uses in its SLO definition.
    """

    def __init__(self, timeout: float = 3.0):
        if timeout <= 0:
            raise ValueError("timeout must be positive.")
        self.timeout = timeout
        self.backlog = 0.0

    def offer(self, arrivals: float, capacity: float) -> tuple[float, float]:
        """Process one tick; returns (completed, dropped)."""
        if arrivals < 0 or capacity < 0:
            raise ValueError("arrivals and capacity must be non-negative.")
        total = self.backlog + arrivals
        completed = min(total, capacity)
        remaining = total - completed
        # Work that cannot complete within `timeout` ticks at current
        # capacity will time out; drop it now (fluid approximation).
        sustainable = capacity * self.timeout
        dropped = max(0.0, remaining - sustainable)
        self.backlog = remaining - dropped
        return completed, dropped

    @property
    def waiting_time(self) -> float:
        """Ticks of work currently queued (Little's law proxy)."""
        return self.backlog

    def reset(self) -> None:
        self.backlog = 0.0
