"""Resource kinds and unit helpers."""

from __future__ import annotations

import enum

__all__ = ["Resource", "GIB", "MIB", "KIB", "GBIT"]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
GBIT = 125_000_000  # 1 Gbit/s in bytes/s


class Resource(str, enum.Enum):
    """Platform resources a service instance can bottleneck on.

    Matches the bottleneck taxonomy of the paper's Table 1:
    Container-CPU, Host-CPU, IO-Bandwidth, IO-Queue/IO-Wait,
    Mem-Bandwidth and Network-Util all map onto these kinds (the
    container/host distinction is which *limit* binds, not a different
    resource).
    """

    CPU = "cpu"
    MEMORY = "memory"
    MEMORY_BANDWIDTH = "memory_bandwidth"
    DISK_BANDWIDTH = "disk_bandwidth"
    DISK_QUEUE = "disk_queue"
    NETWORK = "network"

    def __str__(self) -> str:  # readable in logs and tables
        return self.value
