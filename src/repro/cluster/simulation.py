"""Discrete-time cluster simulation engine.

Ties together nodes, containers/cgroups, application models and
workload series.  One tick is one second (the PCP sampling interval).
Per tick the engine:

1. splits each application's arrival rate over its service replicas;
2. computes raw per-instance resource demands (including queued work);
3. accounts container memory (page-in traffic from evicted working
   sets);
4. arbitrates shared node resources with proportional fair sharing,
   respecting cgroup CPU quotas;
5. resolves throughput / response time / drops per instance and
   records a :class:`~repro.cluster.container.ContainerTick`;
6. composes application KPIs.

The engine is deliberately *stepwise*: :meth:`ClusterSimulation.step`
advances one tick, so a closed-loop orchestrator can scale deployments
between ticks (section 4.2's autoscaling experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.apps.base import ApplicationModel, InstanceRuntime
from repro.cluster.cgroup import CpuCgroup, MemoryCgroup
from repro.cluster.container import Container, ContainerTick
from repro.cluster.node import (
    NEGATIVE_DEMAND_TOLERANCE,
    Node,
    NodeSpec,
    fair_share,
)

__all__ = ["Placement", "Deployment", "ClusterSimulation", "SimulationResult"]


@dataclass(frozen=True)
class Placement:
    """Where one replica of a service runs and with which limits."""

    node: str
    cpu_limit: float | None = None
    memory_limit: float | None = None


@dataclass
class _Instance:
    """Engine-internal pairing of a container with its runtime."""

    container: Container
    runtime: InstanceRuntime
    application: str
    service: str


@dataclass
class Deployment:
    """One application's replicas, grouped by service."""

    application: ApplicationModel
    instances: dict[str, list[_Instance]] = field(default_factory=dict)

    def replicas(self, service: str) -> int:
        return len(self.instances.get(service, []))


@dataclass
class SimulationResult:
    """Everything a run produced, ready for telemetry and labeling."""

    duration: int
    applications: dict[str, dict[str, np.ndarray]]
    # app -> {"offered", "throughput", "response_time", "dropped"}
    containers: list[Container]
    nodes: dict[str, Node]

    def kpi(self, application: str, name: str) -> np.ndarray:
        return self.applications[application][name]


class ClusterSimulation:
    """A set of nodes plus deployed applications, advanced tick by tick."""

    def __init__(self, nodes: dict[str, NodeSpec] | list[NodeSpec], seed: int = 0):
        if isinstance(nodes, list):
            nodes = {spec.name: spec for spec in nodes}
        if not nodes:
            raise ValueError("At least one node is required.")
        # The mapping key is the authoritative node name (a machine spec
        # like MACHINES["training"] can back a node of any name).
        self.nodes: dict[str, Node] = {
            name: Node(
                spec=spec if spec.name == name else replace(spec, name=name)
            )
            for name, spec in nodes.items()
        }
        self.deployments: dict[str, Deployment] = {}
        self.rng = np.random.default_rng(seed)
        self.clock = 0
        self._kpis: dict[str, dict[str, list[float]]] = {}
        self._container_seq = 0
        #: Bumped on every replica add/remove; lets observers skip
        #: membership reconciliation when nothing changed.
        self.membership_version = 0

    # ------------------------------------------------------------------
    # Deployment management
    # ------------------------------------------------------------------
    def deploy(
        self,
        application: ApplicationModel,
        placements: dict[str, list[Placement]],
    ) -> Deployment:
        """Place one replica per :class:`Placement` for each service."""
        if application.name in self.deployments:
            raise ValueError(f"Application {application.name} already deployed.")
        missing = set(application.services) - set(placements)
        if missing:
            raise ValueError(f"No placement for services: {sorted(missing)}.")
        deployment = Deployment(application=application)
        self.deployments[application.name] = deployment
        self._kpis[application.name] = {
            "offered": [],
            "throughput": [],
            "response_time": [],
            "dropped": [],
        }
        for service, service_placements in placements.items():
            if not service_placements:
                raise ValueError(f"Service {service} needs at least one replica.")
            for placement in service_placements:
                self.add_replica(application.name, service, placement)
        return deployment

    def add_replica(
        self, application: str, service: str, placement: Placement
    ) -> Container:
        """Start one more replica of ``service`` (usable mid-run)."""
        deployment = self.deployments[application]
        spec = deployment.application.services[service]
        node = self.nodes[placement.node]
        self._container_seq += 1
        container = Container(
            name=f"{application}.{service}.{self._container_seq}",
            service=service,
            application=application,
            cpu_cgroup=CpuCgroup(placement.cpu_limit),
            memory_cgroup=MemoryCgroup(placement.memory_limit),
            created_at=self.clock,
        )
        node.add_container(container)
        instance = _Instance(
            container=container,
            runtime=InstanceRuntime(spec),
            application=application,
            service=service,
        )
        deployment.instances.setdefault(service, []).append(instance)
        self.membership_version += 1
        return container

    def remove_replica(self, application: str, service: str) -> None:
        """Stop the most recently added replica (keeps at least one)."""
        deployment = self.deployments[application]
        replicas = deployment.instances.get(service, [])
        if len(replicas) <= 1:
            raise ValueError(f"Service {service} must keep at least one replica.")
        instance = replicas.pop()
        self.nodes[instance.container.node].remove_container(instance.container)
        self.membership_version += 1

    def replica_counts(self, application: str) -> dict[str, int]:
        deployment = self.deployments[application]
        return {service: len(replicas) for service, replicas in deployment.instances.items()}

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self, arrivals: dict[str, float]) -> None:
        """Advance one second with the given per-application arrival rates."""
        unknown = set(arrivals) - set(self.deployments)
        if unknown:
            raise ValueError(f"Arrivals for undeployed applications: {sorted(unknown)}.")

        # Pass 1: per-instance arrivals, demands and memory accounting.
        all_records: list[tuple] = []
        by_node: dict[str, list[_Instance]] = {}
        demands = {}
        for app_name, deployment in self.deployments.items():
            app_arrival = float(arrivals.get(app_name, 0.0))
            for service, replicas in deployment.instances.items():
                spec = deployment.application.services[service]
                per_replica = app_arrival * spec.visits / len(replicas)
                for instance in replicas:
                    demand = instance.runtime.demand(per_replica)
                    # Connection-dependent memory follows the previous
                    # tick's actual concurrency (Little's law), so a
                    # saturated service's footprint grows with its queue.
                    concurrency = max(
                        instance.runtime.last_concurrency,
                        per_replica * max(spec.base_latency, 1e-3),
                    )
                    mem_account = instance.container.memory_cgroup.account(
                        base_bytes=spec.mem_base_bytes
                        + concurrency * spec.mem_per_connection_bytes,
                        working_set_bytes=spec.working_set_bytes,
                        access_bytes_per_second=demand.ws_access_bytes,
                    )
                    thrash_bytes = (
                        mem_account.page_in_bytes * spec.thrash_amplification
                    )
                    demand.disk_bytes += thrash_bytes
                    demand.random_disk_bytes = (
                        thrash_bytes * spec.paged_io_random_fraction
                    )
                    demands[instance.container.name] = demand
                    all_records.append((instance, demand, mem_account))
                    by_node.setdefault(instance.container.node, []).append(
                        instance
                    )

        # Pass 2: arbitrate shared resources per node.  Each container's
        # usable capacity is its fair-share grant plus the node's idle
        # headroom (work-conserving scheduling): on an idle node a
        # container can burst to the full resource, under contention it
        # is squeezed to its proportional share.
        shares: dict[str, tuple] = {}
        for node in self.nodes.values():
            members = by_node.get(node.name)
            if not members:
                continue
            member_demands = [demands[inst.container.name] for inst in members]
            quotas = [
                inst.container.cpu_cgroup.quota_cores
                if inst.container.cpu_cgroup.quota_cores is not None
                else float(node.spec.cores)
                for inst in members
            ]
            if len(members) < 8:
                # Scalar arbitration: bitwise-identical to the array path
                # below (numpy sums small arrays with the same sequential
                # accumulation), without per-node array construction.
                cpu_capacity = _work_conserving_scalar(
                    [
                        d.cpu_cores if d.cpu_cores < q else q
                        for d, q in zip(member_demands, quotas)
                    ],
                    float(node.spec.cores),
                )
                cpu_capacity = [
                    c if c < q else q for c, q in zip(cpu_capacity, quotas)
                ]
                disk_capacity = _work_conserving_scalar(
                    [d.disk_bytes for d in member_demands],
                    node.spec.disk_bandwidth,
                )
                random_capacity = _work_conserving_scalar(
                    [d.random_disk_bytes for d in member_demands],
                    node.spec.disk_random_bandwidth,
                )
                net_capacity = _work_conserving_scalar(
                    [d.network_bytes for d in member_demands],
                    node.spec.network_bandwidth,
                )
                membw_capacity = _work_conserving_scalar(
                    [d.memory_bandwidth_bytes for d in member_demands],
                    node.spec.memory_bandwidth,
                )
            else:
                quota_arr = np.array(quotas)
                raw_cpu = np.array([d.cpu_cores for d in member_demands])
                cpu_capacity = _work_conserving_capacity(
                    np.minimum(raw_cpu, quota_arr), float(node.spec.cores)
                )
                cpu_capacity = np.minimum(cpu_capacity, quota_arr)
                disk_capacity = _work_conserving_capacity(
                    np.array([d.disk_bytes for d in member_demands]),
                    node.spec.disk_bandwidth,
                )
                random_capacity = _work_conserving_capacity(
                    np.array([d.random_disk_bytes for d in member_demands]),
                    node.spec.disk_random_bandwidth,
                )
                net_capacity = _work_conserving_capacity(
                    np.array([d.network_bytes for d in member_demands]),
                    node.spec.network_bandwidth,
                )
                membw_capacity = _work_conserving_capacity(
                    np.array([d.memory_bandwidth_bytes for d in member_demands]),
                    node.spec.memory_bandwidth,
                )
            for i, inst in enumerate(members):
                shares[inst.container.name] = (
                    cpu_capacity[i],
                    disk_capacity[i],
                    random_capacity[i],
                    net_capacity[i],
                    membw_capacity[i],
                )

        # Pass 3: resolve performance and record container ticks.
        per_app_service: dict[str, dict[str, list]] = {
            app: {service: [] for service in dep.instances}
            for app, dep in self.deployments.items()
        }
        for instance, demand, mem_account in all_records:
            cpu, disk, random_disk, net, membw = shares[
                instance.container.name
            ]
            # Interference accounting: what this container *lost* to (or
            # pushed onto) its neighbours on the shared node.  All three
            # are pure observability -- they never feed back into
            # performance resolution.
            node_cores = float(
                self.nodes[instance.container.node].spec.cores
            )
            quota = instance.container.cpu_cgroup.quota_cores
            if quota is None:
                quota = node_cores
            runnable = min(demand.cpu_cores, quota)
            # Steal: CPU the container could have used were it alone on
            # the node (its quota-clamped demand, capped by the machine)
            # minus what arbitration actually granted.  Solo tenants see
            # exactly 0; co-located tenants see the fair-share squeeze.
            cpu_steal = max(0.0, min(runnable, node_cores) - cpu)
            # Memory-bandwidth actually moved (LLC / DRAM pressure other
            # tenants observe): demand capped by the granted share.
            membw_bytes = min(demand.memory_bandwidth_bytes, membw)
            # Disk work that had to queue behind the shared device this
            # tick (sequential + seek-bound shortfall).
            disk_shortfall = max(0.0, demand.disk_bytes - disk) + max(
                0.0, demand.random_disk_bytes - random_disk
            )
            performance = instance.runtime.resolve(
                demand,
                cpu_capacity=cpu,
                disk_capacity=disk,
                random_disk_capacity=random_disk,
                network_capacity=net,
                memory_bandwidth_capacity=membw,
                memory_utilization=mem_account.limit_utilization,
            )
            cpu_account = instance.container.cpu_cgroup.account(
                demand.cpu_cores, cpu
            )
            spec = instance.runtime.spec
            tick = ContainerTick(
                cpu=cpu_account,
                memory=mem_account,
                disk_read_bytes=performance.throughput * spec.disk_read_bytes
                + mem_account.page_in_bytes * spec.thrash_amplification,
                disk_write_bytes=performance.throughput * spec.disk_write_bytes,
                network_rx_bytes=performance.throughput * spec.net_in_bytes,
                network_tx_bytes=performance.throughput * spec.net_out_bytes,
                tcp_connections=max(performance.concurrency, 0.0) + 2.0,
                processes=4.0 + 0.05 * performance.concurrency,
                throughput=performance.throughput,
                response_time=performance.response_time,
                dropped=performance.dropped,
                bottleneck=performance.bottleneck.value,
                max_utilization=performance.max_utilization,
                cpu_steal_cores=cpu_steal,
                membw_bytes=membw_bytes,
                disk_shortfall_bytes=disk_shortfall,
            )
            instance.container.record(tick)
            per_app_service[instance.application][instance.service].append(
                performance
            )

        # Pass 4: application KPIs.
        for app_name, deployment in self.deployments.items():
            throughput, response, dropped = deployment.application.end_to_end(
                per_app_service[app_name]
            )
            offered = float(arrivals.get(app_name, 0.0))
            kpis = self._kpis[app_name]
            kpis["offered"].append(offered)
            kpis["throughput"].append(min(throughput, offered))
            kpis["response_time"].append(response)
            kpis["dropped"].append(dropped)

        self.clock += 1

    def run(self, workloads: dict[str, np.ndarray]) -> SimulationResult:
        """Run every tick of the given per-application workload series."""
        lengths = {len(series) for series in workloads.values()}
        if len(lengths) != 1:
            raise ValueError("All workload series must have equal length.")
        duration = lengths.pop()
        for t in range(duration):
            self.step({app: float(series[t]) for app, series in workloads.items()})
        return self.result()

    def result(self) -> SimulationResult:
        """Snapshot of everything recorded so far."""
        applications = {
            app: {key: np.asarray(values) for key, values in kpis.items()}
            for app, kpis in self._kpis.items()
        }
        containers = [
            instance.container
            for deployment in self.deployments.values()
            for replicas in deployment.instances.values()
            for instance in replicas
        ]
        return SimulationResult(
            duration=self.clock,
            applications=applications,
            containers=containers,
            nodes=self.nodes,
        )


def _work_conserving_capacity(demands: np.ndarray, total: float) -> np.ndarray:
    """Usable capacity per consumer: fair-share grant + idle headroom.

    With total demand below ``total``, every consumer could addit-
    ionally claim the idle remainder, so its utilization stays below 1;
    once the resource is oversubscribed the idle term vanishes and
    every consumer sees its proportional squeeze (utilization > 1).
    """
    granted = fair_share(demands, total)
    idle = max(0.0, total - float(granted.sum()))
    return granted + idle


def _work_conserving_scalar(demands: list, total: float) -> list:
    """Scalar twin of :func:`_work_conserving_capacity` for short groups.

    Accumulates sums left to right starting from zero, exactly as numpy
    does for arrays shorter than eight elements, so every result is
    bitwise-equal to the array path.
    """
    clamped: list | None = None
    for i, demand in enumerate(demands):
        if demand < 0:
            if demand < -NEGATIVE_DEMAND_TOLERANCE:
                raise ValueError("Demands must be non-negative.")
            if clamped is None:
                clamped = list(demands)
            clamped[i] = 0.0
    if clamped is not None:
        demands = clamped
    subscribed = 0.0
    for demand in demands:
        subscribed += demand
    if subscribed <= total or subscribed == 0.0:
        granted = demands
        granted_sum = subscribed
    else:
        ratio = total / subscribed
        granted = [demand * ratio for demand in demands]
        granted_sum = 0.0
        for grant in granted:
            granted_sum += grant
    idle = max(0.0, total - granted_sum)
    return [grant + idle for grant in granted]
