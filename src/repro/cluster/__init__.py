"""Simulated cloud substrate: nodes, containers and cgroup accounting.

Replaces the paper's physical testbed (HP ProLiant servers running
Docker under CentOS/Debian/Ubuntu).  The simulation is discrete-time
with one-second ticks -- the same sampling interval as PCP and
``docker stats`` -- and reproduces the causal couplings the classifier
learns from:

- CPU quota throttling (``cgroup.cpusched.throttled`` grows when a
  container's demand exceeds its quota);
- proportional-share contention when a node's cores are oversubscribed
  (interference between co-located containers);
- memory-limit pressure spilling into disk traffic (page thrashing);
- shared disk and NIC bandwidth per node.
"""

from repro.cluster.cgroup import CpuCgroup, MemoryCgroup
from repro.cluster.container import Container
from repro.cluster.node import MACHINES, Node, NodeSpec
from repro.cluster.resources import Resource

# NOTE: repro.cluster.simulation and repro.cluster.faults are
# intentionally NOT re-exported here: the engine imports
# repro.apps.base (for the instance runtimes), which imports
# repro.cluster.queueing -- re-exporting them would close an import
# cycle through this package __init__.  Import them directly:
# ``from repro.cluster.simulation import ClusterSimulation`` and
# ``from repro.cluster.faults import FaultSchedule``.

__all__ = [
    "Resource",
    "CpuCgroup",
    "MemoryCgroup",
    "Container",
    "Node",
    "NodeSpec",
    "MACHINES",
]
