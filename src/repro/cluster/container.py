"""Containers: the unit of deployment, limitation and monitoring.

A container pairs a service instance with its cgroups and carries the
per-tick accounting snapshots the telemetry agent turns into the 88
container-level metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cgroup import CpuAccounting, CpuCgroup, MemoryAccounting, MemoryCgroup

__all__ = ["Container", "ContainerTick"]


@dataclass(slots=True)
class ContainerTick:
    """Everything observable about one container in one 1-second tick."""

    cpu: CpuAccounting
    memory: MemoryAccounting
    disk_read_bytes: float = 0.0
    disk_write_bytes: float = 0.0
    network_rx_bytes: float = 0.0
    network_tx_bytes: float = 0.0
    tcp_connections: float = 0.0
    processes: float = 1.0
    throughput: float = 0.0  # completed requests/s
    response_time: float = 0.0  # seconds
    dropped: float = 0.0  # requests/s
    # Shared-node contention accounting (interference channels):
    cpu_steal_cores: float = 0.0  # runnable cores lost to neighbours
    membw_bytes: float = 0.0  # DRAM traffic actually moved (bytes/s)
    disk_shortfall_bytes: float = 0.0  # disk work queued behind the device
    # Simulator ground truth (never exposed as platform metrics):
    bottleneck: str = ""  # resource with the highest utilization
    max_utilization: float = 0.0


@dataclass
class Container:
    """A running service instance inside its cgroups.

    ``service`` and ``application`` are plain labels; the actual
    performance model lives in :mod:`repro.apps` and writes one
    :class:`ContainerTick` per simulated second via :meth:`record`.
    """

    name: str
    service: str
    application: str
    cpu_cgroup: CpuCgroup = field(default_factory=CpuCgroup)
    memory_cgroup: MemoryCgroup = field(default_factory=MemoryCgroup)
    node: str | None = None
    created_at: int = 0  # simulation tick at which the container started
    history: list[ContainerTick] = field(default_factory=list)

    def tick_at(self, t: int) -> ContainerTick | None:
        """The accounting snapshot for absolute simulation tick ``t``."""
        index = t - self.created_at
        if 0 <= index < len(self.history):
            return self.history[index]
        return None

    def record(self, tick: ContainerTick) -> None:
        """Append one tick of accounting."""
        self.history.append(tick)

    def last(self) -> ContainerTick:
        if not self.history:
            raise RuntimeError(f"Container {self.name} has no recorded ticks.")
        return self.history[-1]

    @property
    def cpu_limit_cores(self) -> float | None:
        return self.cpu_cgroup.quota_cores

    @property
    def memory_limit_bytes(self) -> float | None:
        return self.memory_cgroup.limit_bytes

    def __str__(self) -> str:
        return f"{self.application}/{self.service}/{self.name}"
