"""Simulated physical nodes and the testbed machine specifications.

``MACHINES`` reproduces the paper's hardware inventory:

- ``training``: HP ProLiant DL380 Gen9, 48-core Xeon E5-2680 v3,
  125 GiB RAM, 10 Gb network (section 3.2.2);
- ``M1``/``M2``/``M3``: the DL360 Gen9 evaluation trio (10/12/8 cores,
  32 GiB, 1 Gb LAN, mixed Debian/Ubuntu -- section 4.2.1).

A node arbitrates shared resources among its containers with
proportional fair sharing: when the sum of demands exceeds capacity,
every container receives capacity scaled by its demand share (CFS-like
behaviour without per-task detail).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.container import Container
from repro.cluster.resources import GBIT, GIB

__all__ = [
    "NodeSpec",
    "Node",
    "MACHINES",
    "fair_share",
    "NEGATIVE_DEMAND_TOLERANCE",
]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one physical machine."""

    name: str
    cores: int
    memory_bytes: float
    disk_bandwidth: float  # bytes/s, sequential
    network_bandwidth: float  # bytes/s
    memory_bandwidth: float = 10e9  # bytes/s, DRAM traffic budget
    os: str = "centos-7.3"
    cpu_model: str = "Xeon E5-2680 v3"

    def __post_init__(self):
        if self.cores < 1:
            raise ValueError("A node needs at least one core.")
        if min(self.memory_bytes, self.disk_bandwidth, self.network_bandwidth) <= 0:
            raise ValueError("Node capacities must be positive.")
        if self.memory_bandwidth <= 0:
            raise ValueError("memory_bandwidth must be positive.")

    @property
    def disk_random_bandwidth(self) -> float:
        """Random-access disk throughput (page-in / seek-bound traffic)."""
        return 0.3 * self.disk_bandwidth


MACHINES: dict[str, NodeSpec] = {
    # Training testbed (section 3.2.2).
    "training": NodeSpec(
        name="training",
        cores=48,
        memory_bytes=125 * GIB,
        disk_bandwidth=500e6,  # SATA SSD class
        network_bandwidth=10 * GBIT,
        os="centos-7.3",
        cpu_model="Xeon E5-2680 v3 @2.50GHz",
    ),
    # Evaluation trio (section 4.2.1), 1 Gb LAN.
    "M1": NodeSpec(
        name="M1",
        cores=10,
        memory_bytes=32 * GIB,
        disk_bandwidth=400e6,
        network_bandwidth=1 * GBIT,
        os="debian-9",
        cpu_model="Xeon E5-2650 v3 @2.30GHz",
    ),
    "M2": NodeSpec(
        name="M2",
        cores=12,
        memory_bytes=32 * GIB,
        disk_bandwidth=400e6,
        network_bandwidth=1 * GBIT,
        os="debian-9",
        cpu_model="Xeon E5-2650 v4 @2.20GHz",
    ),
    "M3": NodeSpec(
        name="M3",
        cores=8,
        memory_bytes=32 * GIB,
        disk_bandwidth=400e6,
        network_bandwidth=1 * GBIT,
        os="ubuntu-16.04",
        cpu_model="Xeon E5-2640 v3 @2.60GHz",
    ),
}


#: Demands above this magnitude below zero are treated as genuine
#: modelling errors; anything in ``(-NEGATIVE_DEMAND_TOLERANCE, 0)``
#: is float-rounding debris from the work-conserving arithmetic
#: (demand sums and ratio rescaling accumulate ~1 ulp per member) and
#: is clamped to exactly 0.0 instead of aborting the run.
NEGATIVE_DEMAND_TOLERANCE = 1e-6


def fair_share(demands: np.ndarray, capacity: float) -> np.ndarray:
    """Proportional fair allocation of ``capacity`` to ``demands``.

    Under-subscribed resources grant every demand in full; otherwise
    each consumer receives ``capacity * demand / total_demand``.

    Microscopically negative demands (float rounding in the
    work-conserving paths) are clamped to 0; demands more negative
    than :data:`NEGATIVE_DEMAND_TOLERANCE` still raise.
    """
    demands = np.asarray(demands, dtype=np.float64)
    if np.any(demands < 0):
        if np.any(demands < -NEGATIVE_DEMAND_TOLERANCE):
            raise ValueError("Demands must be non-negative.")
        demands = np.maximum(demands, 0.0)
    total = demands.sum()
    if total <= capacity or total == 0.0:
        return demands.copy()
    return demands * (capacity / total)


@dataclass
class Node:
    """A physical machine hosting containers."""

    spec: NodeSpec
    containers: list[Container] = field(default_factory=list)

    def add_container(self, container: Container) -> None:
        if container.node is not None:
            raise ValueError(
                f"Container {container.name} is already placed on {container.node}."
            )
        container.node = self.spec.name
        self.containers.append(container)

    def remove_container(self, container: Container) -> None:
        self.containers.remove(container)
        container.node = None

    def cpu_shares(self, demands: np.ndarray) -> np.ndarray:
        """Fair CPU shares (cores) for the given per-container demands."""
        return fair_share(demands, float(self.spec.cores))

    def disk_shares(self, demands: np.ndarray) -> np.ndarray:
        """Fair disk-bandwidth shares (bytes/s)."""
        return fair_share(demands, self.spec.disk_bandwidth)

    def network_shares(self, demands: np.ndarray) -> np.ndarray:
        """Fair NIC-bandwidth shares (bytes/s)."""
        return fair_share(demands, self.spec.network_bandwidth)

    @property
    def name(self) -> str:
        return self.spec.name
