"""Fault injection for robustness experiments.

The paper argues monitorless must survive messy production conditions
(noisy workloads, hardware changes, interference).  This module
injects controlled faults into a running simulation:

- :class:`NodeSlowdown` -- a node temporarily loses part of its CPU
  capacity (thermal throttling, co-tenant VM, degraded host);
- :class:`DiskDegradation` -- disk bandwidth drops (RAID rebuild,
  failing device);
- :class:`FaultSchedule` -- applies a set of faults tick by tick while
  driving a workload through the simulation.

Telemetry-level faults live in :class:`MetricDropout`, which wraps a
:class:`~repro.telemetry.agent.TelemetryAgent` and makes a random
subset of metric readings go missing (held at the previous value, the
way real collectors behave on a missed scrape).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

import numpy as np

from repro import obs
from repro.cluster.simulation import ClusterSimulation, SimulationResult

__all__ = ["NodeSlowdown", "DiskDegradation", "FaultSchedule", "MetricDropout"]


@dataclass(frozen=True)
class NodeSlowdown:
    """Reduce a node's usable cores to ``factor`` during [start, end)."""

    node: str
    factor: float
    start: int
    end: int

    def __post_init__(self):
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("factor must be in (0, 1].")
        if self.end <= self.start:
            raise ValueError("end must exceed start.")

    def active(self, t: int) -> bool:
        return self.start <= t < self.end

    def apply(self, spec):
        degraded_cores = max(1, int(round(spec.cores * self.factor)))
        return replace(spec, cores=degraded_cores)


@dataclass(frozen=True)
class DiskDegradation:
    """Reduce a node's disk bandwidth to ``factor`` during [start, end)."""

    node: str
    factor: float
    start: int
    end: int

    def __post_init__(self):
        if not 0.0 < self.factor <= 1.0:
            raise ValueError("factor must be in (0, 1].")
        if self.end <= self.start:
            raise ValueError("end must exceed start.")

    def active(self, t: int) -> bool:
        return self.start <= t < self.end

    def apply(self, spec):
        return replace(spec, disk_bandwidth=spec.disk_bandwidth * self.factor)


class FaultSchedule:
    """Drive a simulation while applying scheduled faults.

    Node specs are swapped in and out around each tick, so the engine's
    fair-sharing sees the degraded capacities exactly during the fault
    windows.

    Overlapping faults targeting the same node compose in a defined
    order -- sorted by ``(fault.start, type name)``, ties broken by the
    original list position -- not in whatever order the caller happened
    to list them.  ``NodeSlowdown`` rounds cores to an integer, so for
    overlapping windows the composition order is observable; sorting
    makes ``FaultSchedule([a, b])`` and ``FaultSchedule([b, a])``
    bitwise-identical runs.

    Besides the one-shot :meth:`run`, the schedule exposes the
    per-tick primitives (:meth:`pristine_specs`, :meth:`apply_tick`,
    :meth:`restore`) so external drivers -- the chaos harness, an
    :class:`~repro.orchestrator.loop.Orchestrator` loop -- can
    interleave fault application with their own stepping.
    """

    def __init__(self, faults: list):
        self.faults = list(faults)
        known_nodes = {fault.node for fault in self.faults}
        indexed = list(enumerate(self.faults))
        self._by_node = {
            node: [
                fault
                for _, fault in sorted(
                    (
                        (position, fault)
                        for position, fault in indexed
                        if fault.node == node
                    ),
                    key=lambda pair: (
                        pair[1].start,
                        type(pair[1]).__name__,
                        pair[0],
                    ),
                )
            ]
            for node in known_nodes
        }

    def pristine_specs(self, simulation: ClusterSimulation) -> dict:
        """Snapshot the undegraded node specs; validates fault targets."""
        pristine = {
            name: node.spec for name, node in simulation.nodes.items()
        }
        missing = set(self._by_node) - set(pristine)
        if missing:
            raise ValueError(f"Faults target unknown nodes: {sorted(missing)}.")
        return pristine

    def apply_tick(
        self, simulation: ClusterSimulation, pristine: dict, t: int
    ) -> None:
        """Install the composed degraded specs for tick ``t``."""
        for node_name, faults in self._by_node.items():
            spec = pristine[node_name]
            for fault in faults:
                if fault.active(t):
                    spec = fault.apply(spec)
                    obs.inc("faults.active_fault_ticks")
            simulation.nodes[node_name].spec = spec

    @staticmethod
    def restore(simulation: ClusterSimulation, pristine: dict) -> None:
        """Reinstall the pristine specs captured by :meth:`pristine_specs`."""
        for node_name, spec in pristine.items():
            simulation.nodes[node_name].spec = spec

    def run(
        self, simulation: ClusterSimulation, workloads: dict[str, np.ndarray]
    ) -> SimulationResult:
        """Run all ticks of ``workloads`` under the fault schedule."""
        lengths = {len(series) for series in workloads.values()}
        if len(lengths) != 1:
            raise ValueError("All workload series must have equal length.")
        duration = lengths.pop()
        pristine = self.pristine_specs(simulation)

        # The tick loop swaps degraded specs in before every step, so a
        # step that raises mid-run (bad arrival value, engine assertion)
        # would otherwise leave the simulation permanently degraded;
        # restore pristine capacity whichever way the loop exits.
        obs.inc("faults.runs")
        try:
            with obs.trace("faults.run"):
                for t in range(duration):
                    self.apply_tick(simulation, pristine, t)
                    simulation.step(
                        {app: float(series[t]) for app, series in workloads.items()}
                    )
        finally:
            self.restore(simulation, pristine)
        return simulation.result()


def _dropout_seed(seed: int, stream: str) -> int:
    """Stable 64-bit RNG seed for one (dropout seed, stream) pair.

    Python's builtin ``hash()`` is salted by ``PYTHONHASHSEED`` and so
    differs between processes -- which silently made dropout masks
    differ across runs and across ``n_jobs`` workers.  A keyed blake2b
    digest is identical everywhere.
    """
    digest = hashlib.blake2b(
        f"{seed}:{stream}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class MetricDropout:
    """Telemetry agent wrapper: a fraction of readings go missing.

    Missing readings repeat the previous observed value (sample-and-
    hold), matching how scrape-based collectors surface gaps.  The
    dropout pattern is deterministic given the seed: masks are derived
    via a stable content hash (never Python's salted ``hash()``), so
    two processes with different ``PYTHONHASHSEED`` values -- including
    ``parallel_map`` workers -- produce bitwise-identical matrices.
    """

    def __init__(self, agent, probability: float, seed: int = 0):
        """``agent`` is a :class:`repro.telemetry.agent.TelemetryAgent`
        (kept duck-typed to avoid a cluster->telemetry import cycle).

        ``probability=1.0`` is permitted and means every reading after
        the first is lost -- the degenerate total-blackout case the
        resilience layer must survive.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1].")
        self.agent = agent
        self.probability = probability
        self.seed = seed
        self.catalog = agent.catalog  # quacks like a TelemetryAgent

    def _apply_dropout(self, matrix: np.ndarray, stream: str) -> np.ndarray:
        if self.probability == 0.0:
            return matrix
        rng = np.random.default_rng(_dropout_seed(self.seed, stream))
        dropped = rng.random(matrix.shape) < self.probability
        dropped[0] = False  # the first sample always exists
        if obs.enabled():
            obs.inc("faults.dropout_matrices")
            obs.inc("faults.readings_dropped", float(dropped.sum()))
        result = matrix.copy()
        for t in range(1, result.shape[0]):
            row_dropped = dropped[t]
            result[t, row_dropped] = result[t - 1, row_dropped]
        return result

    def instance_matrix(self, container, nodes, start=None, end=None):
        matrix = self.agent.instance_matrix(container, nodes, start, end)
        return self._apply_dropout(matrix, container.name)

    def utilization_series(self, container, nodes):
        cpu, mem = self.agent.utilization_series(container, nodes)
        stacked = self._apply_dropout(
            np.column_stack([cpu, mem]), f"util:{container.name}"
        )
        return stacked[:, 0], stacked[:, 1]

    def host_state(self, node, start, end):
        return self.agent.host_state(node, start, end)

    def container_state(self, container, node, start, end):
        return self.agent.container_state(container, node, start, end)

    def open_stream(self, container, nodes, start=None, history=16):
        """Streaming counterpart of :meth:`instance_matrix` dropout.

        Wraps the inner agent's :class:`InstanceTelemetryStream` and
        applies sample-and-hold dropout row by row.  Masks are drawn
        from the same ``blake2b(seed:container)`` RNG as the batch
        path, one row per emit, so a stream opened at the container's
        creation tick reproduces the batch dropout matrix row for row
        -- bitwise with ``convert_counters=False``; with counter-rate
        conversion the underlying streams already differ at the first
        tick (the documented non-causal backfill), and sample-and-hold
        carries that one divergence along the held counter columns.
        """
        inner = self.agent.open_stream(
            container, nodes, start=start, history=history
        )
        return _DropoutInstanceStream(self, inner)


class _DropoutInstanceStream:
    """Per-tick sample-and-hold dropout over an instance stream."""

    def __init__(self, dropout: MetricDropout, inner):
        self._dropout = dropout
        self.inner = inner
        self._rng = np.random.default_rng(
            _dropout_seed(dropout.seed, inner.container.name)
        )
        self._held: np.ndarray | None = None

    @property
    def container(self):
        return self.inner.container

    @property
    def tail(self):
        return self.inner.tail

    @property
    def clock(self) -> int:
        return self.inner.clock

    def emit(self) -> np.ndarray:
        row = self.inner.emit()
        probability = self._dropout.probability
        if probability == 0.0:
            self._held = row
            return row
        # One row of uniforms per emit: numpy fills random((T, k)) in
        # C order, so consecutive random(k) draws reproduce the batch
        # path's per-row masks exactly.
        dropped = self._rng.random(row.shape) < probability
        if self._held is None:
            dropped[:] = False  # the first sample always exists
        if dropped.any():
            row = row.copy()
            row[dropped] = self._held[dropped]
            self.inner.tail.amend_last(
                row, completeness=1.0 - float(dropped.mean())
            )
            if obs.enabled():
                obs.inc("faults.readings_dropped", float(dropped.sum()))
        self._held = row  # held values chain, as in the batch path
        return row

    def skip(self) -> None:
        # A skipped tick draws no mask: nothing was scraped at all.
        self.inner.skip()

    def advance_to(self, end: int) -> np.ndarray | None:
        row = None
        while self.clock < end:
            row = self.emit()
        return row
