"""cgroup accounting for simulated containers.

Models the two control groups the paper's configurations use
(Table 1's ``CPU, MEM`` column): the CFS CPU quota and the memory
limit.  The observable side effects match Linux semantics:

- **CPU**: CFS enforces the quota in 100 ms periods, so a container
  whose demand exceeds its quota sees up to 10 throttled periods per
  second (``cgroup.cpusched.throttled``), and its usable CPU is capped.
- **Memory**: a container at its memory limit cannot grow its page
  cache; the overflow working set turns into page-in traffic against
  the disk (thrashing), which is how Memcache with an 8 GB limit
  becomes IO-queue-bound in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CpuCgroup", "MemoryCgroup", "CFS_PERIODS_PER_SECOND"]

CFS_PERIODS_PER_SECOND = 10  # Linux default: 100 ms CFS periods


@dataclass(slots=True)
class CpuAccounting:
    """Per-tick CPU accounting snapshot."""

    demand_cores: float
    used_cores: float
    quota_cores: float | None
    nr_periods: int
    nr_throttled: int

    @property
    def quota_utilization(self) -> float:
        """Usage relative to the container's own allocation (0-100).

        This is the paper's ``C-CPU`` utilization: "CPU-time relative
        to the allocated maximum" (section 2.3).
        """
        if self.quota_cores is None or self.quota_cores <= 0:
            return 0.0
        return min(100.0, 100.0 * self.used_cores / self.quota_cores)


class CpuCgroup:
    """CFS bandwidth controller for one container.

    ``quota_cores=None`` means unlimited (no ``cpu.cfs_quota_us``).
    """

    def __init__(self, quota_cores: float | None = None):
        if quota_cores is not None and quota_cores <= 0:
            raise ValueError("quota_cores must be positive or None.")
        self.quota_cores = quota_cores
        self.total_periods = 0
        self.total_throttled = 0

    def effective_limit(self, node_share: float) -> float:
        """Usable cores this tick given the node's fair share."""
        if self.quota_cores is None:
            return node_share
        return min(self.quota_cores, node_share)

    def account(self, demand_cores: float, node_share: float) -> CpuAccounting:
        """Run one 1-second tick of CFS accounting."""
        if demand_cores < 0:
            raise ValueError("demand_cores must be non-negative.")
        limit = self.effective_limit(node_share)
        used = min(demand_cores, limit)
        nr_periods = CFS_PERIODS_PER_SECOND
        if self.quota_cores is not None and demand_cores > self.quota_cores:
            # Fraction of periods in which the quota ran out, scaled by
            # how far over quota the demand is (mirrors CFS behaviour
            # where modest overshoot throttles only some periods).
            overshoot = min(1.0, (demand_cores - self.quota_cores) / self.quota_cores)
            nr_throttled = int(math.ceil(overshoot * CFS_PERIODS_PER_SECOND))
        else:
            nr_throttled = 0
        self.total_periods += nr_periods
        self.total_throttled += nr_throttled
        return CpuAccounting(
            demand_cores=demand_cores,
            used_cores=used,
            quota_cores=self.quota_cores,
            nr_periods=nr_periods,
            nr_throttled=nr_throttled,
        )


@dataclass(slots=True)
class MemoryAccounting:
    """Per-tick memory accounting snapshot."""

    usage_bytes: float
    limit_bytes: float | None
    resident_working_set: float
    page_in_bytes: float  # thrashing traffic hitting the disk

    @property
    def limit_utilization(self) -> float:
        """Usage relative to the limit (0-100); 0 when unlimited."""
        if self.limit_bytes is None or self.limit_bytes <= 0:
            return 0.0
        return min(100.0, 100.0 * self.usage_bytes / self.limit_bytes)


class MemoryCgroup:
    """Memory limit with page-cache displacement semantics.

    A service has a base footprint (heap, code) plus a *working set*
    it would like to keep cached (e.g. Solr's 12 GB index).  Under an
    unlimited cgroup the working set is fully resident; under a limit,
    the resident portion shrinks and every access to the evicted
    portion becomes page-in disk traffic.
    """

    def __init__(self, limit_bytes: float | None = None):
        if limit_bytes is not None and limit_bytes <= 0:
            raise ValueError("limit_bytes must be positive or None.")
        self.limit_bytes = limit_bytes

    def account(
        self,
        base_bytes: float,
        working_set_bytes: float,
        access_bytes_per_second: float,
    ) -> MemoryAccounting:
        """One tick of accounting.

        ``access_bytes_per_second`` is how much of the working set the
        service touches this tick; the evicted fraction of those
        accesses page in from disk.
        """
        if min(base_bytes, working_set_bytes, access_bytes_per_second) < 0:
            raise ValueError("Memory quantities must be non-negative.")
        if self.limit_bytes is None:
            resident = working_set_bytes
            usage = base_bytes + working_set_bytes
            page_in = 0.0
        else:
            available_for_cache = max(0.0, self.limit_bytes - base_bytes)
            resident = min(working_set_bytes, available_for_cache)
            usage = min(base_bytes + resident, self.limit_bytes)
            if working_set_bytes > 0:
                miss_ratio = 1.0 - resident / working_set_bytes
            else:
                miss_ratio = 0.0
            page_in = access_bytes_per_second * miss_ratio
        return MemoryAccounting(
            usage_bytes=usage,
            limit_bytes=self.limit_bytes,
            resident_working_set=resident,
            page_in_bytes=page_in,
        )
