"""Prediction-vs-outcome agreement over ground-truth-delayed windows.

Saturation ground truth (did the application actually violate its SLO
around tick ``t``?) only becomes known ``label_delay`` ticks after the
prediction was served.  :class:`ModelPerformanceTracker` buffers each
tick's verdict, accepts the outcome when the driver learns it, and
maintains rolling agreement over the last ``window`` resolved ticks --
the model-health signal that catches a *silently stale* model even
when the feature distribution looks unremarkable.
"""

from __future__ import annotations

from collections import deque

from repro import obs

__all__ = ["ModelPerformanceTracker"]


class ModelPerformanceTracker:
    """Rolling agreement between served verdicts and delayed outcomes."""

    def __init__(
        self,
        *,
        window: int = 120,
        min_agreement: float = 0.7,
        min_resolved: int = 20,
    ):
        if window < 1:
            raise ValueError("window must be >= 1.")
        if not 0.0 <= min_agreement <= 1.0:
            raise ValueError("min_agreement must be in [0, 1].")
        self.window = window
        self.min_agreement = min_agreement
        self.min_resolved = min_resolved
        self._pending: dict[int, bool] = {}
        self._resolved: deque[bool] = deque(maxlen=window)
        self.resolved_total = 0

    def record(self, t: int, predicted: bool) -> None:
        """Buffer the verdict served at tick ``t``."""
        self._pending[t] = bool(predicted)

    def resolve(self, t: int, outcome: bool) -> bool | None:
        """Settle tick ``t`` against its ground-truth outcome.

        Returns whether the prediction agreed, or ``None`` when no
        verdict was recorded for that tick (e.g. the policy had no
        feature rows yet).
        """
        predicted = self._pending.pop(t, None)
        if predicted is None:
            return None
        agreed = predicted == bool(outcome)
        self._resolved.append(agreed)
        self.resolved_total += 1
        if obs.enabled():
            agreement = self.agreement()
            if agreement is not None:
                obs.set_gauge("lifecycle.agreement", agreement)
        return agreed

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def agreement(self) -> float | None:
        """Mean agreement over the rolling window; ``None`` while the
        window holds fewer than ``min_resolved`` settled ticks."""
        if len(self._resolved) < self.min_resolved:
            return None
        return sum(self._resolved) / len(self._resolved)

    def healthy(self) -> bool:
        """False once rolling agreement drops below ``min_agreement``.

        Insufficient evidence (fewer than ``min_resolved`` resolved
        ticks) counts as healthy -- an empty window is not a failing
        model.
        """
        agreement = self.agreement()
        return agreement is None or agreement >= self.min_agreement

    def reset(self) -> None:
        """Forget everything (a new champion starts with a clean slate)."""
        self._pending.clear()
        self._resolved.clear()
