"""Drift-triggered challenger retraining.

The retrain corpus is assembled from up to two sources:

- the **recent stream**: every clean engineered feature batch the
  serving policy classified is buffered (:class:`StreamWindow`); rows
  whose ground-truth outcome has arrived are labeled with it.  This is
  the freshest picture of the shifted distribution, already in the
  champion's frozen feature space;
- **interference scenarios**: the opt-in neighbour-contention corpora
  of :mod:`repro.datasets.interference`, generated through
  ``build_training_corpus``'s interference mix-in on ``parallel_map``
  (bitwise identical at every ``n_jobs``) and pushed through the
  champion's fitted pipeline.

The challenger is produced with
:meth:`~repro.core.model.MonitorlessModel.refit_classifier`: the
feature pipeline is **frozen within a lineage** -- only the classifier
is refitted -- so champion and challenger score the *same* engineered
batch during shadow serving and every per-container pipeline stream
survives a promotion untouched.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.lifecycle.registry import corpus_fingerprint

__all__ = ["StreamWindow", "RetrainConfig", "Retrainer"]


class StreamWindow:
    """Rolling buffer of recent clean engineered feature batches.

    One entry per tick (the policy's whole classified batch, copied --
    the fleet path reuses its feature matrix in place).  Capacity
    bounds memory at O(capacity x batch x features).
    """

    def __init__(self, capacity: int = 240):
        if capacity < 1:
            raise ValueError("capacity must be >= 1.")
        self.capacity = capacity
        self._ticks: deque[tuple[int, np.ndarray]] = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._ticks)

    @property
    def row_count(self) -> int:
        return sum(batch.shape[0] for _, batch in self._ticks)

    def push(self, t: int, features: np.ndarray) -> None:
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        if features.shape[0] == 0:
            return
        self._ticks.append((t, features.copy()))

    def labeled(
        self, outcomes: dict[int, bool]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stack the buffered ticks whose outcome is known.

        Every row of tick ``t`` inherits the application-level outcome
        at ``t`` (did the SLO hold?), the same labeling rule the
        original corpus derives from its calibrated thresholds.
        """
        parts_X: list[np.ndarray] = []
        parts_y: list[np.ndarray] = []
        for t, batch in self._ticks:
            outcome = outcomes.get(t)
            if outcome is None:
                continue
            parts_X.append(batch)
            parts_y.append(
                np.full(batch.shape[0], int(bool(outcome)), dtype=np.int64)
            )
        if not parts_X:
            n_features = (
                self._ticks[0][1].shape[1] if self._ticks else 0
            )
            return np.empty((0, n_features)), np.empty(0, dtype=np.int64)
        return np.vstack(parts_X), np.concatenate(parts_y)

    def clear(self) -> None:
        self._ticks.clear()


@dataclass
class RetrainConfig:
    """Knobs of one retraining round."""

    use_stream: bool = True
    min_rows: int = 60  # refuse to retrain on less labeled evidence
    #: Interference scenarios mixed into the retrain corpus (see
    #: :data:`repro.datasets.interference.INTERFERENCE_SCENARIOS`);
    #: empty means stream-only retraining.
    interference_scenarios: tuple = ()
    interference_duration: int = 120
    calibration_duration: int = 100
    seed: int = 0
    n_jobs: int | None = None
    #: Overrides for the challenger's classifier (e.g. fewer trees for
    #: a fast shadow candidate); merged over the champion's params.
    classifier_params: dict = field(default_factory=dict)


class Retrainer:
    """Builds a challenger from the recent stream + optional corpora."""

    def __init__(self, config: RetrainConfig | None = None):
        self.config = config or RetrainConfig()

    @property
    def wants_stream(self) -> bool:
        return self.config.use_stream

    def retrain(
        self, champion, stream: StreamWindow | None, outcomes: dict[int, bool]
    ):
        """Fit a challenger; returns ``(model, info)`` or ``None``.

        ``None`` means not enough labeled evidence yet -- the caller
        keeps serving the champion and may try again later.
        """
        config = self.config
        with obs.trace("lifecycle.retrain"):
            parts_X: list[np.ndarray] = []
            parts_y: list[np.ndarray] = []
            stream_rows = 0
            if config.use_stream and stream is not None:
                X_stream, y_stream = stream.labeled(outcomes)
                stream_rows = int(X_stream.shape[0])
                if stream_rows:
                    parts_X.append(X_stream)
                    parts_y.append(y_stream)
            corpus_rows = 0
            if config.interference_scenarios:
                from repro.datasets.generate import build_training_corpus

                corpus = build_training_corpus(
                    duration=config.interference_duration,
                    calibration_duration=config.calibration_duration,
                    seed=config.seed,
                    runs=[],
                    interference_scenarios=list(config.interference_scenarios),
                    n_jobs=config.n_jobs,
                )
                engineered = champion.transform(
                    corpus.X, corpus.meta, corpus.groups
                )
                corpus_rows = int(engineered.shape[0])
                parts_X.append(engineered)
                parts_y.append(corpus.y.astype(np.int64))
            total = stream_rows + corpus_rows
            if total < config.min_rows:
                return None
            X = np.vstack(parts_X)
            y = np.concatenate(parts_y)
            if y.min() == y.max():
                # Single-class evidence cannot train a detector; wait
                # for the stream to contain both healthy and degraded
                # ticks.
                return None
            challenger = champion.refit_classifier(
                X, y, classifier_params=config.classifier_params
            )
        obs.inc("lifecycle.retrains")
        info = {
            "corpus_fingerprint": corpus_fingerprint(X, y),
            "stream_rows": stream_rows,
            "corpus_rows": corpus_rows,
            "positive_fraction": float(y.mean()),
        }
        return challenger, info
