"""The deterministic end-to-end drift scenario.

A TeaStore closed loop serves at a *stationary* arrival plateau with a
solo-trained champion, then two distribution shifts hit mid-run at the
onset tick:

- a **membw antagonist** (:mod:`repro.apps.antagonist`) co-located
  with the db/persistence tier starts hammering shared memory
  bandwidth in bursts (``antagonist_duty`` of every
  ``antagonist_period`` ticks) -- the kind of neighbour-caused
  degradation the solo corpus never contained (PR 9's transfer eval
  measures exactly this gap).  The bursts matter: they interleave
  violated and healthy ticks, so a challenger that *recognizes* the
  squeeze can beat a champion that merely cries wolf;
- the **workload steps up**: the plateau is multiplied by
  ``shift_multiplier`` from the onset on.

The pre-onset plateau is what makes detection meaningful -- the
detector's frozen reference actually represents "before", so the
alarm tick lands after the onset, not wherever a ramp happened to
drift past the reference.

The attached :class:`~repro.lifecycle.manager.LifecycleManager` must
then detect the feature-distribution drift within its configured
window, retrain a challenger on the recent stream (plus optional
interference corpora), shadow-evaluate it walk-forward, and promote it
-- producing a promotion history that is bitwise identical at every
``n_jobs`` and across a mid-run kill-and-resume
(:class:`DriftScenarioRunner.resume` over an orchestrator checkpoint,
which snapshots the manager, registry and detector state wholesale).

Every quantity is keyed by tick; nothing reads the wall clock.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro import obs
from repro.lifecycle.drift import DriftDetector
from repro.lifecycle.manager import LifecycleManager
from repro.lifecycle.registry import ModelRegistry
from repro.lifecycle.retrain import RetrainConfig, Retrainer
from repro.lifecycle.shadow import ShadowEvaluator
from repro.lifecycle.tracker import ModelPerformanceTracker
from repro.orchestrator.slo import slo_violations

__all__ = [
    "DriftScenarioConfig",
    "DriftScenarioResult",
    "DriftScenarioRunner",
    "antagonist_active",
    "run_drift_scenario",
    "scenario_workload",
]


@dataclass
class DriftScenarioConfig:
    """Knobs of the seeded drift scenario (all ticks, never seconds)."""

    duration: int = 360
    seed: int = 0
    #: Antagonist squeezing the db/persistence node in bursts
    #: (``duty`` of every ``period`` ticks) from the onset tick on.
    antagonist: str | None = "membw"
    antagonist_rate: float = 100.0
    antagonist_node: str = "M2"
    antagonist_intensity: float = 1.0
    antagonist_period: int = 40
    antagonist_duty: float = 0.5
    onset_fraction: float = 0.45
    #: The stationary plateau (requests/s) and its post-onset step.
    workload_rate: float = 140.0
    shift_multiplier: float = 1.2
    # --- drift detector ------------------------------------------------
    # Window sizes are in *rows*, and the policy observes one row per
    # container per tick (~7-13 for TeaStore with scale-out replicas).
    # Null-hypothesis PSI decays like (bins-1)(1/n_live + 1/n_ref);
    # these sizes keep it far below the 0.25 alarm threshold, and the
    # live window spans about two antagonist periods so the on/off
    # mixture does not wobble the post-promotion reference.
    n_bins: int = 10
    drift_window: int = 800
    reference_rows: int = 800
    drift_min_rows: int = 400
    psi_threshold: float = 0.25
    ks_threshold: float = 0.35
    min_features: int = 8
    patience: int = 3
    # --- tracker / shadow ----------------------------------------------
    # The solo champion chronically over-flags this plateau (its corpus
    # never contained TeaStore at steady state), so rolling agreement
    # is pinned low from the start and is not a usable *trigger* here:
    # the scenario keeps the tracker observational (min_agreement 0)
    # and exercises the drift-alarm trigger; the agreement trigger is
    # covered by unit tests.
    tracker_window: int = 120
    min_agreement: float = 0.0
    shadow_window: int = 24
    wins_required: int = 2
    #: Near-ties go to the champion: a late-run challenger retrained
    #: off the oscillating post-onset mixture scores within a point of
    #: the promoted champion, and without a margin it could flap the
    #: deployment on luck.
    min_margin: float = 0.05
    # --- retraining ----------------------------------------------------
    label_delay: int = 3
    retrain_cooldown: int = 40
    shadow_patience: int = 6
    stream_capacity: int = 240
    retrain_min_rows: int = 60
    #: Interference scenario ids (from
    #: :data:`repro.datasets.interference.INTERFERENCE_SCENARIOS`) mixed
    #: into the retrain corpus; empty keeps retraining stream-only.
    interference_scenario_ids: tuple = ()
    interference_duration: int = 120
    calibration_duration: int = 100
    n_jobs: int | None = None
    #: ``False`` runs the identical loop with no manager attached --
    #: the baseline for the "shadow serving never perturbs the
    #: champion" contract and for costing the lifecycle overhead.
    lifecycle_enabled: bool = True

    @property
    def onset_tick(self) -> int:
        return int(round(self.onset_fraction * self.duration))


@dataclass
class DriftScenarioResult:
    """Everything the scenario produced, promotion history first."""

    duration: int
    seed: int
    onset_tick: int
    detection_tick: int | None
    retrain_tick: int | None
    promotion_tick: int | None
    champion_version: int
    history: list = field(default_factory=list)
    registry_events: list = field(default_factory=list)
    lineage: list = field(default_factory=list)
    violations: int = 0
    scale_outs: int = 0
    resumed_from_tick: int | None = None

    @property
    def promoted(self) -> bool:
        return self.promotion_tick is not None

    def promotion_history(self) -> dict:
        """The reproducibility artifact: compared bitwise across
        ``n_jobs`` values and kill-and-resume replays."""
        return {
            "history": list(self.history),
            "events": list(self.registry_events),
            "lineage": [
                {k: record[k] for k in sorted(record)}
                for record in self.lineage
            ],
        }

    def to_dict(self) -> dict:
        return asdict(self)


def scenario_workload(config: DriftScenarioConfig) -> np.ndarray:
    """The stepped arrival plateau (requests/s per tick)."""
    shifted = np.full(config.duration, config.workload_rate, dtype=np.float64)
    shifted[config.onset_tick:] *= config.shift_multiplier
    return shifted


def antagonist_active(config: DriftScenarioConfig, t: int) -> bool:
    """Whether the antagonist burst is on at tick ``t``."""
    if config.antagonist is None or t < config.onset_tick:
        return False
    phase = (t - config.onset_tick) % config.antagonist_period
    return phase < config.antagonist_duty * config.antagonist_period


def _interference_scenarios(ids: tuple):
    from repro.datasets.interference import INTERFERENCE_SCENARIOS

    catalog = {s.scenario_id: s for s in INTERFERENCE_SCENARIOS}
    missing = [i for i in ids if i not in catalog]
    if missing:
        raise ValueError(
            f"Unknown interference scenario ids {missing}; known: "
            f"{sorted(catalog)}."
        )
    return tuple(catalog[i] for i in ids)


def build_manager(
    model, registry, config: DriftScenarioConfig
) -> LifecycleManager:
    """A fully-wired manager from the scenario's knobs."""
    return LifecycleManager(
        model,
        registry=registry,
        detector=DriftDetector(
            n_bins=config.n_bins,
            window=config.drift_window,
            reference_rows=config.reference_rows,
            min_rows=config.drift_min_rows,
            psi_threshold=config.psi_threshold,
            ks_threshold=config.ks_threshold,
            min_features=config.min_features,
            patience=config.patience,
        ),
        tracker=ModelPerformanceTracker(
            window=config.tracker_window,
            min_agreement=config.min_agreement,
        ),
        evaluator=ShadowEvaluator(
            window=config.shadow_window,
            wins_required=config.wins_required,
            min_margin=config.min_margin,
        ),
        retrainer=Retrainer(
            RetrainConfig(
                min_rows=config.retrain_min_rows,
                interference_scenarios=_interference_scenarios(
                    config.interference_scenario_ids
                ),
                interference_duration=config.interference_duration,
                calibration_duration=config.calibration_duration,
                seed=config.seed,
                n_jobs=config.n_jobs,
            )
        ),
        stream_capacity=config.stream_capacity,
        label_delay=config.label_delay,
        retrain_cooldown=config.retrain_cooldown,
        shadow_patience=config.shadow_patience,
    )


class DriftScenarioRunner:
    """Drives the drift scenario tick by tick; checkpoint/resume-able.

    Construction builds the loop (TeaStore on the evaluation cluster,
    scale-outs landing on the antagonist's node, a streaming
    :class:`~repro.orchestrator.policies.MonitorlessPolicy` with the
    lifecycle manager attached) and calls ``start()``;
    :meth:`run_until` then advances it, reporting each tick's SLO
    outcome to the manager and stepping the lifecycle clock.
    :meth:`resume` rebuilds a runner from an orchestrator checkpoint --
    the pickled policy carries the manager, so the lifecycle replays
    from exactly the saved tick.
    """

    def __init__(self, model, registry_dir, config=None):
        from repro.apps.teastore import teastore_application
        from repro.cluster.simulation import ClusterSimulation, Placement
        from repro.datasets.experiments import (
            evaluation_nodes,
            teastore_placements,
        )
        from repro.orchestrator.autoscaler import ScalingRules
        from repro.orchestrator.loop import Orchestrator
        from repro.orchestrator.policies import MonitorlessPolicy
        from repro.telemetry.agent import TelemetryAgent

        self.config = config = config or DriftScenarioConfig()
        self.workload = scenario_workload(config)
        self.manager = (
            build_manager(model, ModelRegistry(registry_dir), config)
            if config.lifecycle_enabled
            else None
        )
        simulation = ClusterSimulation(evaluation_nodes(), seed=config.seed)
        simulation.deploy(teastore_application(), teastore_placements())
        node = config.antagonist_node
        rules = ScalingRules(
            placements={
                "auth": Placement(
                    node=node, cpu_limit=2.0, memory_limit=4 * 2**30
                ),
                "recommender": Placement(
                    node=node, cpu_limit=1.0, memory_limit=4 * 2**30
                ),
                "webui": Placement(
                    node=node, cpu_limit=1.0, memory_limit=4 * 2**30
                ),
            },
            replica_lifespan=120,
            scale_groups=(("auth", "recommender"),),
        )
        policy = MonitorlessPolicy(
            model,
            TelemetryAgent(seed=config.seed),
            window=16,
            streaming=True,
            lifecycle=self.manager,
        )
        self.antagonist_name: str | None = None
        if config.antagonist is not None:
            from repro.apps.antagonist import antagonist_application

            antagonist = antagonist_application(
                config.antagonist, config.antagonist_intensity
            )
            simulation.deploy(
                antagonist,
                {
                    name: [Placement(node=node)]
                    for name in antagonist.services
                },
            )
            self.antagonist_name = antagonist.name
        self.orchestrator = Orchestrator(
            simulation, "teastore", policy, rules
        )
        self.orchestrator.start()
        self.resumed_from_tick: int | None = None

    @classmethod
    def resume(
        cls,
        checkpoint_path,
        config=None,
        *,
        model=None,
        allow_model_swap: bool = False,
    ) -> "DriftScenarioRunner":
        """Continue a checkpointed scenario from its saved tick.

        ``model`` asks to resume serving with that model; the
        checkpoint's fingerprint guard applies (see
        :meth:`~repro.orchestrator.loop.Orchestrator.resume_from`).
        """
        from repro.orchestrator.loop import Orchestrator

        runner = cls.__new__(cls)
        runner.config = config = config or DriftScenarioConfig()
        runner.workload = scenario_workload(config)
        runner.orchestrator = Orchestrator.resume_from(
            checkpoint_path, model=model, allow_model_swap=allow_model_swap
        )
        runner.manager = runner.orchestrator.policy.lifecycle
        if runner.manager is None:
            raise ValueError(
                f"{checkpoint_path} holds no lifecycle manager; it is not "
                "a drift-scenario checkpoint."
            )
        runner.antagonist_name = None
        if config.antagonist is not None:
            from repro.apps.antagonist import antagonist_application

            runner.antagonist_name = antagonist_application(
                config.antagonist, config.antagonist_intensity
            ).name
        runner.resumed_from_tick = runner.t
        return runner

    @property
    def t(self) -> int:
        return self.orchestrator._t

    def _violated(self) -> bool:
        kpis = self.orchestrator.simulation._kpis["teastore"]
        if not kpis["response_time"]:
            return False
        return bool(
            slo_violations(
                np.asarray(kpis["response_time"][-1:]),
                np.asarray(kpis["dropped"][-1:]),
                np.asarray(kpis["offered"][-1:]),
                self.orchestrator.slo,
            ).any()
        )

    def run_until(
        self,
        end: int | None = None,
        *,
        checkpoint_path=None,
        checkpoint_interval: int = 0,
    ) -> int:
        """Advance to tick ``end`` (exclusive; default: the full run).

        With ``checkpoint_path`` and a positive ``checkpoint_interval``
        the whole loop -- manager included -- is snapshotted every
        ``interval`` ticks *after* the lifecycle step, so a resume
        replays from a consistent cut.  Returns the reached tick.
        """
        config = self.config
        stop = config.duration if end is None else min(end, config.duration)
        while self.t < stop:
            t = self.t
            arrivals = {"teastore": float(self.workload[t])}
            if self.antagonist_name is not None and antagonist_active(
                config, t
            ):
                arrivals[self.antagonist_name] = config.antagonist_rate
            self.orchestrator.tick(arrivals)
            if self.manager is not None:
                self.manager.outcome(t, self._violated())
                self.manager.step(t)
            if (
                checkpoint_path is not None
                and checkpoint_interval > 0
                and (t + 1) % checkpoint_interval == 0
            ):
                self.orchestrator.save_checkpoint(checkpoint_path)
        return self.t

    def finish(self) -> DriftScenarioResult:
        """Close the loop and assemble the promotion history."""
        result = self.orchestrator.finish()
        manager = self.manager
        config = self.config
        if manager is None:
            return DriftScenarioResult(
                duration=result.duration,
                seed=config.seed,
                onset_tick=config.onset_tick,
                detection_tick=None,
                retrain_tick=None,
                promotion_tick=None,
                champion_version=1,
                violations=result.slo_violation_count,
                scale_outs=result.total_scale_outs,
                resumed_from_tick=self.resumed_from_tick,
            )

        def first(event: str) -> int | None:
            for entry in manager.history:
                if entry["event"] == event:
                    return int(entry["tick"])
            return None

        if obs.enabled():
            obs.set_gauge(
                "lifecycle.champion_version", manager.champion_version
            )
        return DriftScenarioResult(
            duration=result.duration,
            seed=config.seed,
            onset_tick=config.onset_tick,
            detection_tick=first("drift"),
            retrain_tick=first("retrain"),
            promotion_tick=first("promote"),
            champion_version=manager.champion_version,
            history=list(manager.history),
            registry_events=manager.registry.events,
            lineage=manager.registry.lineage(),
            violations=result.slo_violation_count,
            scale_outs=result.total_scale_outs,
            resumed_from_tick=self.resumed_from_tick,
        )


def run_drift_scenario(
    model,
    registry_dir,
    config: DriftScenarioConfig | None = None,
    *,
    checkpoint_path=None,
    checkpoint_interval: int = 0,
) -> DriftScenarioResult:
    """Build, run and finish the scenario in one call."""
    runner = DriftScenarioRunner(model, registry_dir, config)
    runner.run_until(
        checkpoint_path=checkpoint_path,
        checkpoint_interval=checkpoint_interval,
    )
    return runner.finish()
