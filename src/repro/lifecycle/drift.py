"""Streaming feature-distribution drift detection (PSI + KS).

The serving loop hands :class:`DriftDetector` every engineered feature
batch it classifies; the detector maintains one histogram per feature
over a rolling window of recent *clean* rows (LOCF-imputed and
chaos-blackout rows are excluded entirely, so telemetry loss can never
masquerade as distribution shift) and compares it against a frozen
reference distribution with two complementary statistics:

- **PSI** (population stability index): sensitive to mass moving
  between bins, the standard covariate-shift alarm;
- **KS**: the max CDF gap, sensitive to consistent directional shift
  even when per-bin mass changes are small.

Everything is incremental: each clean row is binned once (O(features x
bins) broadcast compare), pushed into a ring buffer of bin codes, and
the per-feature counts are updated by +-1 -- no window rescan, ever.
The statistics themselves are computed from the counts on demand.

Bin edges come from per-feature reference quantiles and rows are
binned by the same ``>=`` rule on both sides, so a zero-variance
feature lands its entire mass -- reference and live alike -- in one
bin and contributes exactly 0 PSI (constant features can never alarm).

The alarm requires ``min_features`` simultaneously shifted features
for ``patience`` consecutive checks over at least ``min_rows`` live
rows: single-feature noise, near-empty windows and one-tick blips all
stay quiet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs

__all__ = [
    "quantile_edges",
    "bin_rows",
    "bin_counts",
    "psi_from_counts",
    "ks_from_counts",
    "batch_psi",
    "batch_ks",
    "StreamingHistograms",
    "DriftStatus",
    "DriftDetector",
]

#: Probability floor under the PSI log ratio; empty bins contribute a
#: large-but-finite surprise instead of an infinity.
PSI_EPSILON = 1e-4


# ----------------------------------------------------------------------
# Histogram primitives (shared by the streaming and batch paths)
# ----------------------------------------------------------------------
def quantile_edges(reference: np.ndarray, n_bins: int) -> np.ndarray:
    """Per-feature interior bin edges from reference quantiles.

    Returns ``(n_features, n_bins - 1)``.  Duplicate edges (discrete or
    constant features) are legal: the ``>=`` binning rule then simply
    leaves some bins structurally empty on both sides.
    """
    reference = np.asarray(reference, dtype=np.float64)
    if reference.ndim != 2 or reference.shape[0] < 1:
        raise ValueError("reference must be a non-empty (rows, features) matrix.")
    if n_bins < 2:
        raise ValueError("n_bins must be >= 2.")
    quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    return np.quantile(reference, quantiles, axis=0).T.copy()


def bin_rows(rows: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Bin codes in ``[0, n_bins)`` for each (row, feature) cell.

    A value lands in bin ``sum(value >= edges)`` -- identical on the
    reference and live sides, which is what makes constant features
    PSI-neutral by construction.
    """
    rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
    return (rows[:, :, None] >= edges[None, :, :]).sum(axis=2, dtype=np.int64)


def bin_counts(codes: np.ndarray, n_features: int, n_bins: int) -> np.ndarray:
    """Per-feature histogram counts ``(n_features, n_bins)`` from codes."""
    offsets = codes + np.arange(n_features, dtype=np.int64) * n_bins
    return np.bincount(
        offsets.ravel(), minlength=n_features * n_bins
    ).reshape(n_features, n_bins)


def psi_from_counts(
    reference: np.ndarray, live: np.ndarray, epsilon: float = PSI_EPSILON
) -> np.ndarray:
    """Per-feature PSI between two count matrices ``(features, bins)``.

    A side with zero total rows contributes no evidence: the result is
    all zeros rather than a spurious maximal shift.
    """
    ref_total = reference.sum(axis=1, keepdims=True)
    live_total = live.sum(axis=1, keepdims=True)
    if not ref_total.any() or not live_total.any():
        return np.zeros(reference.shape[0])
    p = np.maximum(reference / ref_total, epsilon)
    q = np.maximum(live / live_total, epsilon)
    return ((q - p) * np.log(q / p)).sum(axis=1)


def ks_from_counts(reference: np.ndarray, live: np.ndarray) -> np.ndarray:
    """Per-feature KS statistic (max CDF gap) between count matrices."""
    ref_total = reference.sum(axis=1, keepdims=True)
    live_total = live.sum(axis=1, keepdims=True)
    if not ref_total.any() or not live_total.any():
        return np.zeros(reference.shape[0])
    ref_cdf = np.cumsum(reference, axis=1) / ref_total
    live_cdf = np.cumsum(live, axis=1) / live_total
    return np.abs(ref_cdf - live_cdf).max(axis=1)


def batch_psi(
    reference: np.ndarray, live: np.ndarray, n_bins: int = 10
) -> np.ndarray:
    """One-shot per-feature PSI between two raw sample matrices.

    The reference implementation the streaming path is tested against:
    edges from reference quantiles, both sides binned by the same rule.
    """
    edges = quantile_edges(reference, n_bins)
    n_features = edges.shape[0]
    ref_counts = bin_counts(bin_rows(reference, edges), n_features, n_bins)
    live_counts = bin_counts(bin_rows(live, edges), n_features, n_bins)
    return psi_from_counts(ref_counts, live_counts)


def batch_ks(
    reference: np.ndarray, live: np.ndarray, n_bins: int = 10
) -> np.ndarray:
    """One-shot per-feature binned KS between two raw sample matrices."""
    edges = quantile_edges(reference, n_bins)
    n_features = edges.shape[0]
    ref_counts = bin_counts(bin_rows(reference, edges), n_features, n_bins)
    live_counts = bin_counts(bin_rows(live, edges), n_features, n_bins)
    return ks_from_counts(ref_counts, live_counts)


class StreamingHistograms:
    """Rolling per-feature histograms over the last ``window`` rows.

    Pushing a row costs one binning pass plus two O(features) count
    updates (increment the new codes, decrement the evicted row's);
    the counts matrix is always exactly the histogram of the retained
    window, bitwise independent of push order history.
    """

    def __init__(self, edges: np.ndarray, window: int):
        if window < 1:
            raise ValueError("window must be >= 1.")
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 2:
            raise ValueError("edges must be (n_features, n_bins - 1).")
        self.edges = edges
        self.window = window
        self.n_features = edges.shape[0]
        self.n_bins = edges.shape[1] + 1
        self._codes = np.zeros((window, self.n_features), dtype=np.int64)
        self._total = 0
        self.counts = np.zeros((self.n_features, self.n_bins), dtype=np.int64)
        self._feature_index = np.arange(self.n_features)

    def __len__(self) -> int:
        """Rows currently retained (<= window)."""
        return min(self._total, self.window)

    @property
    def total(self) -> int:
        """Rows ever pushed, including evicted ones."""
        return self._total

    def push(self, row: np.ndarray) -> None:
        """Add one clean row, evicting the oldest once at capacity."""
        codes = bin_rows(row[None, :], self.edges)[0]
        slot = self._total % self.window
        if self._total >= self.window:
            self.counts[self._feature_index, self._codes[slot]] -= 1
        self._codes[slot] = codes
        self.counts[self._feature_index, codes] += 1
        self._total += 1

    def push_many(self, rows: np.ndarray) -> None:
        rows = np.atleast_2d(rows)
        for row in rows:
            self.push(row)

    def reset(self) -> None:
        self._codes[:] = 0
        self.counts[:] = 0
        self._total = 0


@dataclass
class DriftStatus:
    """One :meth:`DriftDetector.check` verdict."""

    drifted: bool
    n_rows: int  # clean rows in the live window
    features_shifted: int  # features over either threshold
    consecutive: int  # consecutive over-threshold checks
    psi_max: float = 0.0
    ks_max: float = 0.0
    psi: np.ndarray | None = field(default=None, repr=False)
    ks: np.ndarray | None = field(default=None, repr=False)


class DriftDetector:
    """Completeness-aware streaming covariate-shift alarm.

    Reference acquisition is streaming too: until ``reference_rows``
    clean rows have arrived, :meth:`update` accumulates them as the
    reference sample (the healthy warm-up window); the quantile edges
    and reference histogram are then frozen and subsequent rows feed
    the rolling live window.  Pass a matrix to :meth:`fit_reference`
    instead to seed the reference from held-out data (e.g. the
    training corpus).

    ``update`` takes an optional per-row completeness vector (fraction
    in [0, 1], as carried by the telemetry layer); rows under
    ``completeness_threshold`` never touch reference or live windows.
    """

    def __init__(
        self,
        *,
        n_bins: int = 10,
        window: int = 96,
        reference_rows: int = 96,
        min_rows: int = 32,
        psi_threshold: float = 0.25,
        ks_threshold: float = 0.35,
        min_features: int = 4,
        patience: int = 3,
        completeness_threshold: float = 1.0,
    ):
        if min_rows < 1:
            raise ValueError("min_rows must be >= 1.")
        if min_features < 1:
            raise ValueError("min_features must be >= 1.")
        if patience < 1:
            raise ValueError("patience must be >= 1.")
        self.n_bins = n_bins
        self.window = window
        self.reference_rows = reference_rows
        self.min_rows = min_rows
        self.psi_threshold = psi_threshold
        self.ks_threshold = ks_threshold
        self.min_features = min_features
        self.patience = patience
        self.completeness_threshold = completeness_threshold
        self._reference_buffer: list[np.ndarray] = []
        self._reference_counts: np.ndarray | None = None
        self.live: StreamingHistograms | None = None
        self._consecutive = 0
        self.rows_skipped = 0

    @property
    def fitted(self) -> bool:
        """Whether the reference distribution is frozen."""
        return self._reference_counts is not None

    def fit_reference(self, reference: np.ndarray) -> "DriftDetector":
        """Freeze the reference distribution from a sample matrix."""
        reference = np.atleast_2d(np.asarray(reference, dtype=np.float64))
        edges = quantile_edges(reference, self.n_bins)
        self._reference_counts = bin_counts(
            bin_rows(reference, edges), edges.shape[0], self.n_bins
        )
        self.live = StreamingHistograms(edges, self.window)
        self._reference_buffer = []
        self._consecutive = 0
        return self

    def reset_reference(self) -> None:
        """Drop reference and live state; re-collect from the stream.

        Called after a model promotion: the new champion was trained on
        the shifted distribution, so the old reference would keep the
        alarm latched forever.  The next ``reference_rows`` clean rows
        become the new healthy baseline.
        """
        self._reference_buffer = []
        self._reference_counts = None
        self.live = None
        self._consecutive = 0

    def _clean_rows(
        self, rows: np.ndarray, completeness
    ) -> np.ndarray:
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if completeness is None:
            return rows
        completeness = np.asarray(completeness, dtype=np.float64).ravel()
        if completeness.size != rows.shape[0]:
            raise ValueError(
                f"completeness has {completeness.size} entries for "
                f"{rows.shape[0]} rows."
            )
        clean = completeness >= self.completeness_threshold
        self.rows_skipped += int((~clean).sum())
        return rows[clean]

    def update(self, rows: np.ndarray, completeness=None) -> None:
        """Feed one tick's feature rows (plus optional completeness)."""
        rows = self._clean_rows(rows, completeness)
        if rows.shape[0] == 0:
            return
        if not self.fitted:
            self._reference_buffer.append(rows.copy())
            collected = sum(part.shape[0] for part in self._reference_buffer)
            if collected >= self.reference_rows:
                self.fit_reference(np.vstack(self._reference_buffer))
            return
        self.live.push_many(rows)

    def check(self) -> DriftStatus:
        """Evaluate the alarm; O(features x bins), safe to call per tick.

        Never alarms before the reference is frozen or while the live
        window holds fewer than ``min_rows`` clean rows -- an
        all-imputed stretch (chaos blackout) empties the evidence
        rather than tripping the alarm.
        """
        if not self.fitted or len(self.live) < self.min_rows:
            self._consecutive = 0
            return DriftStatus(
                drifted=False,
                n_rows=0 if self.live is None else len(self.live),
                features_shifted=0,
                consecutive=0,
            )
        psi = psi_from_counts(self._reference_counts, self.live.counts)
        ks = ks_from_counts(self._reference_counts, self.live.counts)
        shifted = int(
            ((psi > self.psi_threshold) | (ks > self.ks_threshold)).sum()
        )
        if shifted >= self.min_features:
            self._consecutive += 1
        else:
            self._consecutive = 0
        drifted = self._consecutive >= self.patience
        if obs.enabled():
            obs.set_gauge("lifecycle.psi_max", float(psi.max()))
            obs.set_gauge("lifecycle.ks_max", float(ks.max()))
            obs.set_gauge("lifecycle.features_shifted", float(shifted))
        return DriftStatus(
            drifted=drifted,
            n_rows=len(self.live),
            features_shifted=shifted,
            consecutive=self._consecutive,
            psi_max=float(psi.max()),
            ks_max=float(ks.max()),
            psi=psi,
            ks=ks,
        )
