"""Model lifecycle: drift detection, registry, shadow serving.

The package closes the serving loop around the Monitorless model
itself: the live feature stream is watched for distribution drift
(:mod:`~repro.lifecycle.drift`) and prediction-vs-outcome agreement
(:mod:`~repro.lifecycle.tracker`); alarms trigger retraining
(:mod:`~repro.lifecycle.retrain`); new models enter a versioned,
checksummed registry (:mod:`~repro.lifecycle.registry`) and must win a
walk-forward shadow comparison (:mod:`~repro.lifecycle.shadow`) before
:class:`~repro.lifecycle.manager.LifecycleManager` promotes them to
champion.  :mod:`~repro.lifecycle.scenario` runs the deterministic
end-to-end drift scenario.
"""

from repro.lifecycle.drift import (
    PSI_EPSILON,
    DriftDetector,
    DriftStatus,
    StreamingHistograms,
    batch_ks,
    batch_psi,
    bin_counts,
    bin_rows,
    ks_from_counts,
    psi_from_counts,
    quantile_edges,
)
from repro.lifecycle.manager import LifecycleManager
from repro.lifecycle.registry import (
    STAGES,
    ModelRegistry,
    RegistryError,
    corpus_fingerprint,
)
from repro.lifecycle.retrain import RetrainConfig, Retrainer, StreamWindow
from repro.lifecycle.scenario import (
    DriftScenarioConfig,
    DriftScenarioResult,
    DriftScenarioRunner,
    antagonist_active,
    run_drift_scenario,
    scenario_workload,
)
from repro.lifecycle.shadow import ShadowEvaluator, WindowResult
from repro.lifecycle.tracker import ModelPerformanceTracker

__all__ = [
    "PSI_EPSILON",
    "DriftDetector",
    "DriftStatus",
    "StreamingHistograms",
    "batch_ks",
    "batch_psi",
    "bin_counts",
    "bin_rows",
    "ks_from_counts",
    "psi_from_counts",
    "quantile_edges",
    "LifecycleManager",
    "STAGES",
    "ModelRegistry",
    "RegistryError",
    "corpus_fingerprint",
    "RetrainConfig",
    "Retrainer",
    "StreamWindow",
    "DriftScenarioConfig",
    "DriftScenarioResult",
    "DriftScenarioRunner",
    "antagonist_active",
    "run_drift_scenario",
    "scenario_workload",
    "ShadowEvaluator",
    "WindowResult",
    "ModelPerformanceTracker",
]
