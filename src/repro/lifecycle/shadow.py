"""Walk-forward champion/challenger comparison with hysteresis.

The challenger shadow-scores every tick but is only judged on
*resolved* ticks -- those whose ground-truth outcome has arrived.
Resolved ticks fill tumbling windows of ``window`` ticks; each window
is scored once and never revisited, the walk-forward discipline that
keeps the comparison honest on non-stationary streams.

Predictions may be booleans (the tick-level verdict; scored 1 when it
matches the outcome) or the *fraction of container rows flagged* that
tick.  Fractions score each row against the application-level outcome
-- ``fraction`` when the SLO broke, ``1 - fraction`` when it held --
which preserves the per-row resolution that a tick-level "any row
flagged" verdict collapses: a challenger that flags every squeezed
container during a burst beats a champion that flags three chronic
false positives, even though both have *some* row up every tick.

Hysteresis keeps the serving model sticky: the challenger must beat
the champion *strictly* by more than ``min_margin`` in
``wins_required`` consecutive windows.  Ties and near-ties go to the
champion, so a statistically indistinguishable challenger can never
flap the deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs

__all__ = ["WindowResult", "ShadowEvaluator"]


@dataclass
class WindowResult:
    """One scored walk-forward window."""

    index: int
    start_tick: int
    end_tick: int  # inclusive
    champion_accuracy: float
    challenger_accuracy: float
    challenger_won: bool


class ShadowEvaluator:
    """Tumbling-window accuracy duel between champion and challenger."""

    def __init__(
        self,
        *,
        window: int = 30,
        wins_required: int = 2,
        min_margin: float = 0.0,
    ):
        if window < 1:
            raise ValueError("window must be >= 1.")
        if wins_required < 1:
            raise ValueError("wins_required must be >= 1.")
        if min_margin < 0.0:
            raise ValueError("min_margin must be >= 0.")
        self.window = window
        self.wins_required = wins_required
        self.min_margin = min_margin
        self.windows: list[WindowResult] = []
        self.win_streak = 0
        self._champion_scores: list[float] = []
        self._challenger_scores: list[float] = []
        self._start_tick: int | None = None
        self._last_tick: int | None = None

    @staticmethod
    def _score(pred, outcome: bool) -> float:
        """Per-tick accuracy of a boolean verdict or flagged fraction."""
        fraction = float(pred)
        return fraction if outcome else 1.0 - fraction

    def resolve(
        self,
        t: int,
        champion_pred,
        challenger_pred,
        outcome: bool,
    ) -> WindowResult | None:
        """Settle one resolved tick; returns the window result when the
        tick completes a window, else ``None``."""
        outcome = bool(outcome)
        if self._start_tick is None:
            self._start_tick = t
        self._last_tick = t
        self._champion_scores.append(self._score(champion_pred, outcome))
        self._challenger_scores.append(self._score(challenger_pred, outcome))
        if len(self._champion_scores) < self.window:
            return None
        champion = sum(self._champion_scores) / self.window
        challenger = sum(self._challenger_scores) / self.window
        won = challenger > champion + self.min_margin
        result = WindowResult(
            index=len(self.windows),
            start_tick=self._start_tick,
            end_tick=t,
            champion_accuracy=champion,
            challenger_accuracy=challenger,
            challenger_won=won,
        )
        self.windows.append(result)
        self.win_streak = self.win_streak + 1 if won else 0
        self._champion_scores = []
        self._challenger_scores = []
        self._start_tick = None
        if obs.enabled():
            obs.inc("lifecycle.shadow_windows")
            obs.set_gauge("lifecycle.champion_accuracy", champion)
            obs.set_gauge("lifecycle.challenger_accuracy", challenger)
        return result

    @property
    def windows_completed(self) -> int:
        return len(self.windows)

    @property
    def should_promote(self) -> bool:
        """Challenger has won ``wins_required`` consecutive windows."""
        return self.win_streak >= self.wins_required

    def reset(self) -> None:
        """Start over (a new challenger entered shadow)."""
        self.windows = []
        self.win_streak = 0
        self._champion_scores = []
        self._challenger_scores = []
        self._start_tick = None
        self._last_tick = None
