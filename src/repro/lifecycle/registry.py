"""Versioned model registry over the checksummed REPRO-CKPT format.

Each registered model gets a monotonically increasing version and one
record file ``v<N>.model`` in the registry directory -- the same
self-validating container as orchestrator checkpoints (magic + JSON
header + sha256-checksummed pickle, atomic tmp+replace writes; see
:mod:`repro.reliability.checkpoint`), with ``kind: "model"`` and the
lineage metadata in the header: the model fingerprint, the fingerprint
of the corpus it was trained on, the parent version it was retrained
from, and the reason it was registered.  ``registry.json`` indexes the
records plus the full promotion-event log.

Lifecycle stages form the promotion state machine::

    candidate --> shadow --> champion --> retired
        \\___________________↗      (shadow/candidate may retire early)

All registry state is keyed by content and tick -- never by wall
clock -- and both :meth:`ModelRegistry.register` and
:meth:`ModelRegistry.transition` are idempotent replays: registering a
bitwise-identical model with the same lineage returns the existing
record, and re-recording an identical transition is a no-op.  A
kill-and-resume therefore replays the registry into exactly the state
an uninterrupted run produces, file bytes included.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path

from repro import obs
from repro.reliability.checkpoint import (
    CheckpointError,
    model_fingerprint,
    read_record,
    write_record,
)

__all__ = ["STAGES", "RegistryError", "ModelRegistry", "corpus_fingerprint"]

STAGES = ("candidate", "shadow", "champion", "retired")

_TRANSITIONS = {
    ("candidate", "shadow"),
    ("candidate", "retired"),
    ("shadow", "champion"),
    ("shadow", "retired"),
    ("champion", "retired"),
}


class RegistryError(RuntimeError):
    """An invalid registry operation (unknown version, bad transition)."""


def corpus_fingerprint(X, y) -> str:
    """sha256 over a training corpus's sample and label bytes."""
    import hashlib

    import numpy as np

    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(X).tobytes())
    digest.update(np.ascontiguousarray(y).tobytes())
    return digest.hexdigest()


class ModelRegistry:
    """Checksummed, versioned model store with a promotion-event log."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._records: list[dict] = []
        self._events: list[dict] = []
        index = self.root / "registry.json"
        if index.exists():
            state = json.loads(index.read_text())
            self._records = list(state.get("records", []))
            self._events = list(state.get("events", []))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    @property
    def events(self) -> list[dict]:
        """The promotion-event log (copies)."""
        return [dict(event) for event in self._events]

    def lineage(self) -> list[dict]:
        """Every record, oldest first (copies)."""
        return [dict(record) for record in self._records]

    def record(self, version: int) -> dict:
        if not 1 <= version <= len(self._records):
            raise RegistryError(
                f"No version {version} in registry {self.root} "
                f"({len(self._records)} registered)."
            )
        return dict(self._records[version - 1])

    def _latest_in_stage(self, stage: str) -> dict | None:
        for record in reversed(self._records):
            if record["stage"] == stage:
                return dict(record)
        return None

    def champion(self) -> dict | None:
        """The serving model's record, or ``None``."""
        return self._latest_in_stage("champion")

    def shadow(self) -> dict | None:
        """The shadow-evaluating challenger's record, or ``None``."""
        return self._latest_in_stage("shadow")

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def register(
        self,
        model,
        *,
        reason: str,
        stage: str = "candidate",
        tick: int | None = None,
        parent_version: int | None = None,
        corpus_fingerprint: str | None = None,
    ) -> dict:
        """Store a model; returns its (possibly pre-existing) record.

        Identity is content-based: a model whose fingerprint, parent
        and reason match an existing record *is* that record (the
        idempotence a checkpoint-resume replay relies on).
        """
        if stage not in STAGES:
            raise RegistryError(f"Unknown stage {stage!r}; one of {STAGES}.")
        fingerprint = model_fingerprint(model)
        for record in self._records:
            if (
                record["fingerprint"] == fingerprint
                and record["parent_version"] == parent_version
                and record["reason"] == reason
            ):
                return dict(record)
        version = len(self._records) + 1
        filename = f"v{version}.model"
        record = {
            "version": version,
            "stage": stage,
            "fingerprint": fingerprint,
            "corpus_fingerprint": corpus_fingerprint,
            "parent_version": parent_version,
            "reason": reason,
            "tick": tick,
            "file": filename,
        }
        write_record(
            self.root / filename,
            model,
            {key: record[key] for key in record if key != "file"},
            kind="model",
        )
        self._records.append(record)
        self._save_index()
        obs.inc("lifecycle.models_registered")
        return dict(record)

    def transition(
        self, version: int, stage: str, *, tick: int | None = None,
        reason: str = "",
    ) -> dict:
        """Move a version along the state machine; logs the event.

        Promoting to ``champion`` automatically retires the previous
        champion (same tick, reason ``superseded by vN``).  Re-applying
        a transition the log already holds is a no-op, so resume
        replays converge instead of double-logging.
        """
        if stage not in STAGES:
            raise RegistryError(f"Unknown stage {stage!r}; one of {STAGES}.")
        record = self._record_ref(version)
        if record["stage"] == stage and any(
            event["version"] == version and event["to"] == stage
            for event in self._events
        ):
            return dict(record)
        if (record["stage"], stage) not in _TRANSITIONS:
            raise RegistryError(
                f"Illegal transition {record['stage']} -> {stage} for "
                f"v{version}."
            )
        if stage == "champion":
            current = self.champion()
            if current is not None and current["version"] != version:
                self.transition(
                    current["version"],
                    "retired",
                    tick=tick,
                    reason=f"superseded by v{version}",
                )
        event = {
            "tick": tick,
            "version": version,
            "from": record["stage"],
            "to": stage,
            "reason": reason,
        }
        record["stage"] = stage
        self._events.append(event)
        self._save_index()
        if stage == "champion":
            obs.inc("lifecycle.promotions")
        elif stage == "retired":
            obs.inc("lifecycle.retirements")
        return dict(record)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def load(self, version: int):
        """Unpickle a stored model, verifying checksum and fingerprint."""
        record = self.record(version)
        header, payload = read_record(
            self.root / record["file"], kind="model"
        )
        if header.get("fingerprint") != record["fingerprint"]:
            raise CheckpointError(
                f"Registry index and record file disagree on v{version}'s "
                "fingerprint."
            )
        model = pickle.loads(payload)
        if model_fingerprint(model) != record["fingerprint"]:
            raise CheckpointError(
                f"v{version} unpickled to a model with a different "
                "fingerprint than registered."
            )
        return model

    def _record_ref(self, version: int) -> dict:
        if not 1 <= version <= len(self._records):
            raise RegistryError(
                f"No version {version} in registry {self.root} "
                f"({len(self._records)} registered)."
            )
        return self._records[version - 1]

    def _save_index(self) -> None:
        index = self.root / "registry.json"
        temp = index.with_name(index.name + ".tmp")
        temp.write_text(
            json.dumps(
                {"records": self._records, "events": self._events},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        os.replace(temp, index)
