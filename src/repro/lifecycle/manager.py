"""Champion/challenger lifecycle management for the serving loop.

:class:`LifecycleManager` sits beside a serving policy
(:class:`~repro.orchestrator.policies.MonitorlessPolicy` or
:class:`~repro.fleet.policy.FleetPolicy`) and closes the loop the
paper leaves open -- *the model itself* as a monitored, replaceable
component:

1. every classified feature batch is **observed**: fed to the
   completeness-aware drift detector, buffered for retraining, and
   shadow-scored by the challenger (when one exists) on the *same*
   batch via the flat-forest path -- the challenger never actuates;
2. ground-truth outcomes arrive ``label_delay`` ticks late and settle
   the prediction-vs-outcome agreement tracker and the walk-forward
   champion/challenger duel;
3. a drift alarm (or an agreement collapse) triggers **retraining** on
   the recent stream plus optional interference corpora; the new model
   is registered as a *candidate*, immediately staged to *shadow*, and
   promoted to *champion* only after winning the walk-forward
   comparison with hysteresis -- the previous champion retires;
4. every stage change is a registry event; the manager additionally
   keeps a flat ``history`` (drift alarms, retrains, promotions,
   rejections, all keyed by tick, never wall clock).

Determinism contract: given the same seed and driving sequence, the
entire promotion history -- versions, ticks, fingerprints, registry
events -- is bitwise identical at every ``n_jobs`` and across a
mid-run kill-and-resume.  Everything the manager does is keyed by tick
and content; registry writes are idempotent replays; retraining runs
synchronously at its trigger tick on ``parallel_map``-backed builders
that are themselves bitwise at any worker count.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.model import predict_proba_trusted
from repro.lifecycle.drift import DriftDetector, DriftStatus
from repro.lifecycle.registry import ModelRegistry
from repro.lifecycle.retrain import Retrainer, StreamWindow
from repro.lifecycle.shadow import ShadowEvaluator
from repro.lifecycle.tracker import ModelPerformanceTracker

__all__ = ["LifecycleManager"]


class LifecycleManager:
    """Drift detection, shadow serving and promotion for one policy.

    Parameters
    ----------
    champion:
        The initially serving fitted model; registered as version 1
        (stage ``champion``, reason ``bootstrap``) unless the registry
        already knows it.
    registry:
        A :class:`~repro.lifecycle.registry.ModelRegistry` or a
        directory path to create one in.
    detector / tracker / evaluator / retrainer:
        The lifecycle components; ``detector`` and ``retrainer``
        default to ``None`` (feature-drift alarms / retraining off),
        tracker and evaluator to their default configurations.
    label_delay:
        Ticks until a prediction's ground truth arrives.
    retrain_cooldown:
        Minimum ticks between retrain triggers (also restarted by
        promotions and rejections).
    shadow_patience:
        Walk-forward windows a challenger gets to prove itself before
        being retired as rejected.
    """

    def __init__(
        self,
        champion,
        *,
        registry,
        detector: DriftDetector | None = None,
        tracker: ModelPerformanceTracker | None = None,
        evaluator: ShadowEvaluator | None = None,
        retrainer: Retrainer | None = None,
        stream_capacity: int = 240,
        label_delay: int = 5,
        retrain_cooldown: int = 60,
        shadow_patience: int = 8,
    ):
        if label_delay < 0:
            raise ValueError("label_delay must be >= 0.")
        if retrain_cooldown < 1:
            raise ValueError("retrain_cooldown must be >= 1.")
        if shadow_patience < 1:
            raise ValueError("shadow_patience must be >= 1.")
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.detector = detector
        self.tracker = tracker or ModelPerformanceTracker()
        self.evaluator = evaluator or ShadowEvaluator()
        self.retrainer = retrainer
        self.label_delay = label_delay
        self.retrain_cooldown = retrain_cooldown
        self.shadow_patience = shadow_patience
        record = registry.register(
            champion, reason="bootstrap", stage="champion"
        )
        self.champion = champion
        self.champion_version = record["version"]
        self.challenger = None
        self.challenger_version: int | None = None
        self.stream = (
            StreamWindow(stream_capacity)
            if retrainer is not None and retrainer.wants_stream
            else None
        )
        self.history: list[dict] = []
        self.last_status: DriftStatus | None = None
        self._pending: dict[int, tuple[float, float | None]] = {}
        self._outcomes: dict[int, bool] = {}
        self._last_trigger: int | None = None
        self._alarm_active = False

    # ------------------------------------------------------------------
    # Serving-side hooks
    # ------------------------------------------------------------------
    @property
    def champion_model(self):
        """The model the policy must serve with (follows promotions)."""
        return self.champion

    def observe(
        self, t: int, features: np.ndarray, flags, completeness=None
    ) -> np.ndarray | None:
        """Called by the policy with each tick's classified batch.

        ``features`` are the engineered rows the champion just scored,
        ``flags`` its per-row verdicts, ``completeness`` the optional
        per-row observedness fractions.  Returns the challenger's
        per-row flags when one is shadow-scoring (never acted upon by
        the caller), else ``None``.
        """
        features = np.atleast_2d(np.asarray(features))
        if features.shape[0] == 0:
            return None
        with obs.trace("lifecycle.observe"):
            if self.detector is not None:
                self.detector.update(features, completeness)
            challenger_flags = None
            if self.challenger is not None:
                classifier = self.challenger.classifier_
                if hasattr(classifier, "predict_proba"):
                    positive = predict_proba_trusted(classifier, features)[:, 1]
                    challenger_flags = (
                        positive >= self.challenger.prediction_threshold
                    )
                else:
                    challenger_flags = (
                        np.asarray(classifier.predict(features)) == 1
                    )
                obs.inc("lifecycle.shadow_ticks")
            if self.stream is not None:
                if completeness is None:
                    self.stream.push(t, features)
                else:
                    clean = (
                        np.asarray(completeness, dtype=np.float64).ravel()
                        >= 1.0
                    )
                    if clean.any():
                        self.stream.push(t, features[clean])
            champion_flags = np.asarray(flags)
            # The tracker watches the *serving decision* (any row
            # flagged drives the autoscaler); the evaluator duels on
            # per-row flagged fractions, which keep the resolution a
            # tick-level any-flag verdict collapses.
            self._pending[t] = (
                float(champion_flags.mean()),
                None
                if challenger_flags is None
                else float(np.asarray(challenger_flags).mean()),
            )
            self.tracker.record(t, bool(champion_flags.any()))
        return challenger_flags

    def outcome(self, t: int, violated: bool) -> None:
        """Report tick ``t``'s ground truth (did the SLO break?)."""
        self._outcomes[t] = bool(violated)

    # ------------------------------------------------------------------
    # The per-tick lifecycle step
    # ------------------------------------------------------------------
    def step(self, t: int) -> DriftStatus | None:
        """Advance the lifecycle clock at the end of tick ``t``.

        Resolves matured outcomes, updates the drift alarm, and runs
        promotion / rejection / retraining decisions.  Returns the
        drift status when the detector has a frozen reference.
        """
        with obs.trace("lifecycle.step"):
            self._resolve_through(t - self.label_delay)
            promoted = self._maybe_promote(t)
            if not promoted:
                self._maybe_reject(t)
            status = None
            if self.detector is not None and self.detector.fitted:
                status = self.detector.check()
                if status.drifted and not self._alarm_active:
                    self._alarm_active = True
                    obs.inc("lifecycle.drift_alarms")
                    self._log(
                        t,
                        "drift",
                        None,
                        f"{status.features_shifted} features shifted "
                        f"(psi_max={status.psi_max:.3f}, "
                        f"ks_max={status.ks_max:.3f})",
                    )
                elif not status.drifted:
                    self._alarm_active = False
                self.last_status = status
            self._maybe_retrain(t, status)
            self._prune(t)
        return status

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _log(self, t: int, event: str, version, reason: str) -> None:
        self.history.append(
            {"tick": t, "event": event, "version": version, "reason": reason}
        )

    def _resolve_through(self, limit: int) -> None:
        ready = sorted(
            tick
            for tick in self._pending
            if tick <= limit and tick in self._outcomes
        )
        for tick in ready:
            champion_pred, challenger_pred = self._pending.pop(tick)
            outcome = self._outcomes[tick]
            self.tracker.resolve(tick, outcome)
            if challenger_pred is not None and self.challenger is not None:
                self.evaluator.resolve(
                    tick, champion_pred, challenger_pred, outcome
                )

    def _maybe_promote(self, t: int) -> bool:
        if self.challenger is None or not self.evaluator.should_promote:
            return False
        version = self.challenger_version
        self.registry.transition(
            version, "champion", tick=t, reason="shadow-win"
        )
        self._log(
            t,
            "promote",
            version,
            f"won {self.evaluator.win_streak} consecutive windows "
            f"vs v{self.champion_version}",
        )
        self.champion = self.challenger
        self.champion_version = version
        self.challenger = None
        self.challenger_version = None
        self.evaluator.reset()
        self.tracker.reset()
        if self.detector is not None:
            self.detector.reset_reference()
        self._alarm_active = False
        self._last_trigger = t
        return True

    def _maybe_reject(self, t: int) -> None:
        if (
            self.challenger is None
            or self.evaluator.windows_completed < self.shadow_patience
        ):
            return
        version = self.challenger_version
        self.registry.transition(
            version,
            "retired",
            tick=t,
            reason=f"shadow-rejected after "
            f"{self.evaluator.windows_completed} windows",
        )
        self._log(
            t,
            "reject",
            version,
            f"no win streak in {self.evaluator.windows_completed} windows",
        )
        self.challenger = None
        self.challenger_version = None
        self.evaluator.reset()
        self._last_trigger = t

    def _maybe_retrain(self, t: int, status: DriftStatus | None) -> None:
        if self.retrainer is None or self.challenger is not None:
            return
        if (
            self._last_trigger is not None
            and t - self._last_trigger < self.retrain_cooldown
        ):
            return
        drifted = status is not None and status.drifted
        unhealthy = not self.tracker.healthy()
        if not (drifted or unhealthy):
            return
        reason = "drift" if drifted else "agreement"
        self._last_trigger = t  # failed attempts also wait out the cooldown
        result = self.retrainer.retrain(
            self.champion, self.stream, self._outcomes
        )
        if result is None:
            self._log(t, "retrain-skipped", None, "insufficient labeled rows")
            return
        model, info = result
        record = self.registry.register(
            model,
            reason=f"retrain@{t}:{reason}",
            tick=t,
            parent_version=self.champion_version,
            corpus_fingerprint=info["corpus_fingerprint"],
        )
        self.registry.transition(
            record["version"], "shadow", tick=t, reason=reason
        )
        self._log(
            t,
            "retrain",
            record["version"],
            f"{reason}: {info['stream_rows']} stream + "
            f"{info['corpus_rows']} corpus rows",
        )
        self.challenger = model
        self.challenger_version = record["version"]
        self.evaluator.reset()
        if obs.enabled():
            obs.set_gauge("lifecycle.challenger_version", record["version"])

    def _prune(self, t: int) -> None:
        stream_span = self.stream.capacity if self.stream is not None else 0
        horizon = t - stream_span - self.label_delay - 60
        for tick in [k for k in self._outcomes if k < horizon]:
            del self._outcomes[tick]
        for tick in [k for k in self._pending if k < horizon]:
            del self._pending[tick]
