"""Reproduction of *Monitorless* (Grohmann et al., Middleware 2019).

Monitorless predicts application KPI degradation (resource saturation)
from platform-level metrics only.  The package is organised bottom-up:

- :mod:`repro.ml` -- from-scratch machine-learning substrate (trees,
  forests, boosting, linear models, neural nets, scalers, PCA, model
  selection) with a scikit-learn-style API.
- :mod:`repro.cluster` -- simulated cloud substrate: nodes, containers,
  cgroup CPU/memory accounting and queueing laws.
- :mod:`repro.telemetry` -- PCP-like platform-metric catalog and
  per-second collection agents (952 host + 88 container metrics).
- :mod:`repro.workloads` -- LIMBO/YCSB/Locust-style load profiles.
- :mod:`repro.apps` -- queueing models of the benchmark applications
  (Solr, Memcache, Cassandra, Elgg, TeaStore, Sockshop).
- :mod:`repro.core` -- the paper's contribution: KPI labeling (Kneedle),
  the feature-engineering pipeline, the monitorless classifier, the
  lagged evaluation metrics and the threshold baselines.
- :mod:`repro.orchestrator` -- closed-loop collection, prediction and
  autoscaling.
- :mod:`repro.datasets` -- the 25 Table-1 training runs and the three
  evaluation scenarios.
"""

from repro.core.labeling import KneedleLabeler
from repro.core.model import MonitorlessModel

__version__ = "1.0.0"

__all__ = ["MonitorlessModel", "KneedleLabeler", "__version__"]
