"""Telemetry collection: simulation state -> per-instance metric rows.

Implements the paper's monitoring-agent view: at every tick the agent
on node ``c`` produces the host metric vector ``H_{c,t}``; each
container adds its own vector ``V_{I,t}``; the sample for instance
``I`` is the concatenation ``M_{I,t} = H_{c,t} ++ V_{I,t}``
(1040 columns with the default catalog).

Metric synthesis is deterministic given the agent seed: every node and
container gets its own RNG stream keyed by name, so regenerating a
window yields identical values.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

import numpy as np

from repro import obs
from repro.cluster.container import Container
from repro.cluster.node import Node
from repro.telemetry import synthesis
from repro.telemetry.catalog import (
    CONTAINER_CHANNELS,
    MetricCatalog,
    default_catalog,
)
from repro.telemetry.rates import counters_to_rates

__all__ = ["TelemetryAgent"]


@lru_cache(maxsize=65536)
def _stream_seed(seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class TelemetryAgent:
    """Synthesizes PCP-style metrics from recorded container ticks.

    Parameters
    ----------
    catalog:
        Metric catalog; defaults to the 952+88 standard catalog.
    seed:
        Base seed for the per-node / per-container noise streams.
    convert_counters:
        Apply the counter-to-rate preprocessing (section 3.1) so the
        returned matrices are rate-valued, as the model expects.
    """

    def __init__(
        self,
        catalog: MetricCatalog | None = None,
        seed: int = 0,
        convert_counters: bool = True,
    ):
        self.catalog = catalog or default_catalog()
        self.seed = seed
        self.convert_counters = convert_counters

    # ------------------------------------------------------------------
    # State extraction
    # ------------------------------------------------------------------
    def host_state(self, node: Node, start: int, end: int) -> np.ndarray:
        """Host state matrix (ticks ``start..end-1``, channels).

        Vectorized over the tick axis via
        :mod:`repro.telemetry.synthesis`: the baseline, one additive
        contribution matrix per container (in ``node.containers``
        order, preserving the reference accumulation order), then the
        derived channels -- bitwise equal to the original per-offset
        scalar loop.
        """
        T = end - start
        if T <= 0:
            raise ValueError("end must exceed start.")
        spec = node.spec
        state = synthesis.host_baseline(T, spec.memory_bytes)
        contrib: np.ndarray | None = None
        for container in node.containers:
            fields = synthesis.gather_container_fields(container, start, end)
            contrib = synthesis.host_additive_contributions(
                fields,
                spec.cores,
                spec.memory_bytes,
                spec.disk_bandwidth,
                spec.network_bandwidth,
                spec.memory_bandwidth,
                out=contrib,
            )
            state += contrib
        synthesis.host_derived(
            state, spec.cores, spec.memory_bytes, spec.disk_random_bandwidth
        )
        return state

    def container_state(
        self, container: Container, node: Node, start: int, end: int
    ) -> np.ndarray:
        """Container state matrix for absolute ticks ``start..end-1``."""
        T = end - start
        if T <= 0:
            raise ValueError("end must exceed start.")
        quota = container.cpu_cgroup.quota_cores
        allocation = quota if quota is not None else float(node.spec.cores)
        fields = synthesis.gather_container_fields(container, start, end)
        return synthesis.container_state_from_fields(
            fields, allocation, node.spec.cores
        )

    # ------------------------------------------------------------------
    # Metric synthesis
    # ------------------------------------------------------------------
    def host_metrics(self, node: Node, start: int, end: int) -> np.ndarray:
        """Host metric matrix ``(T, n_host)`` for one node."""
        state = self.host_state(node, start, end)
        rng = np.random.default_rng(_stream_seed(self.seed, f"host:{node.name}:{start}"))
        values = self.catalog.synthesize(self.catalog.host, state, rng)
        if self.convert_counters:
            counter_mask = np.array([s.counter for s in self.catalog.host])
            values = counters_to_rates(values, counter_mask)
        return values

    def container_metrics(
        self, container: Container, node: Node, start: int, end: int
    ) -> np.ndarray:
        """Container metric matrix ``(T, n_container)``."""
        state = self.container_state(container, node, start, end)
        rng = np.random.default_rng(
            _stream_seed(self.seed, f"container:{container.name}:{start}")
        )
        values = self.catalog.synthesize(self.catalog.container, state, rng)
        if self.convert_counters:
            counter_mask = np.array([s.counter for s in self.catalog.container])
            values = counters_to_rates(values, counter_mask)
        return values

    def instance_matrix(
        self,
        container: Container,
        nodes: dict[str, Node],
        start: int | None = None,
        end: int | None = None,
    ) -> np.ndarray:
        """Full per-instance sample matrix ``M_{I,t}`` (host ++ container)."""
        if container.node is None:
            raise ValueError(f"Container {container.name} is not placed.")
        node = nodes[container.node]
        if start is None:
            start = container.created_at
        if end is None:
            end = container.created_at + len(container.history)
        with obs.trace("telemetry.instance_matrix"):
            host = self.host_metrics(node, start, end)
            own = self.container_metrics(container, node, start, end)
            matrix = np.hstack([host, own])
        obs.inc("telemetry.rows_synthesized", matrix.shape[0])
        return matrix

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def open_stream(
        self,
        container: Container,
        nodes: dict[str, Node],
        start: int | None = None,
        history: int = 16,
    ):
        """Open a per-tick emission stream for one container.

        The streaming counterpart of :meth:`instance_matrix`: call
        ``emit()`` (or ``advance_to(end)``) after each simulation step
        to obtain the instance row ``M_{I,t}`` without re-synthesizing
        any history.  Opened at the container's creation tick (the
        default) the rows match the whole-run matrix bitwise -- except
        counter *rates* on the very first tick, which the batch
        converter back-fills non-causally (see
        :mod:`repro.telemetry.stream`).
        """
        from repro.telemetry.stream import InstanceTelemetryStream

        return InstanceTelemetryStream(
            self, container, nodes, start=start, history=history
        )

    def utilization_series(
        self, container: Container, nodes: dict[str, Node]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(cpu%, mem%) relative-utilization series for one container.

        This is what the static-threshold baselines consume.  The same
        measurement noise that the catalog applies to ``C-CPU-U`` /
        ``C-MEM-U-usage`` is applied here, so the baselines see the
        monitoring system's view rather than the simulator's exact
        state.
        """
        node = nodes[container.node]
        start = container.created_at
        end = start + len(container.history)
        state = self.container_state(container, node, start, end)
        C = CONTAINER_CHANNELS
        rng = np.random.default_rng(
            _stream_seed(self.seed, f"util:{container.name}")
        )
        cpu = state[:, C["cpu_rel_util"]] + rng.normal(0.0, 0.8, end - start)
        mem = state[:, C["mem_limit_util"]] + rng.normal(0.0, 0.4, end - start)
        return np.clip(cpu, 0.0, 100.0), np.clip(mem, 0.0, 100.0)
