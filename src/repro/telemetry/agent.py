"""Telemetry collection: simulation state -> per-instance metric rows.

Implements the paper's monitoring-agent view: at every tick the agent
on node ``c`` produces the host metric vector ``H_{c,t}``; each
container adds its own vector ``V_{I,t}``; the sample for instance
``I`` is the concatenation ``M_{I,t} = H_{c,t} ++ V_{I,t}``
(1040 columns with the default catalog).

Metric synthesis is deterministic given the agent seed: every node and
container gets its own RNG stream keyed by name, so regenerating a
window yields identical values.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro import obs
from repro.cluster.container import Container
from repro.cluster.node import Node
from repro.telemetry.catalog import (
    CONTAINER_CHANNELS,
    HOST_CHANNELS,
    MetricCatalog,
    default_catalog,
)
from repro.telemetry.rates import counters_to_rates

__all__ = ["TelemetryAgent"]


def _stream_seed(seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class TelemetryAgent:
    """Synthesizes PCP-style metrics from recorded container ticks.

    Parameters
    ----------
    catalog:
        Metric catalog; defaults to the 952+88 standard catalog.
    seed:
        Base seed for the per-node / per-container noise streams.
    convert_counters:
        Apply the counter-to-rate preprocessing (section 3.1) so the
        returned matrices are rate-valued, as the model expects.
    """

    def __init__(
        self,
        catalog: MetricCatalog | None = None,
        seed: int = 0,
        convert_counters: bool = True,
    ):
        self.catalog = catalog or default_catalog()
        self.seed = seed
        self.convert_counters = convert_counters

    # ------------------------------------------------------------------
    # State extraction
    # ------------------------------------------------------------------
    def host_state(self, node: Node, start: int, end: int) -> np.ndarray:
        """Host state matrix (ticks ``start..end-1``, channels)."""
        T = end - start
        if T <= 0:
            raise ValueError("end must exceed start.")
        H = HOST_CHANNELS
        state = np.zeros((T, len(H)))  # the "one" channel stays 0
        spec = node.spec

        # OS baseline activity on an otherwise idle host.
        state[:, H["cpu_util"]] += 1.5
        state[:, H["pswitch"]] += 900.0
        state[:, H["tcp_established"]] += 40.0
        state[:, H["nprocs"]] += 180.0
        state[:, H["interrupts"]] += 1200.0
        state[:, H["net_packets"]] += 300.0
        state[:, H["mem_used_log"]] += np.log1p(0.05 * spec.memory_bytes)

        for container in node.containers:
            for offset in range(T):
                tick = container.tick_at(start + offset)
                if tick is None:
                    continue
                used = tick.cpu.used_cores
                state[offset, H["cpu_util"]] += 100.0 * used / spec.cores
                state[offset, H["mem_util"]] += (
                    100.0 * tick.memory.usage_bytes / spec.memory_bytes
                )
                disk_bytes = tick.disk_read_bytes + tick.disk_write_bytes
                state[offset, H["disk_util"]] += (
                    100.0 * disk_bytes / spec.disk_bandwidth
                )
                net_bytes = tick.network_rx_bytes + tick.network_tx_bytes
                state[offset, H["net_util"]] += (
                    100.0 * net_bytes / spec.network_bandwidth
                )
                state[offset, H["pswitch"]] += 4.0 * tick.throughput
                state[offset, H["tcp_established"]] += tick.tcp_connections
                state[offset, H["nprocs"]] += tick.processes
                state[offset, H["page_in"]] += (
                    tick.memory.page_in_bytes / 1024.0
                )
                state[offset, H["net_packets"]] += net_bytes / 1500.0
                state[offset, H["interrupts"]] += (
                    net_bytes / 1500.0 + disk_bytes / 65536.0
                )

        # Derived channels.
        state[:, H["disk_aveq"]] = np.maximum(
            0.05, state[:, H["disk_util"]] / 100.0 * 4.0
            + state[:, H["page_in"]] / (node.spec.disk_random_bandwidth / 1024.0)
            * 8.0
        )
        state[:, H["io_wait"]] = np.minimum(
            95.0, state[:, H["disk_aveq"]] * 2.0
        )
        state[:, H["load_avg"]] = (
            state[:, H["cpu_util"]] / 100.0 * spec.cores
            + state[:, H["disk_aveq"]] * 0.5
        )
        state[:, H["mem_used_log"]] = np.log1p(
            state[:, H["mem_util"]] / 100.0 * spec.memory_bytes
            + 0.05 * spec.memory_bytes
        )
        state[:, H["membw_util"]] = np.minimum(
            100.0,
            state[:, H["cpu_util"]] * 0.3 + state[:, H["net_util"]] * 0.2,
        )
        state[:, H["cpu_util"]] = np.minimum(state[:, H["cpu_util"]], 100.0)
        state[:, H["mem_util"]] = np.minimum(state[:, H["mem_util"]], 100.0)
        return state

    def container_state(
        self, container: Container, node: Node, start: int, end: int
    ) -> np.ndarray:
        """Container state matrix for absolute ticks ``start..end-1``."""
        T = end - start
        if T <= 0:
            raise ValueError("end must exceed start.")
        C = CONTAINER_CHANNELS
        state = np.zeros((T, len(C)))  # the "one" channel stays 0
        state[:, C["periods"]] = 10.0
        quota = container.cpu_cgroup.quota_cores
        allocation = quota if quota is not None else float(node.spec.cores)
        for offset in range(T):
            tick = container.tick_at(start + offset)
            if tick is None:
                continue
            used = tick.cpu.used_cores
            state[offset, C["cpu_rel_util"]] = min(100.0, 100.0 * used / allocation)
            state[offset, C["cpu_host_util"]] = 100.0 * used / node.spec.cores
            state[offset, C["throttled"]] = tick.cpu.nr_throttled
            state[offset, C["mem_limit_util"]] = tick.memory.limit_utilization
            state[offset, C["mem_usage_log"]] = np.log1p(tick.memory.usage_bytes)
            state[offset, C["rx_log"]] = np.log1p(tick.network_rx_bytes)
            state[offset, C["tx_log"]] = np.log1p(tick.network_tx_bytes)
            state[offset, C["connections"]] = tick.tcp_connections
            state[offset, C["processes"]] = tick.processes
            state[offset, C["page_in_log"]] = np.log1p(tick.memory.page_in_bytes)
            state[offset, C["disk_read_log"]] = np.log1p(tick.disk_read_bytes)
            state[offset, C["disk_write_log"]] = np.log1p(tick.disk_write_bytes)
        return state

    # ------------------------------------------------------------------
    # Metric synthesis
    # ------------------------------------------------------------------
    def host_metrics(self, node: Node, start: int, end: int) -> np.ndarray:
        """Host metric matrix ``(T, n_host)`` for one node."""
        state = self.host_state(node, start, end)
        rng = np.random.default_rng(_stream_seed(self.seed, f"host:{node.name}:{start}"))
        values = self.catalog.synthesize(self.catalog.host, state, rng)
        if self.convert_counters:
            counter_mask = np.array([s.counter for s in self.catalog.host])
            values = counters_to_rates(values, counter_mask)
        return values

    def container_metrics(
        self, container: Container, node: Node, start: int, end: int
    ) -> np.ndarray:
        """Container metric matrix ``(T, n_container)``."""
        state = self.container_state(container, node, start, end)
        rng = np.random.default_rng(
            _stream_seed(self.seed, f"container:{container.name}:{start}")
        )
        values = self.catalog.synthesize(self.catalog.container, state, rng)
        if self.convert_counters:
            counter_mask = np.array([s.counter for s in self.catalog.container])
            values = counters_to_rates(values, counter_mask)
        return values

    def instance_matrix(
        self,
        container: Container,
        nodes: dict[str, Node],
        start: int | None = None,
        end: int | None = None,
    ) -> np.ndarray:
        """Full per-instance sample matrix ``M_{I,t}`` (host ++ container)."""
        if container.node is None:
            raise ValueError(f"Container {container.name} is not placed.")
        node = nodes[container.node]
        if start is None:
            start = container.created_at
        if end is None:
            end = container.created_at + len(container.history)
        with obs.trace("telemetry.instance_matrix"):
            host = self.host_metrics(node, start, end)
            own = self.container_metrics(container, node, start, end)
            matrix = np.hstack([host, own])
        obs.inc("telemetry.rows_synthesized", matrix.shape[0])
        return matrix

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def open_stream(
        self,
        container: Container,
        nodes: dict[str, Node],
        start: int | None = None,
        history: int = 16,
    ):
        """Open a per-tick emission stream for one container.

        The streaming counterpart of :meth:`instance_matrix`: call
        ``emit()`` (or ``advance_to(end)``) after each simulation step
        to obtain the instance row ``M_{I,t}`` without re-synthesizing
        any history.  Opened at the container's creation tick (the
        default) the rows match the whole-run matrix bitwise -- except
        counter *rates* on the very first tick, which the batch
        converter back-fills non-causally (see
        :mod:`repro.telemetry.stream`).
        """
        from repro.telemetry.stream import InstanceTelemetryStream

        return InstanceTelemetryStream(
            self, container, nodes, start=start, history=history
        )

    def utilization_series(
        self, container: Container, nodes: dict[str, Node]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(cpu%, mem%) relative-utilization series for one container.

        This is what the static-threshold baselines consume.  The same
        measurement noise that the catalog applies to ``C-CPU-U`` /
        ``C-MEM-U-usage`` is applied here, so the baselines see the
        monitoring system's view rather than the simulator's exact
        state.
        """
        node = nodes[container.node]
        start = container.created_at
        end = start + len(container.history)
        state = self.container_state(container, node, start, end)
        C = CONTAINER_CHANNELS
        rng = np.random.default_rng(
            _stream_seed(self.seed, f"util:{container.name}")
        )
        cpu = state[:, C["cpu_rel_util"]] + rng.normal(0.0, 0.8, end - start)
        mem = state[:, C["mem_limit_util"]] + rng.normal(0.0, 0.4, end - start)
        return np.clip(cpu, 0.0, 100.0), np.clip(mem, 0.0, 100.0)
