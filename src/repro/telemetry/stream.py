"""Per-tick telemetry emission: the streaming counterpart of
:meth:`repro.telemetry.agent.TelemetryAgent.instance_matrix`.

The batch agent materialises a whole run's ``(T, 1040)`` matrix in one
call.  An :class:`InstanceTelemetryStream` instead emits one instance
row ``M_{I,t}`` per tick while the simulation is still running, holding
only O(1) synthesis state (RNG streams, counter accumulators, the
previous cumulative row for rate differencing) plus a bounded
:class:`~repro.telemetry.store.MetricStream` tail.

Equivalence with the batch path: opened at the container's creation
tick, the stream reproduces ``instance_matrix(container, nodes)`` row
for row, bitwise.  The single documented divergence is counter *rates*
at the stream's first tick: the batch converter back-fills
``rates[0] = deltas[0]`` using the second sample (non-causal), while a
per-tick emitter has no successor yet and emits 0.  From the second
tick on the rows are identical; with ``convert_counters=False`` they
are identical everywhere.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.cluster.container import Container
from repro.cluster.node import Node
from repro.telemetry.catalog import MetricCatalog, MetricSpec
from repro.telemetry.store import MetricStream

__all__ = ["InstanceTelemetryStream"]


class _ScopeStream:
    """Streaming synthesis state for one spec list (host or container)."""

    def __init__(
        self,
        catalog: MetricCatalog,
        specs: list[MetricSpec],
        rng: np.random.Generator,
        convert_counters: bool,
        interval_seconds: float = 1.0,
    ):
        self._catalog = catalog
        self._specs = specs
        self._rng = rng
        self._convert = convert_counters
        self._interval = interval_seconds
        self._counter_mask = catalog.spec_arrays(specs).counters
        self._accum: np.ndarray | None = None
        self._previous_cum: np.ndarray | None = None

    def step(self, state_row: np.ndarray) -> np.ndarray:
        """State row -> metric row, with counters already rate-converted
        when the agent is configured to do so."""
        values, self._accum = self._catalog.synthesize_step(
            self._specs, state_row, self._rng, self._accum
        )
        if self._convert and self._counter_mask.any():
            cumulative = values[self._counter_mask].copy()
            if self._previous_cum is None:
                # No predecessor: the batch converter back-fills this row
                # from the *next* sample, which a causal stream cannot see.
                values[self._counter_mask] = 0.0
            else:
                deltas = (cumulative - self._previous_cum) / self._interval
                values[self._counter_mask] = np.maximum(deltas, 0.0)
            self._previous_cum = cumulative
        return values


class InstanceTelemetryStream:
    """Per-tick emission of one container's instance rows ``M_{I,t}``.

    Created via :meth:`repro.telemetry.agent.TelemetryAgent.open_stream`.
    Call :meth:`emit` once per simulation tick (or :meth:`advance_to`
    to catch up after several ticks); the newest rows are retained in
    :attr:`tail`, a :class:`MetricStream` ring buffer.

    Parameters
    ----------
    agent:
        The owning telemetry agent (catalog, seed, counter handling).
    container / nodes:
        The instance being observed and the cluster's node map.
    start:
        First tick to emit; defaults to the container's creation tick,
        which makes the emitted rows equal to the agent's whole-run
        ``instance_matrix`` (see the module docstring for the one
        counter-rate caveat).
    history:
        Ring-buffer capacity of :attr:`tail`; 16 covers the paper's
        longest temporal feature window.
    """

    def __init__(
        self,
        agent,
        container: Container,
        nodes: dict[str, Node],
        start: int | None = None,
        history: int = 16,
    ):
        if container.node is None:
            raise ValueError(f"Container {container.name} is not placed.")
        from repro.telemetry.agent import _stream_seed  # circular at module load

        self.agent = agent
        self.container = container
        self.node = nodes[container.node]
        self.start = container.created_at if start is None else start
        catalog = agent.catalog
        self._host = _ScopeStream(
            catalog,
            catalog.host,
            np.random.default_rng(
                _stream_seed(agent.seed, f"host:{self.node.name}:{self.start}")
            ),
            agent.convert_counters,
        )
        self._container = _ScopeStream(
            catalog,
            catalog.container,
            np.random.default_rng(
                _stream_seed(
                    agent.seed, f"container:{container.name}:{self.start}"
                )
            ),
            agent.convert_counters,
        )
        self.tail = MetricStream(catalog.names(), capacity=history)
        self._next = self.start

    @property
    def clock(self) -> int:
        """The next tick :meth:`emit` will produce."""
        return self._next

    def emit(self) -> np.ndarray:
        """Synthesize and return the instance row for the next tick.

        The container must already have recorded that tick (emit after
        ``simulation.step``); ticks must be consumed in order -- the
        synthesis state (noise streams, counter accumulators) is
        inherently sequential.
        """
        t = self._next
        if self.container.tick_at(t) is None:
            raise ValueError(
                f"Container {self.container.name} has no recorded tick {t}; "
                "advance the simulation before emitting."
            )
        with obs.trace("telemetry.emit"):
            host_state = self.agent.host_state(self.node, t, t + 1)[0]
            container_state = self.agent.container_state(
                self.container, self.node, t, t + 1
            )[0]
            row = np.concatenate(
                [self._host.step(host_state), self._container.step(container_state)]
            )
            self.tail.push(row)
        obs.inc("telemetry.rows_emitted")
        self._next = t + 1
        return row

    def skip(self) -> None:
        """Advance past the next tick without synthesizing it.

        Models a missed scrape: the reading for this tick is lost
        forever and the stream clock moves on, so later ticks can still
        be consumed in order.  No RNG draw, counter accumulation or
        rate state is touched -- the skipped tick's counter increments
        simply never happened, exactly as when a real collector misses
        a scrape of a per-interval accumulator.  Given the same skip
        pattern the subsequent rows are fully deterministic.
        """
        self._next += 1
        obs.inc("telemetry.rows_skipped")

    def advance_to(self, end: int) -> np.ndarray | None:
        """Emit every tick up to (excluding) ``end``; returns the last
        row emitted, or ``None`` if already caught up."""
        row = None
        while self._next < end:
            row = self.emit()
        return row
